"""Documentation sanity: the shipped docs stay consistent with the code."""

import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def docs():
    return {
        name: (ROOT / name).read_text()
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/MODEL.md")
    }


class TestDocsExist:
    def test_all_present_and_substantial(self, docs):
        for name, text in docs.items():
            assert len(text) > 2_000, f"{name} suspiciously short"


class TestQuotedConstants:
    """The paper's quoted numbers appear in the docs and match the code."""

    def test_t_cold_quoted_everywhere(self, docs):
        from repro.core.params import PAPER_COSTS
        assert PAPER_COSTS.t_cold_us == 284.3
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert "284.3" in docs[name], name

    def test_mvs_constants_in_design(self, docs):
        from repro.cache.footprint import MVS_WORKLOAD
        for token in ("2.19827", "0.033233", "0.827457", "0.13025"):
            assert token in docs["DESIGN.md"]
        assert MVS_WORKLOAD.W == 2.19827

    def test_checksum_rate_documented(self, docs):
        assert "32 B/µs" in docs["DESIGN.md"] or "32 bytes" in docs["DESIGN.md"]

    def test_fddi_payload_documented(self, docs):
        assert "4432" in docs["DESIGN.md"]


class TestExperimentIndexConsistency:
    def test_every_experiment_in_design_and_experiments(self, docs):
        from repro.experiments.base import EXPERIMENT_IDS
        for eid in EXPERIMENT_IDS:
            token = eid.upper()  # E01 .. E14
            assert token in docs["DESIGN.md"], eid
            assert token in docs["EXPERIMENTS.md"], eid

    def test_ablations_and_extensions_documented(self, docs):
        from repro.experiments.base import ABLATION_IDS, EXTENSION_IDS
        for aid in ABLATION_IDS:
            assert aid.upper() in docs["EXPERIMENTS.md"], aid
        for xid in EXTENSION_IDS:
            assert xid.upper() in docs["EXPERIMENTS.md"], xid

    def test_examples_listed_in_readme(self, docs):
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in docs["README.md"], script.name

    def test_policy_names_in_readme_exist(self, docs):
        from repro.core.policies import IPS_POLICIES, LOCKING_POLICIES
        for name in list(LOCKING_POLICIES) + [
            n for n in IPS_POLICIES if n != "ips-random"
        ]:
            assert name in docs["README.md"], name
