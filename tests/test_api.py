"""Public-API surface tests: imports, __all__, version."""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.cache",
    "repro.core",
    "repro.sim",
    "repro.workloads",
    "repro.xkernel",
    "repro.measurement",
    "repro.analysis",
    "repro.experiments",
    "repro.cli",
)


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", SUBPACKAGES[:-1])
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


def test_top_level_all_resolves():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)


def test_quickstart_surface():
    """The five-line quickstart from the README works."""
    cfg = repro.SystemConfig(
        traffic=repro.TrafficSpec.homogeneous_poisson(4, 6_000.0),
        paradigm="ips",
        policy="ips-wired",
        duration_us=60_000,
        warmup_us=10_000,
    )
    summary = repro.run_simulation(cfg)
    assert summary.mean_delay_us > 0
