"""Tests for x-kernel message buffers."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.xkernel.message import Message, MessageError


class TestBasics:
    def test_length_and_bytes(self):
        m = Message(b"hello")
        assert len(m) == 5
        assert bytes(m) == b"hello"

    def test_data_view_zero_copy(self):
        m = Message(b"abcdef")
        view = m.data
        assert bytes(view) == b"abcdef"
        assert isinstance(view, memoryview)

    def test_empty_message(self):
        m = Message()
        assert len(m) == 0
        assert bytes(m) == b""


class TestPushPop:
    def test_pop_strips_front(self):
        m = Message(b"HDRpayload")
        assert m.pop(3) == b"HDR"
        assert bytes(m) == b"payload"

    def test_push_prepends(self):
        m = Message(b"payload")
        m.push(b"HDR")
        assert bytes(m) == b"HDRpayload"

    def test_push_pop_round_trip(self):
        m = Message(b"data")
        m.push(b"ip")
        m.push(b"mac")
        assert m.pop(3) == b"mac"
        assert m.pop(2) == b"ip"
        assert bytes(m) == b"data"

    def test_push_beyond_headroom_grows(self):
        m = Message(b"x", headroom=2)
        m.push(b"0123456789")
        assert bytes(m) == b"0123456789x"

    def test_pop_too_much_raises(self):
        with pytest.raises(MessageError):
            Message(b"ab").pop(3)

    def test_pop_negative_raises(self):
        with pytest.raises(MessageError):
            Message(b"ab").pop(-1)


class TestPeekTruncateClone:
    def test_peek_does_not_consume(self):
        m = Message(b"abcdef")
        assert m.peek(3) == b"abc"
        assert len(m) == 6

    def test_peek_bounds(self):
        with pytest.raises(MessageError):
            Message(b"ab").peek(5)

    def test_truncate(self):
        m = Message(b"abcdef")
        m.truncate(4)
        assert bytes(m) == b"abcd"

    def test_truncate_bounds(self):
        with pytest.raises(MessageError):
            Message(b"ab").truncate(3)
        with pytest.raises(MessageError):
            Message(b"ab").truncate(-1)

    def test_clone_is_independent(self):
        m = Message(b"abcdef")
        c = m.clone()
        m.pop(2)
        assert bytes(c) == b"abcdef"
        assert bytes(m) == b"cdef"

    def test_negative_headroom_rejected(self):
        with pytest.raises(MessageError):
            Message(b"x", headroom=-1)


@given(
    payload=st.binary(max_size=200),
    headers=st.lists(st.binary(min_size=1, max_size=40), max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_property_push_pop_inverse(payload, headers):
    m = Message(payload, headroom=8)
    for h in headers:
        m.push(h)
    for h in reversed(headers):
        assert m.pop(len(h)) == h
    assert bytes(m) == payload
