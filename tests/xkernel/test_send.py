"""Tests for the send-side fast path (extension (i)) and loopback."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.xkernel.driver import StreamEndpoint
from repro.xkernel.fddi import FDDI_HEADER_LEN
from repro.xkernel.ip import IP_HEADER_LEN
from repro.xkernel.protocol import ProtocolError
from repro.xkernel.send import (
    MAX_SEND_PAYLOAD,
    SendPath,
    TransmitQueue,
    loopback,
)
from repro.xkernel.stack import ReceiveFastPath
from repro.xkernel.udp import UDP_HEADER_LEN

TX_MAC = bytes([2, 0, 0, 0, 0, 9])


def make_pair(verify=True, n_streams=1):
    streams = [
        StreamEndpoint(f"10.0.0.{i + 5}", 5000 + i, 7000 + i)
        for i in range(n_streams)
    ]
    rx = ReceiveFastPath.build(streams, verify_udp_checksum=verify)
    paths = []
    for i, ep in enumerate(streams):
        tx = SendPath(local_mac=TX_MAC, local_ip=ep.src_ip,
                      remote_mac=rx.driver.local_mac,
                      compute_udp_checksum=verify)
        sess = tx.open_session(ep.src_port, rx.driver.local_ip, ep.dst_port)
        paths.append((tx, sess))
    return rx, paths


class TestTransmitQueue:
    def test_enqueue_drain(self):
        q = TransmitQueue()
        q.enqueue(b"frame1")
        q.enqueue(b"frame2")
        assert len(q) == 2
        assert q.drain() == [b"frame1", b"frame2"]
        assert len(q) == 0
        assert q.bytes_queued == 12

    def test_capacity_enforced(self):
        q = TransmitQueue(capacity=1)
        q.enqueue(b"x")
        with pytest.raises(ProtocolError, match="full"):
            q.enqueue(b"y")

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmitQueue(capacity=-1)


class TestSendPath:
    def test_frame_layout_lengths(self):
        _, [(tx, sess)] = make_pair()
        frame = tx.send(sess, b"data", stamp_sequence=False)
        assert len(frame) == (FDDI_HEADER_LEN + IP_HEADER_LEN
                              + UDP_HEADER_LEN + 4)

    def test_session_bookkeeping(self):
        _, [(tx, sess)] = make_pair()
        tx.send(sess, b"abc")
        tx.send(sess, b"defg")
        assert sess.packets_sent == 2
        assert sess.bytes_sent == len(b"abc") + len(b"defg") + 8  # + seq

    def test_session_reuse_by_tuple(self):
        _, [(tx, sess)] = make_pair()
        again = tx.open_session(sess.local_port, sess.remote_ip,
                                sess.remote_port)
        assert again is sess
        assert tx.n_sessions == 1

    def test_mtu_enforced(self):
        _, [(tx, sess)] = make_pair()
        with pytest.raises(ProtocolError, match="MTU"):
            tx.send(sess, b"x" * (MAX_SEND_PAYLOAD + 1), stamp_sequence=False)

    def test_max_payload_fits(self):
        _, [(tx, sess)] = make_pair(verify=False)
        frame = tx.send(sess, b"x" * MAX_SEND_PAYLOAD, stamp_sequence=False)
        assert len(frame) > MAX_SEND_PAYLOAD

    def test_validation(self):
        with pytest.raises(ValueError):
            SendPath(b"\x00", "10.0.0.1", TX_MAC)
        rx, [(tx, _)] = make_pair()
        with pytest.raises(ValueError):
            tx.open_session(-1, "10.0.0.1", 5)
        with pytest.raises(ValueError):
            tx.open_session(1, "bad-ip", 5)


class TestLoopback:
    def test_round_trip_delivers(self):
        rx, [(tx, sess)] = make_pair()
        for i in range(10):
            tx.send(sess, f"payload-{i}".encode())
        assert loopback(tx, rx) == 10
        session = rx.session_for_stream(0)
        assert session.packets_received == 10
        assert session.out_of_order == 0

    def test_checksums_verify_end_to_end(self):
        rx, [(tx, sess)] = make_pair(verify=True)
        tx.send(sess, b"checksummed payload")
        assert loopback(tx, rx) == 1

    def test_multiple_streams_demux_correctly(self):
        rx, paths = make_pair(n_streams=3)
        for k, (tx, sess) in enumerate(paths):
            for _ in range(k + 1):
                tx.send(sess, b"data")
            loopback(tx, rx)
        for k in range(3):
            assert rx.session_for_stream(k).packets_received == k + 1

    def test_sequence_continuity_across_batches(self):
        rx, [(tx, sess)] = make_pair()
        tx.send(sess, b"one")
        loopback(tx, rx)
        tx.send(sess, b"two")
        loopback(tx, rx)
        assert rx.session_for_stream(0).out_of_order == 0

    @given(payloads=st.lists(st.binary(max_size=512), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_lossless_ordered_roundtrip(self, payloads):
        rx, [(tx, sess)] = make_pair()
        received = []
        # Tap the UDP session callback to capture payloads in order.
        rx.udp.session(7000).callback = received.append
        for p in payloads:
            tx.send(sess, p)
        loopback(tx, rx)
        assert len(received) == len(payloads)
        for got, sent in zip(received, payloads):
            assert got[4:] == sent  # strip the sequence stamp
