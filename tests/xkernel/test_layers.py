"""Tests for the FDDI, IP, and UDP layers (happy paths + every drop path)."""

import pytest

from repro.xkernel.checksum import internet_checksum
from repro.xkernel.fddi import (
    ETHERTYPE_IP,
    FDDI_HEADER_LEN,
    FDDI_MTU,
    FDDIProtocol,
    encode_fddi_header,
)
from repro.xkernel.ip import (
    IP_HEADER_LEN,
    IPPROTO_UDP,
    IPProtocol,
    encode_ip_header,
    ip_to_bytes,
)
from repro.xkernel.message import Message
from repro.xkernel.protocol import (
    ChecksumError,
    DemuxError,
    ProtocolError,
    Session,
    TruncatedHeaderError,
)
from repro.xkernel.udp import UDP_HEADER_LEN, UDPProtocol, encode_udp_header

MAC = bytes(6)
SRC_MAC = bytes([2, 0, 0, 0, 0, 1])
HOST_IP = ip_to_bytes("10.0.0.1")
PEER_IP = ip_to_bytes("10.0.0.9")


class Sink(Session):
    """Terminal session recording deliveries."""

    def __init__(self):
        super().__init__(key=None, protocol=None)


class SinkProtocol:
    """Upper-layer stand-in recording received messages."""

    def __init__(self):
        self.messages = []
        self.session = Sink()

    def receive(self, msg):
        self.messages.append(bytes(msg))
        self.session.deliver(msg)
        return self.session


class TestIPToBytes:
    def test_valid(self):
        assert ip_to_bytes("1.2.3.4") == bytes([1, 2, 3, 4])

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            ip_to_bytes("1.2.3")

    def test_octet_range(self):
        with pytest.raises(ValueError):
            ip_to_bytes("1.2.3.999")


class TestFDDI:
    def build(self):
        fddi = FDDIProtocol(MAC)
        upper = SinkProtocol()
        fddi.register_upper(ETHERTYPE_IP, upper)
        return fddi, upper

    def frame(self, dst=MAC, ethertype=ETHERTYPE_IP, payload=b"datagram"):
        return encode_fddi_header(dst, SRC_MAC, ethertype) + payload

    def test_happy_path(self):
        fddi, upper = self.build()
        fddi.receive(Message(self.frame()))
        assert upper.messages == [b"datagram"]
        assert fddi.stats.delivered == 1

    def test_broadcast_accepted(self):
        fddi, upper = self.build()
        fddi.receive(Message(self.frame(dst=b"\xff" * 6)))
        assert upper.messages

    def test_broadcast_rejectable(self):
        fddi = FDDIProtocol(MAC, accept_broadcast=False)
        fddi.register_upper(ETHERTYPE_IP, SinkProtocol())
        with pytest.raises(DemuxError):
            fddi.receive(Message(self.frame(dst=b"\xff" * 6)))

    def test_wrong_station_dropped(self):
        fddi, _ = self.build()
        with pytest.raises(DemuxError):
            fddi.receive(Message(self.frame(dst=bytes([9] * 6))))
        assert fddi.stats.dropped == 1

    def test_truncated_frame(self):
        fddi, _ = self.build()
        with pytest.raises(TruncatedHeaderError):
            fddi.receive(Message(b"\x50short"))

    def test_unknown_ethertype(self):
        fddi, _ = self.build()
        with pytest.raises(DemuxError, match="ethertype"):
            fddi.receive(Message(self.frame(ethertype=0x86DD)))

    def test_bad_frame_control(self):
        fddi, _ = self.build()
        frame = bytearray(self.frame())
        frame[0] = 0x00
        with pytest.raises(ProtocolError, match="frame control"):
            fddi.receive(Message(bytes(frame)))

    def test_oversized_frame(self):
        fddi, _ = self.build()
        frame = self.frame(payload=b"x" * (FDDI_MTU + 1))
        with pytest.raises(ProtocolError, match="MTU"):
            fddi.receive(Message(frame))

    def test_non_snap_llc(self):
        fddi, _ = self.build()
        frame = bytearray(self.frame())
        frame[13] = 0x42  # clobber DSAP
        with pytest.raises(ProtocolError, match="SNAP"):
            fddi.receive(Message(bytes(frame)))

    def test_header_length_constant(self):
        assert len(encode_fddi_header(MAC, SRC_MAC)) == FDDI_HEADER_LEN

    def test_encode_validation(self):
        with pytest.raises(ValueError):
            encode_fddi_header(b"\x00", SRC_MAC)
        with pytest.raises(ValueError):
            encode_fddi_header(MAC, SRC_MAC, ethertype=1 << 17)


class TestIP:
    def build(self):
        ip = IPProtocol(HOST_IP)
        upper = SinkProtocol()
        ip.register_upper(IPPROTO_UDP, upper)
        return ip, upper

    def datagram(self, payload=b"segment", dst=HOST_IP, **kw):
        return encode_ip_header(PEER_IP, dst, len(payload), **kw) + payload

    def test_happy_path(self):
        ip, upper = self.build()
        ip.receive(Message(self.datagram()))
        assert upper.messages == [b"segment"]

    def test_header_checksum_valid_by_construction(self):
        hdr = encode_ip_header(PEER_IP, HOST_IP, 10)
        assert internet_checksum(hdr) == 0

    def test_corrupted_header_dropped(self):
        ip, _ = self.build()
        d = bytearray(self.datagram())
        d[8] ^= 0xFF  # TTL byte
        with pytest.raises(ChecksumError):
            ip.receive(Message(bytes(d)))

    def test_checksum_verification_can_be_disabled(self):
        ip = IPProtocol(HOST_IP, verify_header_checksum=False)
        upper = SinkProtocol()
        ip.register_upper(IPPROTO_UDP, upper)
        d = bytearray(self.datagram())
        d[10] ^= 0x01  # corrupt the checksum field itself
        ip.receive(Message(bytes(d)))
        assert upper.messages

    def test_wrong_destination(self):
        ip, _ = self.build()
        with pytest.raises(DemuxError, match="not addressed"):
            ip.receive(Message(self.datagram(dst=PEER_IP)))

    def test_truncated(self):
        ip, _ = self.build()
        with pytest.raises(TruncatedHeaderError):
            ip.receive(Message(b"\x45\x00"))

    def test_bad_version(self):
        ip, _ = self.build()
        d = bytearray(self.datagram())
        d[0] = 0x62
        # Fix checksum so version check (before checksum) is what fires.
        with pytest.raises(ProtocolError, match="version"):
            ip.receive(Message(bytes(d)))

    def test_fragment_rejected(self):
        ip, _ = self.build()
        raw = bytearray(encode_ip_header(PEER_IP, HOST_IP, 4))
        raw[6] = 0x20  # MF flag
        raw[10:12] = b"\x00\x00"
        csum = internet_checksum(bytes(raw))
        raw[10:12] = csum.to_bytes(2, "big")
        with pytest.raises(ProtocolError, match="fragment"):
            ip.receive(Message(bytes(raw) + b"frag"))

    def test_ttl_zero_rejected(self):
        ip, _ = self.build()
        with pytest.raises(ProtocolError, match="TTL"):
            ip.receive(Message(self.datagram(ttl=0)))

    def test_unknown_protocol(self):
        ip, _ = self.build()
        with pytest.raises(DemuxError, match="no upper"):
            ip.receive(Message(self.datagram(protocol=6)))  # TCP unbound

    def test_length_inconsistency(self):
        ip, _ = self.build()
        d = self.datagram()
        with pytest.raises(ProtocolError, match="length"):
            ip.receive(Message(d[:-3]))  # frame shorter than total_len

    def test_link_padding_stripped(self):
        ip, upper = self.build()
        ip.receive(Message(self.datagram() + b"\x00" * 7))  # trailer pad
        assert upper.messages == [b"segment"]

    def test_oversize_encode_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            encode_ip_header(PEER_IP, HOST_IP, 70_000)


class TestUDP:
    def build(self, verify=False):
        udp = UDPProtocol(HOST_IP, verify_payload_checksum=verify)
        session = udp.open_session(7000)
        return udp, session

    def datagram(self, payload=b"\x00\x00\x00\x01data", dst_port=7000):
        return encode_udp_header(6000, dst_port, len(payload)) + payload

    def test_happy_path(self):
        udp, session = self.build()
        udp.receive(Message(self.datagram()))
        assert session.packets_received == 1
        assert session.last_src_port == 6000

    def test_sequence_tracking(self):
        udp, session = self.build()
        for seq in (0, 1, 2):
            payload = seq.to_bytes(4, "big") + b"x"
            udp.receive(Message(self.datagram(payload=payload)))
        assert session.out_of_order == 0
        udp.receive(Message(self.datagram(payload=(7).to_bytes(4, "big"))))
        assert session.out_of_order == 1

    def test_unbound_port(self):
        udp, _ = self.build()
        with pytest.raises(DemuxError, match="port"):
            udp.receive(Message(self.datagram(dst_port=9)))

    def test_truncated(self):
        udp, _ = self.build()
        with pytest.raises(TruncatedHeaderError):
            udp.receive(Message(b"\x00\x01"))

    def test_length_inconsistency(self):
        udp, _ = self.build()
        bad = encode_udp_header(1, 7000, 100) + b"short"
        with pytest.raises(ProtocolError, match="length"):
            udp.receive(Message(bad))

    def test_callback_invoked(self):
        udp = UDPProtocol(HOST_IP)
        seen = []
        udp.open_session(7000, callback=seen.append)
        udp.receive(Message(self.datagram(payload=b"\x00\x00\x00\x00hi")))
        assert seen == [b"\x00\x00\x00\x00hi"]

    def test_double_bind_rejected(self):
        udp, _ = self.build()
        with pytest.raises(ValueError, match="already bound"):
            udp.open_session(7000)

    def test_close_session(self):
        udp, _ = self.build()
        udp.close_session(7000)
        assert udp.n_sessions == 0
        with pytest.raises(KeyError):
            udp.close_session(7000)

    def test_checksum_requires_src_ip(self):
        udp, _ = self.build(verify=True)
        d = encode_udp_header(1, 7000, 4, checksum=0xBEEF) + b"\x00\x00\x00\x00"
        with pytest.raises(ProtocolError, match="source address"):
            udp.receive(Message(d))

    def test_checksum_zero_skips_verification(self):
        udp, session = self.build(verify=True)
        udp.receive(Message(self.datagram()))  # checksum field 0
        assert session.packets_received == 1

    def test_encode_validation(self):
        with pytest.raises(ValueError):
            encode_udp_header(-1, 7000, 4)
        with pytest.raises(ValueError, match="too large"):
            encode_udp_header(1, 2, 70_000)
