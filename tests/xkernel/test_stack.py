"""End-to-end tests for stack assembly, the driver, and IPS replication."""

import pytest

from repro.xkernel.driver import InMemoryFDDIDriver, StreamEndpoint
from repro.xkernel.protocol import ChecksumError, DemuxError
from repro.xkernel.stack import (
    ReceiveFastPath,
    build_ips_stacks,
    build_receive_stack,
)


def endpoints(n=4):
    return [StreamEndpoint(f"10.0.0.{i+1}", 5000 + i, 7000 + i) for i in range(n)]


class TestStreamEndpoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamEndpoint("not-an-ip", 1, 2)
        with pytest.raises(ValueError):
            StreamEndpoint("10.0.0.1", -1, 2)


class TestDriver:
    def test_frames_parse_through_stack(self):
        fp = ReceiveFastPath.build(endpoints())
        session = fp.deliver(0, payload_bytes=64)
        assert session.packets_received == 1
        assert session.bytes_received == 64

    def test_sequence_numbers_advance(self):
        fp = ReceiveFastPath.build(endpoints(1))
        for _ in range(5):
            fp.deliver(0)
        s = fp.session_for_stream(0)
        assert s.packets_received == 5
        assert s.out_of_order == 0

    def test_round_robin_shares_evenly(self):
        fp = ReceiveFastPath.build(endpoints(4))
        fp.deliver_many(40)
        for i in range(4):
            assert fp.session_for_stream(i).packets_received == 10

    def test_layer_stats_accumulate(self):
        fp = ReceiveFastPath.build(endpoints(2))
        fp.deliver_many(10)
        stats = fp.graph.stats_by_layer()
        assert stats["fddi"].delivered == 10
        assert stats["ip"].delivered == 10
        assert stats["udp"].delivered == 10
        assert all(s.dropped == 0 for s in stats.values())

    def test_payload_must_hold_sequence(self):
        fp = ReceiveFastPath.build(endpoints(1))
        with pytest.raises(ValueError, match="sequence"):
            fp.deliver(0, payload_bytes=2)

    def test_stream_index_bounds(self):
        fp = ReceiveFastPath.build(endpoints(2))
        with pytest.raises(IndexError):
            fp.driver.next_frame(5)

    def test_udp_checksum_end_to_end(self):
        fp = ReceiveFastPath.build(endpoints(2), verify_udp_checksum=True)
        fp.deliver_many(6)
        # Corrupt a payload byte; checksum verification must reject it.
        frame = bytearray(fp.driver.next_frame(0, 64))
        frame[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            fp.graph.receive(bytes(frame))

    def test_driver_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            InMemoryFDDIDriver(bytes(6), "10.0.0.1", [])
        with pytest.raises(ValueError, match="local_mac"):
            InMemoryFDDIDriver(b"\x00", "10.0.0.1", endpoints(1))


class TestBuildReceiveStack:
    def test_ports_bound(self):
        graph, udp = build_receive_stack(ports=(7000, 7001))
        assert udp.n_sessions == 2

    def test_graph_layers(self):
        graph, _ = build_receive_stack()
        assert [l.name for l in graph.layers] == ["fddi", "ip", "udp"]


class TestIPSStacks:
    def test_partitioning_mod_k(self):
        stacks = build_ips_stacks(endpoints(5), 2)
        assert len(stacks) == 2
        # streams 0,2,4 -> stack 0; streams 1,3 -> stack 1.
        assert stacks[0].driver.n_streams == 3
        assert stacks[1].driver.n_streams == 2

    def test_stack_isolation(self):
        # Stack 0 cannot demux a frame destined to stack 1's port.
        eps = endpoints(2)
        stacks = build_ips_stacks(eps, 2)
        foreign = stacks[1].driver.next_frame(0)
        with pytest.raises(DemuxError):
            stacks[0].graph.receive(foreign)

    def test_independent_session_state(self):
        stacks = build_ips_stacks(endpoints(2), 2)
        stacks[0].deliver(0)
        assert stacks[0].session_for_stream(0).packets_received == 1
        assert stacks[1].session_for_stream(0).packets_received == 0

    def test_empty_partition_gets_placeholder(self):
        stacks = build_ips_stacks(endpoints(1), 3)
        assert len(stacks) == 3  # no crash; placeholder sessions exist

    def test_validation(self):
        with pytest.raises(ValueError):
            build_ips_stacks(endpoints(1), 0)
        with pytest.raises(ValueError):
            build_ips_stacks([], 2)
