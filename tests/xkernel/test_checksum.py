"""Tests for the RFC 1071 Internet checksum."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.xkernel.checksum import (
    internet_checksum,
    pseudo_header_checksum,
    verify_checksum,
)


class TestKnownVectors:
    def test_rfc1071_example(self):
        # RFC 1071 worked example: 0001 f203 f4f5 f6f7 -> sum 0xddf2,
        # checksum = ~0xddf2 = 0x220d.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_all_ones(self):
        assert internet_checksum(b"\xff\xff") == 0x0000

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_zero_padded(self):
        # Trailing byte is padded with zero on the right (high byte).
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


class TestVerification:
    def test_packet_with_embedded_checksum_verifies(self):
        data = b"\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x11"
        csum = internet_checksum(data)
        full = data + csum.to_bytes(2, "big")
        assert verify_checksum(full)

    def test_corruption_detected(self):
        data = b"\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x11"
        csum = internet_checksum(data)
        full = bytearray(data + csum.to_bytes(2, "big"))
        full[0] ^= 0x40
        assert not verify_checksum(bytes(full))

    @given(data=st.binary(min_size=2, max_size=512).filter(lambda b: len(b) % 2 == 0))
    @settings(max_examples=80, deadline=None)
    def test_property_checksum_then_verify(self, data):
        csum = internet_checksum(data)
        assert verify_checksum(data + csum.to_bytes(2, "big"))

    @given(data=st.binary(min_size=0, max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_property_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestPseudoHeader:
    def test_udp_datagram_round_trip(self):
        src, dst = bytes([10, 0, 0, 1]), bytes([10, 0, 0, 2])
        payload = b"\x13\x88\x1b\x58\x00\x0c\x00\x00test"  # hdr + 'test'
        csum = pseudo_header_checksum(src, dst, 17, len(payload), payload)
        # Embed the checksum in the UDP header checksum field (bytes 6:8)
        # and re-verify: the total must now sum to 0.
        embedded = payload[:6] + csum.to_bytes(2, "big") + payload[8:]
        assert pseudo_header_checksum(src, dst, 17, len(embedded), embedded) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="4-byte"):
            pseudo_header_checksum(b"\x00", b"\x00" * 4, 17, 4, b"data")
        with pytest.raises(ValueError, match="protocol"):
            pseudo_header_checksum(b"\x00" * 4, b"\x00" * 4, 300, 4, b"data")
        with pytest.raises(ValueError, match="length"):
            pseudo_header_checksum(b"\x00" * 4, b"\x00" * 4, 17, -1, b"data")
