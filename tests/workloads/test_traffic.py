"""Tests for traffic specs and packet-size models."""

import numpy as np
import pytest

from repro.workloads.arrivals import BatchPoissonSpec, PoissonSpec
from repro.workloads.traffic import (
    GUSELLA_LAN_MIX,
    EmpiricalMix,
    FixedSize,
    TrafficSpec,
)


class TestSizeModels:
    def test_fixed_size(self, rng):
        m = FixedSize(512)
        assert m.sample(rng) == 512
        assert m.mean_bytes == 512.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedSize(-1)

    def test_empirical_mix_mean(self):
        m = EmpiricalMix(sizes=(64, 1024), probabilities=(0.75, 0.25))
        assert m.mean_bytes == pytest.approx(304.0)

    def test_empirical_mix_samples_from_support(self, rng):
        m = EmpiricalMix(sizes=(64, 1024), probabilities=(0.5, 0.5))
        for _ in range(50):
            assert m.sample(rng) in (64, 1024)

    def test_empirical_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            EmpiricalMix(sizes=(64,), probabilities=(0.5,))
        with pytest.raises(ValueError, match="align"):
            EmpiricalMix(sizes=(64, 128), probabilities=(1.0,))
        with pytest.raises(ValueError):
            EmpiricalMix(sizes=(-1,), probabilities=(1.0,))

    def test_gusella_mix_is_small_packet_dominated(self):
        assert GUSELLA_LAN_MIX.mean_bytes < 1000
        assert GUSELLA_LAN_MIX.sizes[0] == 64


class TestTrafficSpec:
    def test_homogeneous_poisson(self):
        t = TrafficSpec.homogeneous_poisson(8, 16_000.0)
        assert t.n_streams == 8
        assert t.total_rate_pps == pytest.approx(16_000.0)
        assert all(isinstance(s, PoissonSpec) for s in t.stream_specs)
        assert all(s.rate_pps == pytest.approx(2_000.0) for s in t.stream_specs)

    def test_one_bursty_among_smooth(self):
        t = TrafficSpec.one_bursty_among_smooth(4, 8_000.0, mean_batch=8.0)
        assert isinstance(t.stream_specs[0], BatchPoissonSpec)
        assert t.stream_specs[0].mean_batch == 8.0
        assert all(isinstance(s, PoissonSpec) for s in t.stream_specs[1:])
        assert t.total_rate_pps == pytest.approx(8_000.0)

    def test_single_stream(self):
        t = TrafficSpec.single_stream(5_000.0)
        assert t.n_streams == 1
        assert t.total_rate_pps == pytest.approx(5_000.0)

    def test_needs_streams(self):
        with pytest.raises(ValueError):
            TrafficSpec(())
        with pytest.raises(ValueError):
            TrafficSpec.homogeneous_poisson(0, 100.0)

    def test_custom_mix(self):
        t = TrafficSpec(
            (PoissonSpec(100.0), BatchPoissonSpec(300.0, 4.0)),
        )
        assert t.total_rate_pps == pytest.approx(400.0)


class TestHeterogeneous:
    def test_rates_respected(self):
        t = TrafficSpec.heterogeneous([100.0, 5_000.0, 400.0])
        assert t.n_streams == 3
        assert t.total_rate_pps == pytest.approx(5_500.0)
        assert t.stream_specs[1].rate_pps == pytest.approx(5_000.0)

    def test_needs_rates(self):
        with pytest.raises(ValueError):
            TrafficSpec.heterogeneous([])
