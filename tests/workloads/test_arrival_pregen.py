"""Bit-identity of vectorized arrival pregeneration.

The simulator pregenerates per-stream interarrival gaps and batch sizes
in chunks (:meth:`ArrivalProcess.next_batches`) instead of drawing one
batch per arrival event.  The hot-path overhaul is only admissible
because the chunked draws reproduce the event-by-event draw sequence
*bit for bit* from the same RNG state — these tests enforce that
contract for every :class:`ArrivalProcess` type, across seeds and chunk
splits (including the churned-session draw order: lifetime first, then
gaps, from the per-session RNG substream).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import (
    ArrivalProcess,
    BatchPoissonSpec,
    DeterministicSpec,
    OnOffSpec,
    PoissonSpec,
)
from repro.workloads.packet_train import PacketTrainSpec
from repro.workloads.replay import ReplaySpec

SEEDS = [0, 1, 12345, 987654321]

#: Chunk splits summing to 64: even, uneven, and degenerate (all-ones
#: equals the historical one-draw-per-event scheme by construction).
SPLITS = [
    [64],
    [16, 16, 16, 16],
    [1, 2, 3, 58],
    [63, 1],
    [1] * 64,
]

SPECS = {
    "poisson": PoissonSpec(5_000.0),
    "deterministic": DeterministicSpec(2_000.0, phase_us=37.5),
    "batch_poisson": BatchPoissonSpec(5_000.0, mean_batch=6.0),
    "onoff": OnOffSpec(peak_rate_pps=8_000.0, mean_on_us=700.0,
                       mean_off_us=450.0),
    "packet_train": PacketTrainSpec(mean_train_len=5.0, inter_car_us=12.0,
                                    inter_train_us=900.0,
                                    exponential_car_gaps=True),
    "replay": ReplaySpec(times_us=(10.0, 12.0, 47.0, 200.0), loop=True),
}


def drain_scalar(process: ArrivalProcess, n: int):
    """The historical event-by-event draw sequence."""
    gaps, sizes = [], []
    for _ in range(n):
        gap, size = process.next_batch()
        gaps.append(gap)
        sizes.append(size)
    return gaps, sizes


def drain_chunked(process: ArrivalProcess, split):
    """The pregenerated sequence, refilled chunk by chunk."""
    gaps, sizes = [], []
    for n in split:
        chunk_gaps, chunk_sizes = process.next_batches(n)
        assert len(chunk_gaps) == n
        gaps.extend(chunk_gaps)
        sizes.extend(chunk_sizes if chunk_sizes is not None else [1] * n)
    return gaps, sizes


@pytest.mark.parametrize("spec_name", sorted(SPECS))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("split", SPLITS, ids=lambda s: "+".join(map(str, s[:4])) + ("..." if len(s) > 4 else ""))
def test_chunked_equals_scalar_bitwise(spec_name, seed, split):
    """next_batches chunks == repeated next_batch, value for value.

    Equality is exact (``==`` on floats, no tolerance): the simulator's
    golden regression baseline depends on the draws being bit-identical,
    not merely close.
    """
    spec = SPECS[spec_name]
    scalar = spec.build(np.random.default_rng(seed))
    chunked = spec.build(np.random.default_rng(seed))
    n = sum(split)
    want_gaps, want_sizes = drain_scalar(scalar, n)
    got_gaps, got_sizes = drain_chunked(chunked, split)
    assert got_gaps == want_gaps
    assert got_sizes == want_sizes


@pytest.mark.parametrize("spec_name", sorted(SPECS))
def test_rng_state_identical_after_chunking(spec_name):
    """After equal draw counts, both samplers' RNGs are in the same state
    (nothing downstream of the stream substream can ever diverge)."""
    spec = SPECS[spec_name]
    rng_a = np.random.default_rng(77)
    rng_b = np.random.default_rng(77)
    drain_scalar(spec.build(rng_a), 50)
    drain_chunked(spec.build(rng_b), [13, 37])
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


@pytest.mark.parametrize("seed", SEEDS)
def test_churned_session_draw_order(seed):
    """Churned sessions draw lifetime first, then gaps, from one RNG.

    Mirrors ``NetworkProcessingSystem._open_session``: the exponential
    lifetime draw precedes the Poisson gap draws on the *same* per-session
    substream, so pregeneration must leave that prefix untouched and then
    reproduce the scalar gap sequence exactly.
    """
    mean_lifetime_us, rate_pps = 30_000.0, 4_000.0

    def open_session(rng, drain, arg):
        lifetime_us = float(rng.exponential(mean_lifetime_us))
        process = PoissonSpec(rate_pps).build(rng)
        gaps, sizes = drain(process, arg)
        return lifetime_us, gaps, sizes

    scalar = open_session(np.random.default_rng(seed), drain_scalar, 48)
    chunked = open_session(np.random.default_rng(seed), drain_chunked,
                           [16, 1, 31])
    assert scalar == chunked


def test_chunks_past_horizon_are_invisible():
    """Discarding unconsumed tail draws cannot perturb other streams:
    each stream samples a private RNG, so two streams' sequences are
    unchanged whether or not the other overdraws."""
    spec = SPECS["poisson"]
    lone = spec.build(np.random.default_rng(5))
    want, _ = drain_scalar(lone, 8)
    paired = spec.build(np.random.default_rng(5))
    other = spec.build(np.random.default_rng(6))
    other.next_batches(1024)  # massive overdraw on a sibling stream
    got, _ = drain_chunked(paired, [8])
    assert got == want


def test_next_batches_rejects_nonpositive():
    for spec in SPECS.values():
        process = spec.build(np.random.default_rng(1))
        with pytest.raises(ValueError):
            process.next_batches(0)
        with pytest.raises(ValueError):
            process.next_batches(-3)


def test_batch_sizes_none_means_all_single():
    """The ``sizes is None`` compression is only ever used when every
    batch is a single packet."""
    bursty = SPECS["batch_poisson"].build(np.random.default_rng(3))
    gaps, sizes = bursty.next_batches(256)
    assert sizes is not None and any(s > 1 for s in sizes)
    poisson = SPECS["poisson"].build(np.random.default_rng(3))
    _, sizes = poisson.next_batches(256)
    assert sizes is None
