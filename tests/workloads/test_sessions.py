"""Tests for the dynamic stream population (session churn)."""

import pytest

from repro.sim.system import NetworkProcessingSystem
from repro.workloads.sessions import SessionChurnSpec
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


class TestSpec:
    def test_littles_law(self):
        spec = SessionChurnSpec(sessions_per_second=200.0,
                                mean_lifetime_us=100_000.0,
                                per_stream_rate_pps=300.0)
        assert spec.mean_concurrent_sessions == pytest.approx(20.0)
        assert spec.offered_rate_pps == pytest.approx(6_000.0)

    def test_for_population_inverts(self):
        spec = SessionChurnSpec.for_population(
            mean_sessions=50.0, mean_lifetime_us=80_000.0,
            per_stream_rate_pps=100.0,
        )
        assert spec.mean_concurrent_sessions == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionChurnSpec(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            SessionChurnSpec(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            SessionChurnSpec.for_population(0.0, 1.0, 1.0)


class TestChurnInSimulation:
    def make(self, population=20, **overrides):
        churn = SessionChurnSpec.for_population(
            mean_sessions=float(population),
            mean_lifetime_us=50_000.0,
            per_stream_rate_pps=400.0,
        )
        return NetworkProcessingSystem(fast_config(
            traffic=TrafficSpec.homogeneous_poisson(2, 500.0),
            churn=churn, duration_us=300_000, warmup_us=40_000,
            **overrides,
        ))

    def test_dynamic_streams_created(self):
        system = self.make()
        system.run()
        # Many sessions were born beyond the 2 base streams.
        assert system._stream_counter > 50

    def test_throughput_tracks_offered_load(self):
        system = self.make()
        s = system.run()
        assert s.throughput_pps == pytest.approx(s.offered_rate_pps, rel=0.15)

    def test_peak_sessions_near_littles_law(self):
        system = self.make(population=20)
        system.run()
        # Peak of a Poisson(20) population is above the mean but sane.
        assert 15 <= system.peak_concurrent_sessions <= 50

    def test_offered_rate_includes_churn(self):
        system = self.make(population=20)
        s = system.run()
        assert s.offered_rate_pps == pytest.approx(500.0 + 20 * 400.0)

    def test_deterministic_for_seed(self):
        a = self.make(seed=11).run()
        b = self.make(seed=11).run()
        assert a.n_packets == b.n_packets
        assert a.mean_delay_us == b.mean_delay_us

    def test_works_under_ips(self):
        system = self.make(paradigm="ips", policy="ips-wired")
        s = system.run()
        assert s.n_packets > 100

    def test_wired_binding_applies_to_dynamic_streams(self):
        system = self.make(policy="wired-streams", trace=True)
        system.run()
        for rec in system.tracer.records:
            assert rec.processor_id == rec.stream_id % 8
