"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    BatchPoissonSpec,
    DeterministicSpec,
    OnOffSpec,
    PoissonSpec,
)


def mean_rate(process, horizon_us=5e6):
    """Empirical packet rate (pps) over a horizon."""
    n = sum(size for _, size in process.iter_batches(horizon_us))
    return n / horizon_us * 1e6


class TestPoisson:
    def test_long_run_rate(self, rng):
        p = PoissonSpec(2_000.0).build(rng)
        assert mean_rate(p) == pytest.approx(2_000.0, rel=0.05)

    def test_single_packets(self, rng):
        p = PoissonSpec(1_000.0).build(rng)
        for _ in range(100):
            _, size = p.next_batch()
            assert size == 1

    def test_exponential_gaps(self, rng):
        p = PoissonSpec(1_000.0).build(rng)
        gaps = np.array([p.next_batch()[0] for _ in range(4000)])
        mean = gaps.mean()
        # Exponential: std ~ mean, CV ~ 1.
        assert gaps.std() / mean == pytest.approx(1.0, abs=0.08)

    def test_spec_rate_property(self):
        assert PoissonSpec(123.0).mean_rate_pps == 123.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonSpec(0.0)


class TestDeterministic:
    def test_even_spacing(self, rng):
        p = DeterministicSpec(1_000.0).build(rng)  # gap 1000 us
        gaps = [p.next_batch()[0] for _ in range(4)]
        assert gaps == [1000.0, 1000.0, 1000.0, 1000.0]

    def test_phase_offset(self, rng):
        p = DeterministicSpec(1_000.0, phase_us=250.0).build(rng)
        assert p.next_batch()[0] == 1250.0
        assert p.next_batch()[0] == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicSpec(-1.0)
        with pytest.raises(ValueError):
            DeterministicSpec(10.0, phase_us=-1.0)


class TestBatchPoisson:
    def test_long_run_rate_preserved(self, rng):
        p = BatchPoissonSpec(2_000.0, mean_batch=8.0).build(rng)
        assert mean_rate(p) == pytest.approx(2_000.0, rel=0.08)

    def test_geometric_batch_sizes(self, rng):
        p = BatchPoissonSpec(1_000.0, mean_batch=4.0).build(rng)
        sizes = np.array([p.next_batch()[1] for _ in range(4000)])
        assert sizes.min() >= 1
        assert sizes.mean() == pytest.approx(4.0, rel=0.08)

    def test_mean_batch_one_is_poisson(self, rng):
        p = BatchPoissonSpec(1_000.0, mean_batch=1.0).build(rng)
        sizes = {p.next_batch()[1] for _ in range(200)}
        assert sizes == {1}

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPoissonSpec(1_000.0, mean_batch=0.5)
        with pytest.raises(ValueError):
            BatchPoissonSpec(0.0, mean_batch=2.0)


class TestOnOff:
    def test_mean_rate_formula(self):
        spec = OnOffSpec(peak_rate_pps=10_000.0, mean_on_us=1_000.0,
                         mean_off_us=3_000.0)
        assert spec.mean_rate_pps == pytest.approx(2_500.0)

    def test_empirical_rate_matches(self, rng):
        spec = OnOffSpec(peak_rate_pps=8_000.0, mean_on_us=2_000.0,
                         mean_off_us=2_000.0)
        p = spec.build(rng)
        assert mean_rate(p, horizon_us=2e7) == pytest.approx(
            spec.mean_rate_pps, rel=0.1
        )

    def test_zero_off_is_pure_poisson_rate(self, rng):
        spec = OnOffSpec(peak_rate_pps=5_000.0, mean_on_us=1_000.0,
                         mean_off_us=0.0)
        assert spec.mean_rate_pps == pytest.approx(5_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffSpec(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            OnOffSpec(10.0, 0.0, 1.0)


class TestIterBatches:
    def test_times_absolute_and_bounded(self, rng):
        p = PoissonSpec(5_000.0).build(rng)
        times = [t for t, _ in p.iter_batches(100_000.0)]
        assert all(0 < t <= 100_000.0 for t in times)
        assert times == sorted(times)
