"""Tests for the Jain-Routhier packet-train model."""

import numpy as np
import pytest

from repro.workloads.packet_train import PacketTrainSpec


class TestRateFormula:
    def test_mean_rate(self):
        spec = PacketTrainSpec(mean_train_len=5.0, inter_car_us=50.0,
                               inter_train_us=800.0)
        expected = 5.0 / (800.0 + 4.0 * 50.0) * 1e6
        assert spec.mean_rate_pps == pytest.approx(expected)

    def test_single_car_trains(self):
        spec = PacketTrainSpec(mean_train_len=1.0, inter_car_us=50.0,
                               inter_train_us=500.0)
        assert spec.mean_rate_pps == pytest.approx(1e6 / 500.0)

    def test_for_rate_solves(self):
        spec = PacketTrainSpec.for_rate(2_000.0, mean_train_len=6.0,
                                        inter_car_us=40.0)
        assert spec.mean_rate_pps == pytest.approx(2_000.0)

    def test_for_rate_infeasible(self):
        with pytest.raises(ValueError, match="infeasible"):
            PacketTrainSpec.for_rate(100_000.0, mean_train_len=4.0,
                                     inter_car_us=1_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTrainSpec(0.5, 10.0, 100.0)
        with pytest.raises(ValueError):
            PacketTrainSpec(2.0, -1.0, 100.0)
        with pytest.raises(ValueError):
            PacketTrainSpec(2.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            PacketTrainSpec.for_rate(0.0, 2.0, 10.0)


class TestSampling:
    def test_empirical_rate(self, rng):
        spec = PacketTrainSpec.for_rate(3_000.0, mean_train_len=5.0,
                                        inter_car_us=30.0)
        p = spec.build(rng)
        n = sum(size for _, size in p.iter_batches(5e6))
        assert n / 5e6 * 1e6 == pytest.approx(3_000.0, rel=0.1)

    def test_train_structure_visible_in_gaps(self, rng):
        spec = PacketTrainSpec(mean_train_len=8.0, inter_car_us=20.0,
                               inter_train_us=5_000.0)
        p = spec.build(rng)
        gaps = np.array([p.next_batch()[0] for _ in range(3000)])
        short = (gaps == 20.0).sum()
        long = (gaps > 100.0).sum()
        # ~7/8 of gaps are the fixed inter-car gap.
        assert short / len(gaps) == pytest.approx(7 / 8, abs=0.05)
        assert long > 0

    def test_exponential_car_gaps_option(self, rng):
        spec = PacketTrainSpec(mean_train_len=8.0, inter_car_us=20.0,
                               inter_train_us=5_000.0,
                               exponential_car_gaps=True)
        p = spec.build(rng)
        gaps = np.array([p.next_batch()[0] for _ in range(2000)])
        short = gaps[gaps < 100.0]
        assert short.mean() == pytest.approx(20.0, rel=0.15)
        assert short.std() > 5.0  # not deterministic

    def test_each_batch_is_one_packet(self, rng):
        spec = PacketTrainSpec(4.0, 25.0, 1_000.0)
        p = spec.build(rng)
        assert all(p.next_batch()[1] == 1 for _ in range(100))
