"""Tests for trace-replay arrivals."""

import numpy as np
import pytest

from repro.workloads.replay import ReplaySpec


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplaySpec(times_us=())

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            ReplaySpec(times_us=(10.0, 5.0))

    def test_nonpositive_first_rejected(self):
        with pytest.raises(ValueError, match="after time 0"):
            ReplaySpec(times_us=(0.0, 5.0))

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            ReplaySpec(times_us=(1.0,), time_scale=0.0)


class TestReplay:
    def test_exact_times_reproduced(self, rng):
        spec = ReplaySpec(times_us=(10.0, 25.0, 70.0), loop=False)
        p = spec.build(rng)
        times = []
        t = 0.0
        for _ in range(3):
            gap, size = p.next_batch()
            t += gap
            times.append(t)
            assert size == 1
        assert times == [10.0, 25.0, 70.0]

    def test_exhausted_one_shot_goes_infinite(self, rng):
        spec = ReplaySpec(times_us=(10.0,), loop=False)
        p = spec.build(rng)
        p.next_batch()
        gap, _ = p.next_batch()
        assert gap == float("inf")

    def test_loop_preserves_internal_spacing(self, rng):
        spec = ReplaySpec(times_us=(10.0, 30.0), loop=True)
        p = spec.build(rng)
        gaps = [p.next_batch()[0] for _ in range(5)]
        # First cycle: 10, 20. Pad = span/(n-1) = 30. Next cycle starts at
        # 30+30+10 = 70 -> gap 40, then 20 again.
        assert gaps[0] == pytest.approx(10.0)
        assert gaps[1] == pytest.approx(20.0)
        assert gaps[3] == pytest.approx(20.0)

    def test_time_scale_speeds_up(self, rng):
        base = ReplaySpec(times_us=(100.0, 200.0), loop=False)
        fast = ReplaySpec(times_us=(100.0, 200.0), loop=False, time_scale=0.5)
        g_base = base.build(rng).next_batch()[0]
        g_fast = fast.build(rng).next_batch()[0]
        assert g_fast == pytest.approx(g_base / 2.0)

    def test_mean_rate_one_shot(self):
        spec = ReplaySpec(times_us=(10.0, 20.0, 40.0), loop=False)
        assert spec.mean_rate_pps == pytest.approx(3 / 40.0 * 1e6)

    def test_mean_rate_matches_empirical_looped(self, rng):
        times = tuple(np.sort(np.random.default_rng(0).uniform(1, 10_000, 50)))
        spec = ReplaySpec.from_array(times, loop=True)
        p = spec.build(rng)
        horizon = 2e6
        n = sum(1 for _ in p.iter_batches(horizon))
        assert n / horizon * 1e6 == pytest.approx(spec.mean_rate_pps, rel=0.05)

    def test_usable_in_simulation(self, rng):
        from repro.sim.system import run_simulation
        from repro.workloads.traffic import TrafficSpec
        from ..conftest import fast_config
        times = tuple(float(t) for t in range(100, 50_000, 500))
        traffic = TrafficSpec((ReplaySpec(times_us=times, loop=True),))
        s = run_simulation(fast_config(traffic=traffic, duration_us=100_000,
                                       warmup_us=10_000))
        assert s.n_packets > 50
