"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS
from repro.cache.hierarchy import sgi_challenge_hierarchy
from repro.core.exec_model import ExecutionTimeModel
from repro.sim.system import SystemConfig
from repro.workloads.traffic import TrafficSpec

# CI runs property suites with a fixed, reproducible profile: derandomized
# (the example sequence is a function of the test, not of a timestamp) and
# without per-example deadlines (shared runners have noisy clocks).
# Select with HYPOTHESIS_PROFILE=ci; the default profile is untouched.
hypothesis_settings.register_profile("ci", deadline=None, derandomize=True)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def hierarchy():
    return sgi_challenge_hierarchy()


@pytest.fixture
def model(hierarchy) -> ExecutionTimeModel:
    return ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy)


def fast_config(**overrides) -> SystemConfig:
    """A small, quick simulation config for integration tests."""
    defaults = dict(
        traffic=TrafficSpec.homogeneous_poisson(4, 8_000.0),
        paradigm="locking",
        policy="mru",
        duration_us=120_000.0,
        warmup_us=20_000.0,
        seed=7,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


@pytest.fixture
def quick_config() -> SystemConfig:
    return fast_config()
