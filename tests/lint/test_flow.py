"""Unit coverage of the interprocedural substrate (repro.lint.flow).

These tests build small synthetic package trees so each mechanism —
symbol tables, provenance-carrying instance bindings, the call graph,
config-attribute closures, draw-site classification — is checked in
isolation from the real codebase's size.
"""

import pathlib
import textwrap

from repro.lint.flow import (
    build_project_index,
    check_config_read_parity,
    check_rng_provenance,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


def make_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return pkg


PARAMS = """
    class ProtocolCosts:
        t_warm_us: float = 1.0
        t_cold_us: float = 5.0

        @property
        def reload_us(self) -> float:
            return self.t_cold_us - self.t_warm_us

    class SystemConfig:
        seed: int = 1
        knob_a: float = 0.5
        knob_b: float = 0.25
        costs: ProtocolCosts = None
"""

RNG = """
    import numpy as np

    class RandomStreams:
        def __init__(self, seed):
            self._root = np.random.default_rng(seed)

        def stream(self):
            return self._root
"""


# ----------------------------------------------------------------------
# Index construction
# ----------------------------------------------------------------------
class TestIndex:
    def test_symbol_tables_and_subclasses(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "core/params.py": PARAMS,
            "sim/engine.py": """
                class Base:
                    def hook(self):
                        return 0

                class Child(Base):
                    def hook(self):
                        return 1

                def helper():
                    return Child()
            """,
        })
        index = build_project_index(pkg)
        assert "Base" in index.classes and "Child" in index.classes
        assert index.subclasses["Base"] == {"Child"}
        assert index.find_method("Child", "hook") == "Child.hook"
        assert "sim/engine.py::helper" in index.functions

    def test_config_attr_closure_expands_properties(self, tmp_path):
        pkg = make_pkg(tmp_path, {"core/params.py": PARAMS})
        index = build_project_index(pkg)
        closure = index.config_attr_closure[("ProtocolCosts", "reload_us")]
        assert closure == {"t_warm_us", "t_cold_us"}

    def test_binding_provenance_credits_dereferencing_file(self, tmp_path):
        # Engine.__init__ captures config.knob_a into self.knob; the
        # *dereference* in batch.py must count as batch.py reading knob_a.
        pkg = make_pkg(tmp_path, {
            "core/params.py": PARAMS,
            "sim/engine.py": """
                from ..core.params import SystemConfig

                class Engine:
                    def __init__(self, config: SystemConfig):
                        self.knob = config.knob_a
            """,
            "sim/batch.py": """
                from .engine import Engine

                def fold(engine: Engine):
                    return engine.knob
            """,
        })
        index = build_project_index(pkg)
        assert ("SystemConfig", "knob_a") in index.reads["sim/batch.py"]

    def test_call_graph_edges(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "sim/engine.py": """
                def leaf():
                    return 1

                def caller():
                    return leaf()
            """,
        })
        index = build_project_index(pkg)
        assert "sim/engine.py::leaf" in index.edges["sim/engine.py::caller"]


# ----------------------------------------------------------------------
# RPR008 on synthetic trees
# ----------------------------------------------------------------------
class TestConfigParitySynthetic:
    def files(self, batch_body):
        return {
            "core/params.py": PARAMS,
            "sim/engine.py": """
                from ..core.params import SystemConfig

                class Engine:
                    def __init__(self, config: SystemConfig):
                        self.a = config.knob_a
                        self.b = config.knob_b
            """,
            "sim/batch.py": batch_body,
        }

    def test_missing_read_fires(self, tmp_path):
        pkg = make_pkg(tmp_path, self.files("""
            _BATCH_IRRELEVANT_FIELDS = {}

            def fold(config):
                return config.knob_a
        """))
        findings = check_config_read_parity(pkg)
        assert len(findings) == 1
        assert "SystemConfig.knob_b" in findings[0].message

    def test_declaration_covers_gap(self, tmp_path):
        pkg = make_pkg(tmp_path, self.files("""
            _BATCH_IRRELEVANT_FIELDS = {
                "SystemConfig.knob_b": "constant-folded at build time",
            }

            def fold(config):
                return config.knob_a
        """))
        assert check_config_read_parity(pkg) == []

    def test_derived_attr_covered_by_field_closure(self, tmp_path):
        # Scalar reads the derived property; batch reads the underlying
        # fields — closure expansion must call that parity.
        pkg = make_pkg(tmp_path, {
            "core/params.py": PARAMS,
            "sim/engine.py": """
                from ..core.params import ProtocolCosts

                class Engine:
                    def __init__(self, costs: ProtocolCosts):
                        self.pen = costs.reload_us
            """,
            "sim/batch.py": """
                from ..core.params import ProtocolCosts

                _BATCH_IRRELEVANT_FIELDS = {}

                def fold(costs: ProtocolCosts):
                    return costs.t_cold_us - costs.t_warm_us
            """,
        })
        assert check_config_read_parity(pkg) == []


# ----------------------------------------------------------------------
# RPR009 on synthetic trees
# ----------------------------------------------------------------------
class TestRngProvenanceSynthetic:
    def test_blessed_and_unblessed_draws(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "core/params.py": PARAMS,
            "sim/rng.py": RNG,
            "sim/engine.py": """
                import numpy as np
                from .rng import RandomStreams
                from ..core.params import SystemConfig

                class Engine:
                    def __init__(self, config: SystemConfig):
                        self.rngs = RandomStreams(config.seed)

                    def pick(self):
                        return self.rngs.stream().integers(0, 4)

                    def smuggled(self):
                        rng = np.random.default_rng(0)
                        return rng.integers(0, 4)
            """,
        })
        findings = check_rng_provenance(pkg)
        assert len(findings) == 1
        assert findings[0].line > 0
        assert "constructed outside sim/rng.py" in findings[0].message

    def test_parameter_traces_through_call_sites(self, tmp_path):
        # util.sample draws on its parameter; provenance depends on what
        # each result-affecting caller passes in.
        pkg = make_pkg(tmp_path, {
            "core/params.py": PARAMS,
            "sim/rng.py": RNG,
            "sim/util.py": """
                def sample(rng):
                    return rng.integers(0, 4)
            """,
            "sim/engine.py": """
                import numpy as np
                from .rng import RandomStreams
                from .util import sample
                from ..core.params import SystemConfig

                class Engine:
                    def __init__(self, config: SystemConfig):
                        self.rngs = RandomStreams(config.seed)

                    def good(self):
                        return sample(self.rngs.stream())

                    def bad(self):
                        return sample(np.random.default_rng(3))
            """,
        })
        findings = check_rng_provenance(pkg)
        assert len(findings) == 1
        assert "sim/util.py" in findings[0].path.replace("\\", "/")
        assert "flowing into parameter 'rng'" in findings[0].message

    def test_uncalled_library_function_is_vacuous(self, tmp_path):
        # A draw on a parameter nobody (result-affecting) calls cannot be
        # proven wrong — stays silent rather than crying wolf.
        pkg = make_pkg(tmp_path, {
            "sim/util.py": """
                def sample(rng):
                    return rng.integers(0, 4)
            """,
        })
        assert check_rng_provenance(pkg) == []

    def test_identity_helper_preserves_provenance(self, tmp_path):
        # The `rng = _check(rng)` idiom must not launder the parameter
        # atom away (the cache/traces.py pattern).
        pkg = make_pkg(tmp_path, {
            "sim/util.py": """
                def _check(rng):
                    if rng is None:
                        raise ValueError("rng required")
                    return rng

                def sample(rng):
                    rng = _check(rng)
                    return rng.integers(0, 4)
            """,
        })
        assert check_rng_provenance(pkg) == []


# ----------------------------------------------------------------------
# The real tree, through the public checkers
# ----------------------------------------------------------------------
class TestRealTree:
    def test_real_package_is_parity_clean(self):
        pkg = REPO / "src" / "repro"
        index = build_project_index(pkg)
        assert check_config_read_parity(pkg, index=index) == []
        assert check_rng_provenance(pkg, index=index) == []

    def test_real_tree_draw_sites_found(self):
        # The substrate must actually *see* the known draw surface —
        # guard against the analysis silently going blind.
        pkg = REPO / "src" / "repro"
        index = build_project_index(pkg)
        draw_files = {s.relpath for s in index.draw_sites}
        assert "sim/dispatch.py" in draw_files     # random_choice
        assert "cache/traces.py" in draw_files     # trace generators
        scalar_reads = index.reads.get("sim/batch.py", {})
        assert ("SystemConfig", "fixed_overhead_us") in scalar_reads
        assert ("ProtocolCosts", "t_warm_us") in scalar_reads
