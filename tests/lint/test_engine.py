"""Engine/CLI behaviour: discovery, scoping, filters, the clean-repo
gate, and the ``repro lint`` command surface."""

import pathlib
import subprocess
import sys

import pytest

from repro.lint import (
    RULES,
    lint_file,
    lint_paths,
    parse_code_list,
    render_github,
    render_report,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
PACKAGE = REPO / "src" / "repro"


# ----------------------------------------------------------------------
# The acceptance gate: the shipped package lints clean.
# ----------------------------------------------------------------------
def test_repo_lints_clean():
    findings = lint_paths()
    assert findings == [], render_report(findings)


def test_every_rule_documented():
    assert sorted(RULES) == ["RPR001", "RPR002", "RPR003", "RPR004",
                             "RPR005", "RPR006", "RPR007", "RPR008",
                             "RPR009", "RPR010", "RPR011", "RPR012",
                             "RPR013"]
    catalogue = (REPO / "docs" / "LINTING.md").read_text()
    for code in RULES:
        assert code in catalogue, f"{code} missing from docs/LINTING.md"


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
def test_rng_module_is_exempt_in_place():
    # sim/rng.py constructs generators by design; linted at its real
    # location it must stay clean.
    assert lint_file(PACKAGE / "sim" / "rng.py") == []


def test_runner_may_read_wall_clock():
    # runner/runner.py times its sweeps with perf_counter; orchestration
    # scope exempts it from the wall-clock half of RPR001.
    assert lint_file(PACKAGE / "runner" / "runner.py") == []


def test_fixture_outside_package_is_result_affecting(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("import time\nt = time.time()\n")
    findings = lint_file(f)
    assert [x.code for x in findings] == ["RPR001"]


def test_relpath_override_controls_scope(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("import time\nt = time.time()\n")
    assert lint_file(f, relpath="runner/foo.py") == []
    assert [x.code for x in lint_file(f, relpath="sim/foo.py")] == ["RPR001"]


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------
def test_select_and_ignore(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("import random\ndelay = 1.0\n")
    all_codes = {x.code for x in lint_paths([f])}
    assert all_codes == {"RPR001", "RPR003"}
    only = lint_paths([f], select=frozenset({"RPR003"}))
    assert {x.code for x in only} == {"RPR003"}
    rest = lint_paths([f], ignore=frozenset({"RPR003"}))
    assert {x.code for x in rest} == {"RPR001"}


def test_parse_code_list_validates():
    assert parse_code_list(None) is None
    assert parse_code_list("rpr001, RPR003") == frozenset({"RPR001", "RPR003"})
    with pytest.raises(ValueError, match="RPR999"):
        parse_code_list("RPR999")


def test_findings_sorted_and_rendered(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("import random\ndelay = 1.0\n")
    findings = lint_paths([f])
    assert findings == sorted(findings, key=lambda x: x.sort_key())
    report = render_report(findings)
    assert "RPR001" in report and "problem(s)" in report
    assert render_report([]) == "all clean"


# ----------------------------------------------------------------------
# Suppression hygiene (RPR011)
# ----------------------------------------------------------------------
def test_unused_suppression_reported(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("x = 1  # repro-lint: ignore[RPR001] nothing to silence\n")
    findings = lint_file(f)
    assert [x.code for x in findings] == ["RPR011"]
    assert "ignore[RPR001]" in findings[0].message


def test_used_suppression_not_reported(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text(
        "import time\n"
        "t = time.time()  # repro-lint: ignore[RPR001] test fixture\n")
    assert lint_file(f) == []


def test_standalone_suppression_covers_next_line(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text(
        "import time\n"
        "# repro-lint: ignore[RPR001] test fixture\n"
        "t = time.time()\n")
    assert lint_file(f) == []


def test_unused_suppression_via_lint_paths(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("x = 1  # repro-lint: ignore[RPR002] stale\n")
    assert [x.code for x in lint_paths([f])] == ["RPR011"]
    # Selecting an unrelated rule must not surface the RPR011.
    assert lint_paths([f], select=frozenset({"RPR001"})) == []


# ----------------------------------------------------------------------
# GitHub annotation output
# ----------------------------------------------------------------------
def test_render_github_format(tmp_path):
    f = tmp_path / "snippet.py"
    f.write_text("import random\n")
    findings = lint_paths([f])
    out = render_github(findings)
    assert out.startswith("::error file=")
    assert ",line=1," in out and "title=RPR001" in out
    assert render_github([]) == "::notice::repro lint: all clean"


def test_render_github_escapes_newlines():
    from repro.lint import Finding
    finding = Finding(path="a.py", line=2, col=0, code="RPR001",
                      message="bad%stuff\nsecond line")
    out = render_github([finding])
    assert "\n" not in out
    assert "%25" in out and "%0A" in out


def test_render_github_paths_repo_relative():
    findings = lint_paths([PACKAGE / "sim" / "rng.py"],
                          select=frozenset({"RPR001"}))
    # rng.py is exempt, so fabricate via a real package file finding-free
    # run: just check the path translation helper on a synthetic finding.
    from repro.lint import Finding
    finding = Finding(path=str(PACKAGE / "sim" / "rng.py"), line=1, col=0,
                      code="RPR001", message="m")
    out = render_github([finding])
    assert "file=src/repro/sim/rng.py," in out
    assert findings == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def run_cli(*argv):
    from repro.cli import main
    return main(list(argv))


def test_cli_lint_clean_repo_exits_zero(capsys):
    assert run_cli("lint") == 0
    assert "all clean" in capsys.readouterr().out


def test_cli_lint_findings_exit_one(tmp_path, capsys):
    f = tmp_path / "snippet.py"
    f.write_text("import random\n")
    assert run_cli("lint", str(f)) == 1
    assert "RPR001" in capsys.readouterr().out


def test_cli_lint_unknown_code_exits_two(tmp_path, capsys):
    assert run_cli("lint", "--select", "RPR999") == 2
    assert "RPR999" in capsys.readouterr().err


def test_cli_lint_github_format(tmp_path, capsys):
    f = tmp_path / "snippet.py"
    f.write_text("import random\n")
    assert run_cli("lint", "--format", "github", str(f)) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")


def test_cli_list_rules(capsys):
    assert run_cli("lint", "--list-rules") == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_module_invocation_smoke():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO),
    )
    assert proc.returncode == 0
    assert "RPR001" in proc.stdout
