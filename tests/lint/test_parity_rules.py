"""Mutation-style coverage for the cross-engine parity rules.

Each test copies the real package, seeds exactly the defect class the rule
exists to catch (a fused read deleted, an untraceable RNG draw, a summary
key nobody pins), and asserts the rule fires naming the defect — plus a
true-negative per rule showing declarations and suppressions both silence
it cleanly.
"""

import pathlib
import shutil

import pytest

from repro.lint import lint_paths

REPO = pathlib.Path(__file__).resolve().parents[2]
PACKAGE = REPO / "src" / "repro"


@pytest.fixture()
def pkg(tmp_path):
    copy = tmp_path / "repro"
    shutil.copytree(PACKAGE, copy)
    return copy


def run_lint(pkg):
    return lint_paths([pkg], package_root=pkg, repo_root=REPO)


def edit(path, old, new, count=None):
    source = path.read_text()
    found = source.count(old)
    assert found, f"mutation anchor {old!r} not found in {path.name}"
    if count is not None:
        assert found == count
    path.write_text(source.replace(old, new))


# ----------------------------------------------------------------------
# RPR008 — config-read parity
# ----------------------------------------------------------------------
class TestConfigReadParity:
    def test_deleted_fused_read_fires(self, pkg):
        # The fused engine stops reading fixed_overhead_us: the scalar
        # dispatcher still charges it, so the engines would drift.
        edit(pkg / "sim" / "batch.py", "cfg.fixed_overhead_us", "0.0")
        rpr008 = [f for f in run_lint(pkg) if f.code == "RPR008"]
        assert len(rpr008) == 1
        assert "SystemConfig.fixed_overhead_us" in rpr008[0].message
        assert "dispatch.py" in rpr008[0].path

    def test_declared_irrelevant_field_is_clean(self, pkg):
        edit(pkg / "sim" / "batch.py", "cfg.fixed_overhead_us", "0.0")
        edit(pkg / "sim" / "batch.py",
             "_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {}",
             '_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {\n'
             '    "SystemConfig.fixed_overhead_us": "charged at fold-back",\n'
             '}')
        assert [f for f in run_lint(pkg) if f.code == "RPR008"] == []

    def test_suppression_silences_the_anchor(self, pkg):
        edit(pkg / "sim" / "batch.py", "cfg.fixed_overhead_us", "0.0")
        edit(pkg / "sim" / "dispatch.py",
             "self._extra_us = system.fixed_overhead_us",
             "self._extra_us = system.fixed_overhead_us"
             "  # repro-lint: ignore[RPR008] test fixture", count=1)
        assert [f for f in run_lint(pkg) if f.code == "RPR008"] == []

    def test_stale_declaration_fires(self, pkg):
        # Declaring a field the batched engine *does* read is a lie the
        # rule must reject, not a no-op.
        edit(pkg / "sim" / "batch.py",
             "_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {}",
             '_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {\n'
             '    "SystemConfig.duration_us": "never needed",\n'
             '}')
        rpr008 = [f for f in run_lint(pkg) if f.code == "RPR008"]
        assert len(rpr008) == 1
        assert "stale" in rpr008[0].message
        assert "SystemConfig.duration_us" in rpr008[0].message

    def test_missing_declaration_dict_fires(self, pkg):
        edit(pkg / "sim" / "batch.py",
             "_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {}", "", count=1)
        rpr008 = [f for f in run_lint(pkg) if f.code == "RPR008"]
        assert any("must declare _BATCH_IRRELEVANT_FIELDS" in f.message
                   for f in rpr008)


# ----------------------------------------------------------------------
# RPR009 — RNG provenance + policy fallback coverage
# ----------------------------------------------------------------------
class TestRngProvenance:
    def test_untraceable_draw_fires(self, pkg):
        # A draw whose receiver never traces to RandomStreams: classic
        # "private warm-up generator" drift hazard.
        edit(pkg / "sim" / "dispatch.py",
             "    def random_choice",
             "    def warm_choice(self, items):\n"
             "        return items[int(self._warm_rng.integers(0, 2))]\n"
             "\n"
             "    def random_choice", count=1)
        rpr009 = [f for f in run_lint(pkg) if f.code == "RPR009"]
        assert len(rpr009) == 1
        assert ".integers()" in rpr009[0].message
        assert "dispatch.py" in rpr009[0].path

    def test_suppressed_draw_is_clean(self, pkg):
        edit(pkg / "sim" / "dispatch.py",
             "    def random_choice",
             "    def warm_choice(self, items):\n"
             "        return items[int(self._warm_rng.integers(0, 2))]"
             "  # repro-lint: ignore[RPR009] test fixture\n"
             "\n"
             "    def random_choice", count=1)
        assert [f for f in run_lint(pkg) if f.code == "RPR009"] == []

    def test_undeclared_fallback_policy_fires(self, pkg):
        # Drop HybridPolicy from the fallback ledger: an RNG-consuming
        # registered policy with neither a fused path nor a declaration.
        batch = pkg / "sim" / "batch.py"
        source = batch.read_text()
        start = source.index('    "HybridPolicy"')
        end = source.index("),", start) + 3
        batch.write_text(source[:start] + source[end:])
        rpr009 = [f for f in run_lint(pkg) if f.code == "RPR009"]
        assert len(rpr009) == 1
        assert "HybridPolicy" in rpr009[0].message
        assert "policies.py" in rpr009[0].path

    def test_contradictory_fallback_declaration_fires(self, pkg):
        # Declaring a policy that IS fused is a stale ledger entry.
        edit(pkg / "sim" / "batch.py",
             '    "HybridPolicy": (',
             '    "MRUPolicy": "pretend",\n    "HybridPolicy": (', count=1)
        rpr009 = [f for f in run_lint(pkg) if f.code == "RPR009"]
        assert len(rpr009) == 1
        assert "contradictory" in rpr009[0].message
        assert "MRUPolicy" in rpr009[0].message


# ----------------------------------------------------------------------
# RPR010 — metrics schema parity
# ----------------------------------------------------------------------
class TestMetricsSchemaParity:
    def test_unpinned_summary_key_fires(self, pkg):
        edit(pkg / "sim" / "metrics.py",
             '"n_packets": self.n_packets,',
             '"n_packets": self.n_packets,\n'
             '            "p50_delay_us": 0.0,', count=1)
        rpr010 = [f for f in run_lint(pkg) if f.code == "RPR010"]
        assert len(rpr010) == 1
        assert "p50_delay_us" in rpr010[0].message

    def test_declared_uncovered_key_is_clean(self, pkg):
        edit(pkg / "sim" / "metrics.py",
             '"n_packets": self.n_packets,',
             '"n_packets": self.n_packets,\n'
             '            "p50_delay_us": 0.0,', count=1)
        edit(pkg / "sim" / "metrics.py",
             '_GOLDEN_UNCOVERED_KEYS = {',
             '_GOLDEN_UNCOVERED_KEYS = {\n'
             '    "p50_delay_us": "median too seed-sensitive to pin",',
             count=1)
        assert [f for f in run_lint(pkg) if f.code == "RPR010"] == []

    def test_suppressed_key_is_clean(self, pkg):
        edit(pkg / "sim" / "metrics.py",
             '"n_packets": self.n_packets,',
             '"n_packets": self.n_packets,\n'
             '            "p50_delay_us": 0.0,', count=1)
        edit(pkg / "sim" / "metrics.py",
             "    def row(self)",
             "    # repro-lint: ignore[RPR010] test fixture\n"
             "    def row(self)", count=1)
        assert [f for f in run_lint(pkg) if f.code == "RPR010"] == []

    def test_dropped_column_extend_fires(self, pkg):
        # The batched fold-back forgets one column: scalar and batched
        # summaries would silently diverge on exec-time stats.
        edit(pkg / "sim" / "metrics.py",
             "        self._col_exec.extend(execs_us)\n", "", count=1)
        rpr010 = [f for f in run_lint(pkg) if f.code == "RPR010"]
        assert any("extend different columns" in f.message for f in rpr010)
        assert any("_col_exec" in f.message for f in rpr010)

    def test_dropped_counter_fold_fires(self, pkg):
        edit(pkg / "sim" / "metrics.py",
             "        self.completions += n_completions\n", "", count=1)
        rpr010 = [f for f in run_lint(pkg) if f.code == "RPR010"]
        assert any("mutate different counters" in f.message for f in rpr010)

    def test_stale_golden_declaration_fires(self, pkg):
        edit(pkg / "sim" / "metrics.py",
             '_GOLDEN_UNCOVERED_KEYS = {',
             '_GOLDEN_UNCOVERED_KEYS = {\n'
             '    "no_such_key": "never produced",', count=1)
        rpr010 = [f for f in run_lint(pkg) if f.code == "RPR010"]
        assert len(rpr010) == 1
        assert "stale" in rpr010[0].message and "no_such_key" in rpr010[0].message


# ----------------------------------------------------------------------
# RPR012 — warm-state ledger
# ----------------------------------------------------------------------
class TestWarmStateLedger:
    WARM = pathlib.Path("runner") / "backends" / "warm.py"

    def add_cache(self, pkg, register=None, reset=False):
        """Seed a new module-level cache in warm.py, optionally with a
        ledger entry (``register`` = reason string) and a reset hook."""
        warm = pkg / self.WARM
        edit(warm, "_MODEL_CACHE_MAX = 8",
             "_MODEL_CACHE_MAX = 8\n_EXTRA_CACHE: Dict[str, int] = {}",
             count=1)
        if register is not None:
            edit(warm, 'change results"\n    ),\n}',
                 'change results"\n    ),\n'
                 f'    "_EXTRA_CACHE": {register!r},\n}}', count=1)
        if reset:
            edit(warm, "    _MODEL_CACHE.clear()",
                 "    _MODEL_CACHE.clear()\n    _EXTRA_CACHE.clear()",
                 count=1)

    def test_unregistered_cache_fires(self, pkg):
        self.add_cache(pkg)
        rpr012 = [f for f in run_lint(pkg) if f.code == "RPR012"]
        assert len(rpr012) == 1
        assert "_EXTRA_CACHE" in rpr012[0].message
        assert "not registered in _WARM_LEDGER" in rpr012[0].message
        assert "warm.py" in rpr012[0].path

    def test_registered_and_reset_cache_is_clean(self, pkg):
        self.add_cache(pkg, register="pure memo of a pure function",
                       reset=True)
        assert [f for f in run_lint(pkg) if f.code == "RPR012"] == []

    def test_registered_but_never_reset_fires(self, pkg):
        self.add_cache(pkg, register="pure memo of a pure function",
                       reset=False)
        rpr012 = [f for f in run_lint(pkg) if f.code == "RPR012"]
        assert len(rpr012) == 1
        assert "never referenced inside reset_warm_state()" in rpr012[0].message

    def test_empty_reason_fires(self, pkg):
        self.add_cache(pkg, register="", reset=True)
        rpr012 = [f for f in run_lint(pkg) if f.code == "RPR012"]
        assert len(rpr012) == 1
        assert "non-empty reason" in rpr012[0].message

    def test_stale_ledger_entry_fires(self, pkg):
        edit(pkg / self.WARM, 'change results"\n    ),\n}',
             'change results"\n    ),\n'
             '    "_GHOST_CACHE": "long gone",\n}', count=1)
        rpr012 = [f for f in run_lint(pkg) if f.code == "RPR012"]
        assert len(rpr012) == 1
        assert "stale _WARM_LEDGER entry '_GHOST_CACHE'" in rpr012[0].message

    def test_real_package_is_clean(self):
        from repro.lint.project import check_warm_state_ledger
        assert check_warm_state_ledger(
            PACKAGE / "runner" / "backends") == []
