"""Static-typing gates that degrade gracefully when mypy is absent.

CI installs mypy in the lint job and runs it against pyproject.toml's
staged-strict config; this test mirrors that locally so developers with
``pip install -e .[lint]`` get the same gate from pytest, while minimal
environments (numpy+scipy+pytest only) skip rather than fail.
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_py_typed_marker_ships():
    assert (REPO / "src" / "repro" / "py.typed").exists()
    text = (REPO / "pyproject.toml").read_text()
    assert 'repro = ["py.typed"]' in text


def test_mypy_config_is_staged_strict():
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    for pkg in ("repro.sim.*", "repro.cache.*", "repro.runner.*",
                "repro.verify.*"):
        assert f'"{pkg}"' in text, f"{pkg} missing from strict overrides"


@pytest.mark.slow
def test_mypy_strict_passes_on_core_packages():
    pytest.importorskip("mypy", reason="mypy not installed (pip install -e .[lint])")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file=pyproject.toml"],
        capture_output=True, text=True, cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
