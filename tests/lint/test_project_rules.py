"""Project-level rules: RPR004 cache-key hygiene, RPR005 registry/golden
conformance — including the regression the rule exists for: adding a
``SystemConfig`` field without touching ``runner/keys.py`` must fail with
RPR004 naming the field.
"""

import json
import pathlib
import shutil

import pytest

from repro.lint import check_cache_key_conformance, check_registry_conformance
from repro.lint.project import system_config_fields

REPO = pathlib.Path(__file__).resolve().parents[2]
SYSTEM_PY = REPO / "src" / "repro" / "sim" / "system.py"
KEYS_PY = REPO / "src" / "repro" / "runner" / "keys.py"
EXPERIMENTS_DIR = REPO / "src" / "repro" / "experiments"
BASE_PY = EXPERIMENTS_DIR / "base.py"
MANIFEST = REPO / "tests" / "goldens" / "MANIFEST.json"


# ----------------------------------------------------------------------
# RPR004
# ----------------------------------------------------------------------
class TestRPR004:
    def test_repo_is_conformant(self):
        assert check_cache_key_conformance(SYSTEM_PY, KEYS_PY) == []

    def test_parses_real_system_config(self):
        fields = system_config_fields(SYSTEM_PY)
        assert "traffic" in fields and "seed" in fields
        assert "trace" in fields and "check_invariants" in fields

    def test_new_field_without_keys_py_update_fires(self, tmp_path):
        """The satellite regression: mutate SystemConfig, leave keys.py
        alone, and RPR004 must fail naming the new field."""
        mutated = tmp_path / "system.py"
        source = SYSTEM_PY.read_text()
        anchor = "    seed: int = 1\n"
        assert anchor in source
        mutated.write_text(source.replace(
            anchor, anchor + "    brand_new_knob: int = 0\n"))
        findings = check_cache_key_conformance(mutated, KEYS_PY)
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "RPR004"
        assert "brand_new_knob" in f.message
        # Anchored to the field's own line in the mutated file.
        assert f.path == str(mutated)
        assert "brand_new_knob" in mutated.read_text().splitlines()[f.line - 1]

    def test_full_engine_reports_the_new_field(self, tmp_path):
        """End-to-end through the lint engine: mutate a copy of the whole
        package and the only new finding is RPR004 naming the field."""
        from repro.lint import lint_paths

        pkg = tmp_path / "repro"
        shutil.copytree(REPO / "src" / "repro", pkg)
        system = pkg / "sim" / "system.py"
        anchor = "    seed: int = 1\n"
        system.write_text(system.read_text().replace(
            anchor, anchor + "    brand_new_knob: int = 0\n"))

        # Point the engine at the copied package explicitly.
        findings = lint_paths([pkg], package_root=pkg, repo_root=REPO)
        rpr004 = [f for f in findings if f.code == "RPR004"]
        assert len(rpr004) == 1
        assert "brand_new_knob" in rpr004[0].message

    def test_stale_entry_fires(self, tmp_path):
        mutated = tmp_path / "keys.py"
        source = KEYS_PY.read_text()
        mutated.write_text(source.replace('"seed",', '"seed",\n    "ghost_field",'))
        findings = check_cache_key_conformance(SYSTEM_PY, mutated)
        assert any(f.code == "RPR004" and "ghost_field" in f.message
                   and "stale" in f.message for f in findings)

    def test_field_in_both_lists_fires(self, tmp_path):
        mutated = tmp_path / "keys.py"
        source = KEYS_PY.read_text()
        mutated.write_text(source.replace('"seed",', '"seed",\n    "trace",'))
        findings = check_cache_key_conformance(SYSTEM_PY, mutated)
        assert any(f.code == "RPR004" and "'trace'" in f.message
                   and "exactly one" in f.message for f in findings)

    def test_missing_acknowledgement_set_fires(self, tmp_path):
        mutated = tmp_path / "keys.py"
        mutated.write_text("_OBSERVABILITY_FIELDS = {}\n")
        findings = check_cache_key_conformance(SYSTEM_PY, mutated)
        assert any(f.code == "RPR004" and "_CONTENT_KEY_FIELDS" in f.message
                   for f in findings)


# ----------------------------------------------------------------------
# RPR005
# ----------------------------------------------------------------------
class TestRPR005:
    def test_repo_is_conformant(self):
        assert check_registry_conformance(EXPERIMENTS_DIR, BASE_PY, MANIFEST) == []

    def test_unregistered_module_fires(self, tmp_path):
        exp = tmp_path / "experiments"
        shutil.copytree(EXPERIMENTS_DIR, exp)
        (exp / "e16_rogue.py").write_text(
            'EXPERIMENT_ID = "e16"\nTITLE = "rogue"\n')
        findings = check_registry_conformance(exp, exp / "base.py", MANIFEST)
        assert any(f.code == "RPR005" and "e16_rogue" in f.message
                   and "not registered" in f.message for f in findings)
        # ...and it has no golden either.
        assert any(f.code == "RPR005" and "golden" in f.message
                   and "'e16'" in f.message for f in findings)

    def test_registry_entry_without_module_fires(self, tmp_path):
        exp = tmp_path / "experiments"
        shutil.copytree(EXPERIMENTS_DIR, exp)
        (exp / "e14_data_touching.py").unlink()
        findings = check_registry_conformance(exp, exp / "base.py", MANIFEST)
        assert any(f.code == "RPR005" and "'e14'" in f.message
                   and "no module file" in f.message for f in findings)

    def test_missing_golden_fires(self, tmp_path):
        manifest = json.loads(MANIFEST.read_text())
        del manifest["goldens"]["e07"]
        mutated = tmp_path / "MANIFEST.json"
        mutated.write_text(json.dumps(manifest))
        findings = check_registry_conformance(EXPERIMENTS_DIR, BASE_PY, mutated)
        assert any(f.code == "RPR005" and "'e07'" in f.message
                   and "golden" in f.message for f in findings)

    def test_orphan_golden_fires(self, tmp_path):
        manifest = json.loads(MANIFEST.read_text())
        manifest["goldens"]["e99"] = "0" * 64
        mutated = tmp_path / "MANIFEST.json"
        mutated.write_text(json.dumps(manifest))
        findings = check_registry_conformance(EXPERIMENTS_DIR, BASE_PY, mutated)
        assert any(f.code == "RPR005" and "'e99'" in f.message for f in findings)

    def test_malformed_manifest_fires(self, tmp_path):
        mutated = tmp_path / "MANIFEST.json"
        mutated.write_text("{not json")
        findings = check_registry_conformance(EXPERIMENTS_DIR, BASE_PY, mutated)
        assert any(f.code == "RPR005" and "manifest" in f.message
                   for f in findings)
