"""Fixture tests for the per-file lint rules (RPR001–003).

Each rule gets at least one failing and one passing snippet, plus
suppression-comment handling.  Snippets are linted as strings through
``run_file_rules`` with explicit scoping flags, so the tests are
independent of where pytest's tmp dirs live.
"""

import textwrap

import pytest

from repro.lint.rules import run_file_rules
from repro.lint.suppressions import is_suppressed, suppressed_codes


def lint_source(source, *, result_affecting=True, rng_exempt=False,
                hot_path=False, clock_seam=False):
    source = textwrap.dedent(source)
    findings = run_file_rules("snippet.py", source,
                              result_affecting=result_affecting,
                              rng_exempt=rng_exempt,
                              hot_path=hot_path,
                              clock_seam=clock_seam)
    supp = suppressed_codes(source)
    return [f for f in findings if not is_suppressed(supp, f.line, f.code)]


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# RPR001 — determinism
# ----------------------------------------------------------------------
class TestRPR001:
    def test_stdlib_random_import_fires(self):
        assert "RPR001" in codes(lint_source("import random\n"))
        assert "RPR001" in codes(lint_source("from random import shuffle\n"))

    def test_numpy_default_rng_call_fires(self):
        out = lint_source("""
            import numpy as np
            rng = np.random.default_rng(42)
        """)
        assert codes(out) == ["RPR001"]
        assert "default_rng" in out[0].message

    def test_from_import_alias_resolves(self):
        out = lint_source("""
            from numpy.random import default_rng as mk
            rng = mk(7)
        """)
        assert any(f.code == "RPR001" and f.line == 3 for f in out)

    def test_generator_annotation_is_clean(self):
        # Annotations/isinstance checks on np.random.Generator are the
        # codebase's standard idiom and must NOT fire.
        assert lint_source("""
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                assert isinstance(rng, np.random.Generator)
                return float(rng.normal())
        """) == []

    def test_wallclock_fires_in_result_affecting_code(self):
        out = lint_source("""
            import time
            t = time.time()
        """)
        assert codes(out) == ["RPR001"]

    def test_wallclock_allowed_in_orchestration(self):
        assert lint_source("""
            import time
            t0 = time.perf_counter()
        """, result_affecting=False) == []

    def test_datetime_now_fires(self):
        out = lint_source("""
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert codes(out) == ["RPR001"]

    def test_rng_exempt_file_is_clean(self):
        assert lint_source("""
            import numpy as np
            g = np.random.default_rng(np.random.SeedSequence([1, 2]))
        """, rng_exempt=True) == []


# ----------------------------------------------------------------------
# RPR002 — ordering hazards
# ----------------------------------------------------------------------
class TestRPR002:
    def test_set_literal_iteration_fires(self):
        assert "RPR002" in codes(lint_source("""
            for x in {3, 1, 2}:
                print(x)
        """))

    def test_set_valued_name_iteration_fires(self):
        # The real-world shape: comprehension bound to a name, iterated.
        out = lint_source("""
            def f(records):
                procs = {r.proc for r in records}
                for p in procs:
                    yield p
        """)
        assert codes(out) == ["RPR002"]
        assert "procs" in out[0].message

    def test_sorted_wrapping_is_clean(self):
        assert lint_source("""
            def f(records):
                procs = {r.proc for r in records}
                for p in sorted(procs):
                    yield p
        """) == []

    def test_sorted_comprehension_over_glob_is_clean(self):
        assert lint_source("""
            def f(directory):
                return sorted(p.stem for p in directory.glob("*.json"))
        """) == []

    def test_unsorted_glob_iteration_fires(self):
        out = lint_source("""
            def f(directory):
                return [p.stem for p in directory.glob("*.json")]
        """)
        assert codes(out) == ["RPR002"]

    def test_os_listdir_fires_and_rebinding_clears(self):
        out = lint_source("""
            import os
            for name in os.listdir("."):
                print(name)
        """)
        assert codes(out) == ["RPR002"]
        # A name rebound to a list is no longer set-valued.
        assert lint_source("""
            def f(records):
                procs = {r.proc for r in records}
                procs = sorted(procs)
                for p in procs:
                    yield p
        """) == []

    def test_not_result_affecting_is_exempt(self):
        assert lint_source("""
            for x in {3, 1, 2}:
                print(x)
        """, result_affecting=False) == []


# ----------------------------------------------------------------------
# RPR003 — units discipline
# ----------------------------------------------------------------------
class TestRPR003:
    def test_bare_time_name_fires(self):
        out = lint_source("delay = 3.0\n")
        assert codes(out) == ["RPR003"]
        assert "delay" in out[0].message

    def test_suffixed_names_are_clean(self):
        assert lint_source("""
            delay_us = 3.0
            warmup_s = 1
            interarrival_ms = 0.5
        """) == []

    def test_unitless_suffix_negates(self):
        # Rates/ratios/counts containing a time word are not time values.
        assert lint_source("""
            delay_ratio = 0.5
            wait_count = 3
        """) == []

    def test_parameter_names_checked(self):
        out = lint_source("""
            def serve(packet, lock_wait, exec_us):
                return lock_wait
        """)
        assert codes(out) == ["RPR003"]

    def test_loop_and_comprehension_targets_checked(self):
        assert "RPR003" in codes(lint_source("""
            for timeout in (1, 2, 3):
                print(timeout)
        """))
        assert "RPR003" in codes(lint_source(
            "xs = [latency for latency in samples]\n"))

    def test_mixed_unit_arithmetic_fires(self):
        out = lint_source("""
            duration_us = 5.0
            warmup_s = 1.0
            total = duration_us + warmup_s
        """)
        assert any(f.code == "RPR003" and "mixes" in f.message for f in out)

    def test_same_unit_arithmetic_is_clean(self):
        assert lint_source("""
            duration_us = 5.0
            warmup_us = 1.0
            total_us = duration_us - warmup_us
        """) == []

    def test_us_suffix_does_not_read_as_seconds(self):
        # "_us" must not be mistaken for "_s" by sloppy suffix matching.
        assert lint_source("""
            a_us = 1.0
            b_us = 2.0
            c_us = a_us + b_us
        """) == []

    def test_not_result_affecting_is_exempt(self):
        assert lint_source("delay = 3.0\n", result_affecting=False) == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self):
        assert lint_source("""
            import numpy as np
            rng = np.random.default_rng(1)  # repro-lint: ignore[RPR001] test seed
        """) == []

    def test_standalone_line_above_suppression(self):
        assert lint_source("""
            import numpy as np
            # repro-lint: ignore[RPR001] seeded for the fixture
            rng = np.random.default_rng(1)
        """) == []

    def test_suppression_is_code_specific(self):
        # Suppressing RPR003 must not silence the RPR001 on the same line.
        out = lint_source("""
            import numpy as np
            rng = np.random.default_rng(1)  # repro-lint: ignore[RPR003] wrong code
        """)
        assert codes(out) == ["RPR001"]

    def test_multiple_codes_in_one_bracket(self):
        assert lint_source("""
            import numpy as np
            delay = np.random.default_rng(1).normal()  # repro-lint: ignore[RPR001,RPR003] both
        """) == []

    def test_bare_ignore_matches_nothing(self):
        out = lint_source("""
            import numpy as np
            rng = np.random.default_rng(1)  # repro-lint: ignore
        """)
        assert codes(out) == ["RPR001"]


# ----------------------------------------------------------------------
# RPR006 — pickle-safe pool submissions
# ----------------------------------------------------------------------
class TestRPR006:
    def test_lambda_submission_fires(self):
        out = lint_source("""
            def run(pool, xs):
                return [pool.submit(lambda x: x + 1, x) for x in xs]
        """)
        assert "RPR006" in codes(out)
        assert "lambda" in [f for f in out if f.code == "RPR006"][0].message

    def test_nested_def_submission_fires(self):
        out = lint_source("""
            def run(executor, xs):
                def work(x):
                    return x + 1
                return list(executor.map(work, xs))
        """)
        assert codes(out) == ["RPR006"]
        assert "work" in out[0].message

    def test_module_level_function_is_clean(self):
        assert lint_source("""
            def work(x):
                return x + 1

            def run(pool, xs):
                return [pool.submit(work, x) for x in xs]
        """) == []

    def test_attribute_receiver_matches(self):
        out = lint_source("""
            class Runner:
                def go(self, xs):
                    def work(x):
                        return x
                    return list(self.executor.map(work, xs))
        """)
        assert codes(out) == ["RPR006"]

    def test_non_pool_receiver_is_clean(self):
        # .map on arbitrary objects (e.g. pandas-style) must not fire.
        assert lint_source("""
            def run(series, xs):
                return series.map(lambda x: x + 1)
        """) == []

    def test_fires_outside_result_affecting_scope(self):
        # Pickle safety is a crash bug, not a determinism property: the
        # rule applies to orchestration code too.
        out = lint_source("""
            def run(pool, xs):
                return list(pool.map(lambda x: x, xs))
        """, result_affecting=False)
        assert codes(out) == ["RPR006"]


# ----------------------------------------------------------------------
# RPR007 — no per-event scalar dispatch in batched hot-path modules
# ----------------------------------------------------------------------
class TestRPR007:
    def test_scalar_model_call_fires_in_hot_path(self):
        out = lint_source("""
            def dispatch(model, state):
                return model.component_penalty_us(state)
        """, hot_path=True)
        assert codes(out) == ["RPR007"]
        assert "component_penalty_us" in out[0].message

    def test_per_packet_scheduling_fires_in_hot_path(self):
        out = lint_source("""
            def arrival(sim, fn, pkt):
                sim.schedule_call(0.0, fn, pkt)
        """, hot_path=True)
        assert codes(out) == ["RPR007"]

    def test_metrics_hook_fires_in_hot_path(self):
        out = lint_source("""
            def record(metrics, pkt):
                metrics.on_completion(pkt)
        """, hot_path=True)
        assert codes(out) == ["RPR007"]

    def test_policy_hook_fires_in_hot_path(self):
        # The fused loops inline policy decisions; calling back into the
        # scalar per-packet policy objects is the regression under test.
        out = lint_source("""
            def refill(dispatcher):
                return dispatcher.policy.next_dispatch()
        """, hot_path=True)
        assert codes(out) == ["RPR007"]
        assert "next_dispatch" in out[0].message

    def test_ips_policy_hook_fires_in_hot_path(self):
        out = lint_source("""
            def place(policy, stack_id, view, last):
                return policy.select_processor(stack_id, view, last)
        """, hot_path=True)
        assert codes(out) == ["RPR007"]

    def test_batch_apis_are_clean_in_hot_path(self):
        assert lint_source("""
            def fold(model, metrics, code, stream, thread, shared, cols):
                pen = model.component_penalties_array(
                    code, stream, thread, shared)
                metrics.extend_columns(*cols)
                metrics.fold_batch_counts(1, 1, 0, 0)
                return pen
        """, hot_path=True) == []

    def test_same_calls_are_clean_outside_hot_path(self):
        # The scalar engine's per-event calls are its job, not a finding.
        assert lint_source("""
            def dispatch(model, sim, fn, state, pkt):
                sim.schedule_call(0.0, fn, pkt)
                return model.component_penalty_us(state)
        """, hot_path=False) == []

    def test_suppression_comment_is_honored(self):
        out = lint_source("""
            def edge(sim, fn, pkt):
                sim.schedule_call(0.0, fn, pkt)  # repro-lint: ignore[RPR007] fold-back edge
        """, hot_path=True)
        assert out == []


# ----------------------------------------------------------------------
# RPR013 — coordinator/lease logic must use the injectable clock seam
# ----------------------------------------------------------------------
class TestRPR013:
    def test_direct_monotonic_call_fires(self):
        out = lint_source("""
            import time

            def expired(lease, timeout_s):
                return time.monotonic() - lease.last_beat_s > timeout_s
        """, result_affecting=False, clock_seam=True)
        assert codes(out) == ["RPR013"]
        assert "clock seam" in out[0].message

    def test_time_time_call_fires(self):
        out = lint_source("""
            import time

            def stamp():
                return time.time()
        """, result_affecting=False, clock_seam=True)
        assert codes(out) == ["RPR013"]

    def test_from_import_alias_resolves(self):
        out = lint_source("""
            from time import monotonic as now

            def age(lease):
                return now() - lease.granted_at_s
        """, result_affecting=False, clock_seam=True)
        assert codes(out) == ["RPR013"]

    def test_reference_without_call_is_clean(self):
        # The sanctioned default-clock idiom: pass time.monotonic *by
        # reference* into the seam; only calling it directly is banned.
        assert lint_source("""
            import time

            def make_clock(clock=None):
                return clock if clock is not None else time.monotonic
        """, result_affecting=False, clock_seam=True) == []

    def test_sleep_is_clean(self):
        # Waiting is allowed (counted poll slices); *reading* time isn't.
        assert lint_source("""
            import time

            def wait_slice():
                time.sleep(0.02)
        """, result_affecting=False, clock_seam=True) == []

    def test_same_call_clean_outside_seam_scope(self):
        assert lint_source("""
            import time

            def bench():
                return time.monotonic()
        """, result_affecting=False, clock_seam=False) == []

    def test_fires_on_seeded_violation_in_scoped_file(self, tmp_path):
        # File-level wiring: a temp file linted *as* a backends module
        # picks the rule up from CLOCK_SEAM_RELPATHS scoping alone.
        from repro.lint.engine import lint_file

        bad = tmp_path / "lease.py"
        bad.write_text("import time\n\n"
                       "def now_s():\n"
                       "    return time.monotonic()\n")
        found = lint_file(bad, relpath="runner/backends/lease.py")
        assert [f.code for f in found] == ["RPR013"]
        assert lint_file(bad, relpath="runner/runner.py") == []

    def test_suppression_comment_is_honored(self):
        out = lint_source("""
            import time

            def wall():
                return time.time()  # repro-lint: ignore[RPR013] operator-facing log stamp
        """, result_affecting=False, clock_seam=True)
        assert out == []


# ----------------------------------------------------------------------
# Broken input
# ----------------------------------------------------------------------
def test_syntax_error_becomes_finding():
    out = run_file_rules("bad.py", "def broken(:\n",
                         result_affecting=True, rng_exempt=False)
    assert [f.code for f in out] == ["RPR000"]
