"""Unit tests for scheduling policies against a scripted SchedulerView."""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import pytest

from repro.core.policies import (
    IPS_POLICIES,
    LOCKING_POLICIES,
    FCFSPolicy,
    FlowSteerPolicy,
    GroupedAffinityPolicy,
    HybridPolicy,
    IPSMRUPolicy,
    IPSWiredPolicy,
    MRUPolicy,
    PerProcessorPoolsPolicy,
    SchedulerView,
    StreamMRUPolicy,
    WiredStreamsPolicy,
    WorkStealingPolicy,
    make_ips_policy,
    make_locking_policy,
)


@dataclass
class FakePacket:
    stream_id: int
    packet_id: int = 0


class FakeView(SchedulerView):
    """Deterministic, fully scriptable scheduler view."""

    def __init__(self, n: int = 4):
        self._n = n
        self.idle: List[int] = list(range(n))
        self.last_end: Dict[int, float] = {p: -math.inf for p in range(n)}
        self.stream_last: Dict[int, int] = {}
        self.choices: List[int] = []  # recorded random picks

    @property
    def n_processors(self) -> int:
        return self._n

    def idle_processors(self) -> List[int]:
        return list(self.idle)

    def last_protocol_end(self, proc_id: int) -> float:
        return self.last_end[proc_id]

    def stream_last_processor(self, stream_id: int) -> Optional[int]:
        return self.stream_last.get(stream_id)

    def random_choice(self, items: List[int]) -> int:
        self.choices.append(items[0])
        return items[0]  # deterministic: first item


def attach(policy, view=None):
    view = view or FakeView()
    policy.attach(view)
    return policy, view


class TestFCFS:
    def test_fifo_order(self):
        pol, view = attach(FCFSPolicy())
        pol.on_arrival(FakePacket(1, packet_id=1))
        pol.on_arrival(FakePacket(2, packet_id=2))
        _, p1 = pol.next_dispatch()
        _, p2 = pol.next_dispatch()
        assert (p1.packet_id, p2.packet_id) == (1, 2)

    def test_uses_random_choice(self):
        pol, view = attach(FCFSPolicy())
        pol.on_arrival(FakePacket(0))
        pol.next_dispatch()
        assert view.choices  # consulted the RNG

    def test_none_when_empty_or_no_idle(self):
        pol, view = attach(FCFSPolicy())
        assert pol.next_dispatch() is None
        pol.on_arrival(FakePacket(0))
        view.idle = []
        assert pol.next_dispatch() is None
        assert pol.queued() == 1


class TestMRU:
    def test_picks_most_recent_processor(self):
        pol, view = attach(MRUPolicy())
        view.last_end = {0: 5.0, 1: 100.0, 2: 50.0, 3: -math.inf}
        pol.on_arrival(FakePacket(0))
        proc, _ = pol.next_dispatch()
        assert proc == 1

    def test_only_considers_idle(self):
        pol, view = attach(MRUPolicy())
        view.last_end = {0: 5.0, 1: 100.0, 2: 50.0, 3: -math.inf}
        view.idle = [0, 2]
        pol.on_arrival(FakePacket(0))
        proc, _ = pol.next_dispatch()
        assert proc == 2

    def test_ties_break_via_rng(self):
        pol, view = attach(MRUPolicy())
        pol.on_arrival(FakePacket(0))
        pol.next_dispatch()  # all at -inf -> random among all
        assert view.choices


class TestStreamMRU:
    def test_prefers_stream_last_processor(self):
        pol, view = attach(StreamMRUPolicy())
        view.stream_last[7] = 3
        view.last_end = {0: 99.0, 1: 0.0, 2: 0.0, 3: -math.inf}
        pol.on_arrival(FakePacket(7))
        proc, _ = pol.next_dispatch()
        assert proc == 3  # stream affinity wins over MRU

    def test_falls_back_to_mru_when_stream_proc_busy(self):
        pol, view = attach(StreamMRUPolicy())
        view.stream_last[7] = 3
        view.idle = [0, 1]
        view.last_end = {0: 99.0, 1: 1.0, 2: 0.0, 3: 1000.0}
        pol.on_arrival(FakePacket(7))
        proc, _ = pol.next_dispatch()
        assert proc == 0


class TestPerProcessorPools:
    def test_joins_stream_last_pool(self):
        pol, view = attach(PerProcessorPoolsPolicy())
        view.stream_last[5] = 2
        pol.on_arrival(FakePacket(5))
        proc, _ = pol.next_dispatch()
        assert proc == 2

    def test_unknown_stream_uses_wired_default(self):
        pol, view = attach(PerProcessorPoolsPolicy())
        pol.on_arrival(FakePacket(6))  # 6 % 4 == 2
        proc, _ = pol.next_dispatch()
        assert proc == 2

    def test_spills_to_shortest_when_imbalanced(self):
        pol, view = attach(PerProcessorPoolsPolicy(balance_threshold=1))
        view.idle = []  # queue up without dispatching
        view.stream_last[5] = 0
        for _ in range(3):
            pol.on_arrival(FakePacket(5))
        # Pool 0 now exceeds shortest (0) by > threshold; next spills.
        pol.on_arrival(FakePacket(5))
        view.idle = [1, 2, 3]
        proc, _ = pol.next_dispatch()
        assert proc != 0  # spilled packet served elsewhere

    def test_threads_are_processor_bound(self):
        assert PerProcessorPoolsPolicy().per_processor_threads is True

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            PerProcessorPoolsPolicy(balance_threshold=-1)


class TestWiredStreams:
    def test_static_binding(self):
        pol, view = attach(WiredStreamsPolicy())
        pol.on_arrival(FakePacket(6))  # 6 % 4 == 2
        proc, _ = pol.next_dispatch()
        assert proc == 2

    def test_waits_for_wired_processor(self):
        pol, view = attach(WiredStreamsPolicy())
        pol.on_arrival(FakePacket(6))
        view.idle = [0, 1, 3]  # wired processor 2 busy
        assert pol.next_dispatch() is None
        assert pol.queued() == 1

    def test_queued_counts_all_pools(self):
        pol, view = attach(WiredStreamsPolicy())
        view.idle = []
        for sid in range(6):
            pol.on_arrival(FakePacket(sid))
        assert pol.queued() == 6


class TestHybrid:
    def test_behaves_wired_below_threshold(self):
        pol, view = attach(HybridPolicy(overflow_threshold=2))
        pol.on_arrival(FakePacket(6))
        view.idle = [0, 1, 3]
        assert pol.next_dispatch() is None  # no stealing below threshold

    def test_steals_from_overloaded_queue(self):
        pol, view = attach(HybridPolicy(overflow_threshold=2))
        view.idle = []
        for _ in range(4):
            pol.on_arrival(FakePacket(6))  # all wired to proc 2
        view.idle = [0, 1, 3]
        view.last_end = {0: 10.0, 1: 99.0, 2: 0.0, 3: 0.0}
        proc, _ = pol.next_dispatch()
        assert proc == 1  # MRU idle thief

    def test_own_queue_served_first(self):
        pol, view = attach(HybridPolicy(overflow_threshold=1))
        view.idle = []
        for _ in range(3):
            pol.on_arrival(FakePacket(6))
        view.idle = [2, 0]
        proc, _ = pol.next_dispatch()
        assert proc == 2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            HybridPolicy(overflow_threshold=0)


class TestIPSPolicies:
    def test_wired_binding(self):
        view = FakeView()
        pol = IPSWiredPolicy()
        assert pol.select_processor(6, view, None) == 2  # 6 % 4

    def test_wired_returns_none_when_busy(self):
        view = FakeView()
        view.idle = [0, 1, 3]
        assert IPSWiredPolicy().select_processor(6, view, None) is None

    def test_mru_prefers_stack_last(self):
        view = FakeView()
        view.last_end = {0: 100.0, 1: 0.0, 2: 0.0, 3: 0.0}
        assert IPSMRUPolicy().select_processor(0, view, 3) == 3

    def test_mru_falls_back_to_mru_idle(self):
        view = FakeView()
        view.idle = [0, 1]
        view.last_end = {0: 5.0, 1: 80.0, 2: 0.0, 3: 0.0}
        assert IPSMRUPolicy().select_processor(0, view, 3) == 1

    def test_mru_none_when_no_idle(self):
        view = FakeView()
        view.idle = []
        assert IPSMRUPolicy().select_processor(0, view, None) is None


class TestFlowSteer:
    def test_hash_default_steering(self):
        pol, view = attach(FlowSteerPolicy())
        pol.on_arrival(FakePacket(6, packet_id=1))  # 6 % 4 -> proc 2
        proc, pkt = pol.next_dispatch()
        assert proc == 2 and pkt.packet_id == 1
        assert pol.target_processor(6) == 2

    def test_rebalance_moves_stream_and_counts(self):
        pol, view = attach(FlowSteerPolicy(rebalance_threshold=1))
        # Load proc 1 (stream 1's hash target) past the threshold.
        for i in range(3):
            pol._queues[1].append(FakePacket(1, packet_id=i))
        view.idle = []
        pol.on_arrival(FakePacket(1, packet_id=99))
        # 3 > 0 (shortest) + 1 -> re-steered to the shortest queue (0).
        assert pol.resteers == 1
        assert pol.target_processor(1) == 0
        assert pol._queues[0][0].packet_id == 99
        # Old packets stay put: the reordering mechanism.
        assert [p.packet_id for p in pol._queues[1]] == [0, 1, 2]

    def test_consults_no_rng(self):
        pol, view = attach(FlowSteerPolicy(rebalance_threshold=0))
        for i in range(8):
            pol.on_arrival(FakePacket(i, packet_id=i))
            pol.next_dispatch()
        assert view.choices == []

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="rebalance_threshold"):
            FlowSteerPolicy(rebalance_threshold=-1)


class TestWorkStealing:
    def test_serves_own_queue_before_stealing(self):
        pol, view = attach(WorkStealingPolicy())
        view.stream_last[5] = 1
        pol.on_arrival(FakePacket(5, packet_id=1))
        proc, pkt = pol.next_dispatch()
        assert proc == 1 and pkt.packet_id == 1
        assert pol.steals == 0

    def test_steals_newest_from_longest_queue(self):
        pol, view = attach(WorkStealingPolicy(steal_threshold=1))
        view.idle = [0, 1]
        for i in range(3):  # stream 2 hashes home to busy proc 2
            pol.on_arrival(FakePacket(2, packet_id=i))
        proc, pkt = pol.next_dispatch()
        assert pkt.packet_id == 2  # LIFO: newest end
        assert pol.steals == 1
        # The owner's in-order end is intact.
        assert [p.packet_id for p in pol._queues[2]] == [0, 1]

    def test_victim_draw_precedes_thief_draw(self):
        class RecordingView(FakeView):
            def __init__(self, n=4):
                super().__init__(n)
                self.draws = []

            def random_choice(self, items):
                self.draws.append(list(items))
                return items[0]

        view = RecordingView()
        pol, view = attach(WorkStealingPolicy(steal_threshold=1), view)
        view.idle = [0, 1]
        for i in range(2):
            pol.on_arrival(FakePacket(2, packet_id=i))  # home: proc 2
            pol.on_arrival(FakePacket(3, packet_id=i))  # home: proc 3
        pol.next_dispatch()
        # Victims 2 and 3 tie at length 2; thieves 0 and 1 tie at -inf.
        # The draw-order contract fixes victim-first.
        assert view.draws == [[2, 3], [0, 1]]

    def test_no_steal_below_threshold(self):
        pol, view = attach(WorkStealingPolicy(steal_threshold=2))
        view.idle = [0]
        pol.on_arrival(FakePacket(1, packet_id=1))
        pol.on_arrival(FakePacket(1, packet_id=2))
        assert pol.next_dispatch() is None  # 2 queued, not > 2
        assert pol.queued() == 2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="steal_threshold"):
            WorkStealingPolicy(steal_threshold=0)


class TestGroupedAffinity:
    def test_streams_hash_to_groups(self):
        pol, view = attach(GroupedAffinityPolicy(n_groups=2))
        pol.on_arrival(FakePacket(3, packet_id=1))  # group 1
        proc, pkt = pol.next_dispatch()
        assert proc % 2 == 1 and pkt.packet_id == 1

    def test_mru_within_group(self):
        pol, view = attach(GroupedAffinityPolicy(n_groups=2))
        view.last_end = {0: 1.0, 1: 5.0, 2: 9.0, 3: 7.0}
        pol.on_arrival(FakePacket(0))  # group 0: members 0 and 2
        proc, _ = pol.next_dispatch()
        assert proc == 2  # MRU of {0, 2}

    def test_waits_for_group_member(self):
        pol, view = attach(GroupedAffinityPolicy(n_groups=2))
        view.idle = [0, 2]  # only group-0 processors idle
        pol.on_arrival(FakePacket(1))  # group 1
        assert pol.next_dispatch() is None
        assert pol.queued() == 1

    def test_group_count_clamped_to_processors(self):
        pol, view = attach(GroupedAffinityPolicy(n_groups=64))
        assert pol.effective_groups == view.n_processors
        assert pol.group_of(9) == 9 % view.n_processors

    def test_n_groups_equal_processors_is_wired(self):
        pol, view = attach(GroupedAffinityPolicy(n_groups=4))
        wired, wview = attach(WiredStreamsPolicy())
        for sid in (0, 5, 10, 7):
            pol.on_arrival(FakePacket(sid))
            wired.on_arrival(FakePacket(sid))
            assert pol.next_dispatch()[0] == wired.next_dispatch()[0]

    def test_rejects_bad_group_count(self):
        with pytest.raises(ValueError, match="n_groups"):
            GroupedAffinityPolicy(n_groups=0)


class TestRegistries:
    def test_all_locking_policies_constructible(self):
        for name in LOCKING_POLICIES:
            pol = make_locking_policy(name)
            assert pol.name == name

    def test_all_ips_policies_constructible(self):
        for name in IPS_POLICIES:
            if name == "ips-random":  # registered dynamically by E11
                continue
            pol = make_ips_policy(name)
            assert pol.name == name

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown Locking"):
            make_locking_policy("nope")
        with pytest.raises(ValueError, match="unknown IPS"):
            make_ips_policy("nope")

    def test_kwargs_forwarded(self):
        pol = make_locking_policy("hybrid", overflow_threshold=5)
        assert pol.overflow_threshold == 5
