"""Tests for platform/cost/composition parameter objects."""

import pytest

from repro.core.params import (
    FDDI_MAX_PAYLOAD_BYTES,
    PAPER_COMPOSITION,
    PAPER_COSTS,
    PAPER_PLATFORM,
    FootprintComposition,
    PlatformConfig,
    ProtocolCosts,
)


class TestPlatformConfig:
    def test_paper_platform_is_challenge(self):
        assert PAPER_PLATFORM.n_processors == 8
        assert PAPER_PLATFORM.references_per_us == pytest.approx(20.0)

    def test_with_processors(self):
        p = PAPER_PLATFORM.with_processors(4)
        assert p.n_processors == 4
        assert PAPER_PLATFORM.n_processors == 8  # original untouched

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            PlatformConfig(n_processors=0)


class TestProtocolCosts:
    def test_paper_t_cold_quoted(self):
        assert PAPER_COSTS.t_cold_us == pytest.approx(284.3)

    def test_bound_ordering_enforced(self):
        with pytest.raises(ValueError, match="t_warm"):
            ProtocolCosts(t_warm_us=250.0, t_l2_us=200.0, t_cold_us=284.3)

    def test_reload_transients(self):
        c = ProtocolCosts(t_warm_us=150.0, t_l2_us=205.0, t_cold_us=284.3)
        assert c.l1_reload_us == pytest.approx(55.0)
        assert c.l2_reload_us == pytest.approx(79.3)

    def test_max_affinity_benefit_in_paper_band(self):
        # The V=0 upper bound the paper reports as 40-50%.
        assert 0.40 <= PAPER_COSTS.max_affinity_benefit <= 0.50

    def test_data_touching_matches_paper_example(self):
        # "checksumming ... 32 bytes/us ... 4432 bytes ... 139 us".
        t = PAPER_COSTS.data_touching_us(FDDI_MAX_PAYLOAD_BYTES)
        assert t == pytest.approx(138.5, abs=1.0)

    def test_data_touching_zero_payload(self):
        assert PAPER_COSTS.data_touching_us(0) == 0.0

    def test_data_touching_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_COSTS.data_touching_us(-1)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ValueError):
            ProtocolCosts(lock_overhead_us=-1.0)

    def test_rejects_cs_longer_than_warm_service(self):
        with pytest.raises(ValueError, match="critical section"):
            ProtocolCosts(lock_cs_us=200.0)

    def test_rejects_bad_checksum_rate(self):
        with pytest.raises(ValueError):
            ProtocolCosts(checksum_bytes_per_us=0.0)


class TestFootprintComposition:
    def test_default_weights_sum_to_one(self):
        c = PAPER_COMPOSITION
        assert c.code_global + c.stream_state + c.thread_stack == pytest.approx(1.0)

    def test_rejects_weights_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FootprintComposition(code_global=0.5, stream_state=0.5,
                                 thread_stack=0.5)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            FootprintComposition(code_global=-0.1, stream_state=0.6,
                                 thread_stack=0.5)

    def test_rejects_bad_shared_writable(self):
        with pytest.raises(ValueError, match="shared_writable"):
            FootprintComposition(shared_writable_of_code=1.5)

    def test_as_dict(self):
        d = PAPER_COMPOSITION.as_dict()
        assert set(d) == {"code_global", "stream_state", "thread_stack"}
        assert sum(d.values()) == pytest.approx(1.0)
