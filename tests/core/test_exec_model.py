"""Tests for the analytic packet execution-time model."""

import math

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.hierarchy import R4400_L1D, CacheHierarchy, sgi_challenge_hierarchy
from repro.core.exec_model import COLD, ComponentState, ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS, FootprintComposition


class TestBounds:
    def test_t_of_zero_is_t_warm(self, model):
        assert model.execution_time_after_idle(0.0) == pytest.approx(
            PAPER_COSTS.t_warm_us
        )

    def test_t_approaches_t_cold(self, model):
        t = model.execution_time_after_idle(1e9)  # ~17 minutes idle
        assert t == pytest.approx(PAPER_COSTS.t_cold_us, rel=1e-3)

    def test_monotone_in_idle_time(self, model):
        xs = np.logspace(0, 8, 40)
        ts = model.execution_time_after_idle(xs)
        assert np.all(np.diff(ts) >= -1e-9)

    def test_intensity_zero_stays_warm(self, model):
        assert model.execution_time_after_idle(1e9, intensity=0.0) == pytest.approx(
            PAPER_COSTS.t_warm_us
        )

    def test_lower_intensity_slower_decay(self, model):
        t_full = model.execution_time_after_idle(1e4, intensity=1.0)
        t_half = model.execution_time_after_idle(1e4, intensity=0.5)
        assert t_half < t_full

    def test_warm_and_cold_service(self, model):
        warm = model.warm_service_us()
        cold = model.cold_service_us()
        assert warm == pytest.approx(
            PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
        )
        assert cold == pytest.approx(
            PAPER_COSTS.t_cold_us + PAPER_COSTS.dispatch_us
        )

    def test_locking_adds_lock_overhead(self, model):
        assert model.warm_service_us(locking=True) - model.warm_service_us() == (
            pytest.approx(PAPER_COSTS.lock_overhead_us)
        )

    def test_requires_two_levels(self):
        single = CacheHierarchy(levels=(R4400_L1D,))
        with pytest.raises(ValueError, match="two-level"):
            ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, single)


class TestComponentState:
    def test_defaults_are_cold(self):
        s = ComponentState()
        assert s.code_refs is COLD and s.stream_refs is COLD

    def test_rejects_negative_refs(self):
        with pytest.raises(ValueError):
            ComponentState(code_refs=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ComponentState(stream_refs=float("nan"))


class TestComponentPenalty:
    def test_all_warm_zero_penalty(self, model):
        s = ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0)
        assert model.component_penalty_us(s) == pytest.approx(0.0)

    def test_all_cold_full_transient(self, model):
        pen = model.component_penalty_us(ComponentState())
        assert pen == pytest.approx(
            PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us
        )

    def test_single_cold_component_weighted(self, model):
        s = ComponentState(code_refs=0.0, stream_refs=COLD, thread_refs=0.0)
        expected = PAPER_COMPOSITION.stream_state * (
            PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us
        )
        assert model.component_penalty_us(s) == pytest.approx(expected)

    def test_shared_invalidation_penalty(self, model):
        warm = ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0)
        inv = ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0,
                             shared_invalidated=True)
        diff = model.component_penalty_us(inv) - model.component_penalty_us(warm)
        expected = (
            PAPER_COMPOSITION.code_global
            * PAPER_COMPOSITION.shared_writable_of_code
            * (PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us)
        )
        assert diff == pytest.approx(expected)

    def test_invalidation_irrelevant_when_code_cold(self, model):
        cold = ComponentState()
        cold_inv = ComponentState(shared_invalidated=True)
        assert model.component_penalty_us(cold) == pytest.approx(
            model.component_penalty_us(cold_inv)
        )

    def test_penalty_monotone_in_refs(self, model):
        pens = [
            model.component_penalty_us(
                ComponentState(code_refs=r, stream_refs=r, thread_refs=r)
            )
            for r in (0.0, 100.0, 10_000.0, 1e6, COLD)
        ]
        assert pens == sorted(pens)


class TestExecutionTime:
    def test_extra_us_added_verbatim(self, model):
        s = ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0)
        base = model.execution_time_us(s)
        assert model.execution_time_us(s, extra_us=139.0) == pytest.approx(base + 139.0)

    def test_extra_us_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.execution_time_us(ComponentState(), extra_us=-1.0)

    def test_data_touching_scales_with_payload(self, model):
        s = ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0)
        base = model.execution_time_us(s, payload_bytes=4432, data_touching=False)
        touched = model.execution_time_us(s, payload_bytes=4432, data_touching=True)
        assert touched - base == pytest.approx(4432 / 32.0)

    def test_utilization_bound_locking_capped_by_cs(self, model):
        unlocked = model.utilization_bound_rate(locking=False, n_processors=64)
        locked = model.utilization_bound_rate(locking=True, n_processors=64)
        assert locked == pytest.approx(1.0 / PAPER_COSTS.lock_cs_us)
        assert unlocked > locked

    def test_describe_mentions_bounds(self, model):
        text = model.describe()
        assert "284.3" in text


#: Module-level model for hypothesis tests (function-scoped fixtures are
#: not reset between generated examples).
_MODEL = ExecutionTimeModel(
    PAPER_COSTS, PAPER_COMPOSITION, sgi_challenge_hierarchy()
)


class TestScalarVectorEquivalence:
    @given(refs=st.floats(min_value=0.0, max_value=1e10))
    @settings(max_examples=100, deadline=None)
    def test_scalar_matches_vector(self, refs):
        f1s, f2s = _MODEL.flush_fractions(float(refs))
        f1v, f2v = _MODEL.flush_fractions(np.array([refs]))
        assert f1s == pytest.approx(float(f1v[0]), abs=1e-12)
        assert f2s == pytest.approx(float(f2v[0]), abs=1e-12)

    def test_infinite_refs_fully_flushed(self, model):
        assert model.flush_fractions(math.inf) == (1.0, 1.0)
        f1, f2 = model.flush_fractions(np.array([math.inf]))
        assert float(f1[0]) == 1.0 and float(f2[0]) == 1.0

    @given(refs=st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=60, deadline=None)
    def test_reload_penalty_within_transient(self, refs):
        pen = _MODEL.reload_penalty(float(refs))
        assert 0.0 <= pen <= (PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us) + 1e-9


class TestAlternativeComposition:
    def test_weights_change_penalty_split(self, hierarchy):
        stream_heavy = FootprintComposition(
            code_global=0.2, stream_state=0.7, thread_stack=0.1
        )
        m = ExecutionTimeModel(PAPER_COSTS, stream_heavy, hierarchy)
        s = ComponentState(code_refs=0.0, stream_refs=COLD, thread_refs=0.0)
        assert m.component_penalty_us(s) == pytest.approx(
            0.7 * (PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us)
        )


class TestMemoization:
    """The per-state penalty memo must be invisible except for speed."""

    def _states(self):
        return [
            ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0),
            ComponentState(),  # fully cold
            ComponentState(code_refs=0.0, stream_refs=COLD, thread_refs=1e4),
            ComponentState(code_refs=123.0, stream_refs=456.0,
                           thread_refs=789.0, shared_invalidated=True),
        ]

    def test_memoized_matches_uncached(self, hierarchy):
        memo = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy)
        plain = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy,
                                   memoize=False)
        for state in self._states():
            for _ in range(3):  # repeated lookups hit the memo table
                assert memo.component_penalty_us(state) == \
                    plain.component_penalty_us(state)

    def test_memo_table_populates_and_bounds(self, hierarchy):
        model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy)
        for state in self._states():
            model.component_penalty_us(state)
        assert len(model._penalty_cache) == len(self._states())
        model._PENALTY_CACHE_MAX = len(model._penalty_cache)
        extra = ComponentState(code_refs=42.0)
        model.component_penalty_us(extra)  # triggers wholesale clear
        assert len(model._penalty_cache) == 1

    def test_memoize_off_keeps_no_table(self, hierarchy):
        model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy,
                                   memoize=False)
        model.component_penalty_us(ComponentState())
        assert model._penalty_cache is None


class TestFastPathStats:
    """The scalar fast path is bit-identical and its counters add up."""

    STATES = [
        (0.0, 0.0, 0.0, False),          # all warm: analytic + dedup only
        (COLD, COLD, COLD, False),       # fully cold
        (0.0, COLD, 1e4, False),         # mixed discrete/continuous
        (123.0, 456.0, 789.0, True),     # distinct finite, invalidated
        (777.0, 777.0, 777.0, False),    # equal counts: dedup
        (50.0, 50.0, 3.0, True),
    ]

    def test_scalar_fast_path_matches_uncached_bitwise(self, hierarchy):
        memo = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy)
        plain = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy,
                                   memoize=False)
        for code, stream, thread, inv in self.STATES:
            for locking in (False, True):
                want = plain.execution_time_scalar(
                    code, stream, thread, inv, locking=locking)
                got = memo.execution_time_scalar(
                    code, stream, thread, inv, locking=locking)
                assert got == want  # exact: no tolerance

    def test_counters_all_warm_call(self, model):
        model.execution_time_scalar(0.0, 0.0, 0.0, False)
        s = model.stats()
        assert s["calls"] == s["fast_calls"] == 1
        assert s["hit_rate"] == 1.0
        assert s["component_evals"] == 3
        # code resolves analytically; stream/thread dedup against it.
        assert s["analytic_hits"] == 1
        assert s["dedup_hits"] == 2
        assert s["flush_computes"] == 0
        assert s["component_reuse_rate"] == 1.0

    def test_counters_distinct_counts_then_cache_hits(self, model):
        model.execution_time_scalar(100.0, 200.0, 300.0, False)
        s = model.stats()
        assert s["flush_computes"] == 3
        assert s["cache_size"] == 3
        model.execution_time_scalar(100.0, 200.0, 300.0, False)
        s = model.stats()
        assert s["cache_hits"] == 3
        assert s["flush_computes"] == 3  # unchanged: all served from cache
        assert s["component_evals"] == 6
        assert s["component_reuse_rate"] == 0.5

    def test_unmemoized_model_counts_slow_calls(self, hierarchy):
        plain = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, hierarchy,
                                   memoize=False)
        plain.execution_time_scalar(1.0, 2.0, 3.0, False)
        s = plain.stats()
        assert s["calls"] == 1
        assert s["fast_calls"] == 0
        assert s["hit_rate"] == 0.0
        assert s["cache_size"] == 0

    def test_cache_bound_respected_by_fast_path(self, model):
        model._PENALTY_CACHE_MAX = 8
        for i in range(1, 40):
            model.execution_time_scalar(float(i), 0.0, 0.0, False)
        assert len(model._penalty_cache) <= 8
