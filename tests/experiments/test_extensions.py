"""Tests for the extension experiments (x01 hybrid, x02 packet trains)."""

import pytest

from repro.experiments.base import EXTENSION_IDS, load_experiment, run_experiment


class TestRegistry:
    def test_ids_resolve(self):
        for xid in EXTENSION_IDS:
            mod = load_experiment(xid)
            assert hasattr(mod, f"run_{xid}")


class TestX01Hybrid:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("x01", fast=True)

    def test_hybrid_capacity_near_wired(self, result):
        by = result.meta["by_policy"]
        assert by["hybrid[17]"]["capacity_pps"] >= 0.9 * by[
            "locking-wired"]["capacity_pps"]

    def test_hybrid_scales_single_stream(self, result):
        by = result.meta["by_policy"]
        # Hybrid steals overflow -> single stream uses many CPUs, unlike
        # strict wiring.
        assert by["hybrid[17]"]["single_stream_pps"] > 3 * by[
            "locking-wired"]["single_stream_pps"]

    def test_hybrid_burst_robust(self, result):
        by = result.meta["by_policy"]
        assert by["hybrid[17]"]["burst16_delay_us"] < 0.5 * by[
            "locking-wired"]["burst16_delay_us"]
        assert by["hybrid[17]"]["burst16_delay_us"] < 0.5 * by[
            "ips-wired"]["burst16_delay_us"]


class TestX02PacketTrains:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("x02", fast=True)

    def test_serial_stacks_degrade_with_train_length(self, result):
        ips = [row["ips-wired"] for row in result.rows]
        assert ips[-1] > 3 * ips[0]

    def test_mru_stays_flat(self, result):
        mru = [row["locking-mru"] for row in result.rows]
        assert max(mru) < 1.5 * min(mru)

    def test_train_one_is_poisson_baseline(self, result):
        assert result.rows[0]["mean_train_len"] == 1.0


class TestX03SessionChurn:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("x03", fast=True)

    def test_affinity_supports_more_sessions(self, result):
        supported = result.meta["supported"]
        assert supported["ips-wired"] >= supported["fcfs(baseline)"]

    def test_delay_grows_with_population(self, result):
        data_rows = [r for r in result.rows if "mean_sessions" in r]
        fcfs = [r["fcfs(baseline)"] for r in data_rows]
        assert fcfs[-1] > fcfs[0]
