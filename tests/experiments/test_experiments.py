"""Tests for the experiment framework and selected experiment runs.

Model-level experiments (E01-E05) run in full; simulation experiments are
exercised through trimmed smoke runs plus the shared sweep helpers, to
keep the unit suite fast.  The benchmark suite runs every experiment at
its full fast-mode grid.
"""

import math

import pytest

from repro.experiments.base import (
    EXPERIMENT_IDS,
    ExperimentResult,
    delay_vs_rate_sweep,
    find_capacity,
    load_experiment,
    run_experiment,
)
from repro.sim.system import SystemConfig
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


class TestRegistry:
    def test_all_ids_load(self):
        for eid in EXPERIMENT_IDS:
            mod = load_experiment(eid)
            assert hasattr(mod, "run")
            assert mod.EXPERIMENT_ID == eid
            assert isinstance(mod.TITLE, str) and mod.TITLE

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            load_experiment("e99")

    def test_case_insensitive(self):
        assert load_experiment("E03").EXPERIMENT_ID == "e03"


class TestModelExperiments:
    def test_e01_reproduces_bounds(self):
        r = run_experiment("e01")
        assert isinstance(r, ExperimentResult)
        cold_row = next(row for row in r.rows if "cold" in row["condition"])
        assert cold_row["anchored_us"] == pytest.approx(284.3)
        costs = r.meta["anchored_costs"]
        assert 0.40 <= costs.max_affinity_benefit <= 0.50

    def test_e02_footprint_table(self):
        r = run_experiment("e02")
        assert len(r.rows) >= 8
        assert all(0 < v < 1 for v in r.meta["exponents"].values())

    def test_e03_l2_much_slower(self):
        r = run_experiment("e03")
        assert r.meta["l2_over_l1_ratio"] > 10.0
        for row in r.rows:
            assert 0.0 <= row["F1"] <= 1.0
            assert row["F2"] <= row["F1"] + 1e-9

    def test_e04_model_validates(self):
        r = run_experiment("e04", seed=2)
        assert r.meta["comparison"].mean_abs_error < 0.1

    def test_e05_monotone_t_of_x(self):
        r = run_experiment("e05")
        for key in ("t(x), V=0.25", "t(x), V=1.0"):
            vals = [row[key] for row in r.rows]
            assert vals == sorted(vals)
            assert 150.0 <= vals[0] and vals[-1] <= 284.3 + 1e-6

    def test_result_str_renders(self):
        r = run_experiment("e02")
        out = str(r)
        assert "[e02]" in out and "u(R; L=32)" in out


class TestSweepHelpers:
    def test_delay_vs_rate_sweep_shapes(self):
        base = fast_config(duration_us=80_000, warmup_us=10_000)
        rows, series = delay_vs_rate_sweep(
            base,
            {"mru": ("locking", "mru"), "ips": ("ips", "ips-wired")},
            rates_pps=(4_000, 12_000),
            n_streams=4,
        )
        assert len(rows) == 2
        assert set(series) == {"mru", "ips"}
        assert all(len(v) == 2 for v in series.values())
        assert all(v > 0 for v in series["mru"])

    def test_saturated_runs_marked_inf(self):
        base = fast_config(duration_us=80_000, warmup_us=10_000)
        rows, series = delay_vs_rate_sweep(
            base, {"mru": ("locking", "mru")},
            rates_pps=(200_000,),  # far beyond capacity
            n_streams=4,
        )
        assert math.isinf(series["mru"][0])

    def test_find_capacity_brackets(self):
        def make(rate: float) -> SystemConfig:
            return fast_config(
                traffic=TrafficSpec.homogeneous_poisson(8, rate),
                duration_us=150_000, warmup_us=20_000,
            )
        cap = find_capacity(make, low_pps=5_000, high_pps=100_000, iterations=5)
        # 8 CPUs at ~200 us/packet -> capacity near 40k pps.
        assert 25_000 < cap < 60_000

    def test_find_capacity_validates(self):
        with pytest.raises(ValueError):
            find_capacity(lambda r: None, low_pps=10.0, high_pps=5.0)


class TestSimulationExperimentSmoke:
    """Trimmed versions of the simulation experiments."""

    def test_e06_style_ordering_holds(self):
        # At moderate load, MRU < FCFS in mean delay.
        base = fast_config(duration_us=150_000, warmup_us=25_000,
                           traffic=TrafficSpec.homogeneous_poisson(8, 8_000))
        rows, series = delay_vs_rate_sweep(
            base,
            {"fcfs": ("locking", "fcfs"), "mru": ("locking", "mru")},
            rates_pps=(8_000,),
            n_streams=8,
        )
        assert series["mru"][0] < series["fcfs"][0]

    def test_e09_capacity_ordering(self):
        r = run_experiment("e09", fast=True)
        caps = r.meta["capacities"]
        assert caps["ips-wired"] > caps["locking-fcfs(baseline)"]
        assert caps["locking-wired-streams"] > caps["locking-fcfs(baseline)"]

    def test_e14_reduction_dilutes(self):
        r = run_experiment("e14", fast=True)
        reductions = [row["reduction_pct"] for row in r.rows]
        assert reductions[0] > reductions[-1]
        checksums = [row["checksum_us"] for row in r.rows]
        assert checksums[-1] == pytest.approx(138.5, abs=1.0)


class TestCsvExport:
    def test_round_trips_rows(self, tmp_path):
        import csv
        r = run_experiment("e02")
        path = tmp_path / "e02.csv"
        r.to_csv(path)
        rows = list(csv.DictReader(open(path)))
        assert len(rows) == len(r.rows)
        assert set(rows[0]) == set(r.rows[0])

    def test_ragged_rows_padded(self, tmp_path):
        from repro.experiments.base import ExperimentResult
        result = ExperimentResult(
            experiment_id="t", title="t",
            rows=[{"a": 1}, {"a": 2, "b": 3}], text="",
        )
        path = tmp_path / "ragged.csv"
        result.to_csv(path)
        import csv
        rows = list(csv.DictReader(open(path)))
        assert rows[0]["b"] == ""
        assert rows[1]["b"] == "3"
