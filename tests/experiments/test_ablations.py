"""Tests for the ablation studies (A01-A04)."""

import pytest

from repro.experiments.base import ABLATION_IDS, run_experiment


class TestRegistry:
    def test_ablation_ids_run(self):
        # Cheap structural check: every id resolves and dispatches.
        from repro.experiments.base import load_experiment
        for aid in ABLATION_IDS:
            mod = load_experiment(aid)
            assert hasattr(mod, f"run_{aid}")


class TestA01LockCosts:
    def test_ips_margin_grows_with_lock_cost(self):
        r = run_experiment("a01")
        margins = r.meta["margins"]
        assert margins == sorted(margins)
        assert margins[-1] > margins[0]


class TestA02SharedWritable:
    def test_locking_penalty_scales_ips_immune(self):
        r = run_experiment("a02")
        locking = r.meta["locking_execs"]
        ips = r.meta["ips_execs"]
        assert locking == sorted(locking)
        assert locking[-1] > locking[0] + 5.0
        assert max(ips) - min(ips) < 1.0  # structurally unaffected


class TestA03Composition:
    def test_stream_weight_strengthens_wired(self):
        r = run_experiment("a03")
        advantages = r.meta["advantages"]
        assert advantages == sorted(advantages)
        assert advantages[-1] > advantages[0]


class TestA04Geometry:
    def test_bigger_l2_flushes_slower(self):
        r = run_experiment("a04")
        by_geo = {row["geometry"]: row for row in r.rows}
        assert (by_geo["4M L2"]["l2_half_flush_us"]
                > by_geo["paper (16K split L1, 1M L2)"]["l2_half_flush_us"]
                > by_geo["256K L2"]["l2_half_flush_us"])

    def test_unified_l1_flushes_faster(self):
        r = run_experiment("a04")
        by_geo = {row["geometry"]: row for row in r.rows}
        assert (by_geo["unified L1"]["l1_half_flush_us"]
                < by_geo["paper (16K split L1, 1M L2)"]["l1_half_flush_us"])


class TestA05LockGranularity:
    def test_lock_waits_shrink_with_granularity(self):
        r = run_experiment("a05")
        waits = r.meta["lock_waits"]
        assert waits == sorted(waits, reverse=True)
        assert waits[0] > waits[-1]
