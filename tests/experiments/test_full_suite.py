"""End-to-end regeneration of every paper artifact (the `repro all` path).

One integration test runs the full E01-E14 suite in fast mode and asserts
the paper's headline findings on the actual artifact outputs.  This is
the slowest test in the suite (~40 s) but guards exactly what the
repository is for.
"""

import math

import pytest

from repro.experiments.base import EXPERIMENT_IDS, all_experiments


@pytest.fixture(scope="module")
def results():
    out = {r.experiment_id: r for r in all_experiments(fast=True)}
    assert set(out) == set(EXPERIMENT_IDS)
    return out


class TestSuiteRuns:
    def test_every_artifact_produces_rows_and_text(self, results):
        for eid, r in results.items():
            assert r.rows, eid
            assert r.text.strip(), eid

    def test_renderings_are_printable(self, results):
        for r in results.values():
            assert str(r)  # no formatting crashes


class TestHeadlineFindings:
    """The paper's conclusions, asserted on the regenerated artifacts."""

    def test_v0_benefit_in_band(self, results):
        costs = results["e01"].meta["anchored_costs"]
        assert 0.40 <= costs.max_affinity_benefit <= 0.50

    def test_l2_flushes_much_slower(self, results):
        assert results["e03"].meta["l2_over_l1_ratio"] > 50

    def test_mru_beats_baseline_under_locking(self, results):
        for row in results["e06"].rows:
            fcfs, mru = row["fcfs(baseline)"], row["mru"]
            if math.isfinite(fcfs) and math.isfinite(mru) and row["rate_pps"] <= 32_000:
                assert mru < fcfs, row

    def test_wired_streams_wins_at_high_rate(self, results):
        # At the highest rate where wired is stable, it beats (or outlives)
        # MRU.
        last = results["e06"].rows[-1]
        assert last["wired-streams"] < last["mru"]

    def test_ips_saturates_after_locking(self, results):
        rate_rows = [r for r in results["e08"].rows if "rate_pps" in r]
        last = rate_rows[-1]
        assert last["ips-wired"] < last["locking-mru"]

    def test_ips_highest_capacity(self, results):
        caps = results["e09"].meta["capacities"]
        assert caps["ips-wired"] == max(caps.values())

    def test_reduction_curves_have_v0_envelope_at_light_load(self, results):
        first = results["e10"].rows[0]
        assert first["V=0.0"] >= first["V=1.0"]

    def test_ips_reduction_reaches_band(self, results):
        assert results["e11"].meta["v0_peak_percent"] >= 40.0

    def test_ips_flat_intra_stream(self, results):
        rows = results["e12"].rows
        assert rows[-1]["ips_speedup"] < 1.5
        assert rows[-1]["locking_speedup"] > 4.0

    def test_ips_less_robust_to_bursts(self, results):
        burst_rows = [r for r in results["e13"].rows if "mean_burst" in r]
        biggest = burst_rows[-1]
        assert biggest["ips-wired"] > 2 * biggest["locking-mru"]

    def test_data_touching_dilutes(self, results):
        rows = results["e14"].rows
        assert rows[0]["reduction_pct"] > rows[-1]["reduction_pct"]
