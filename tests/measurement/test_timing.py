"""Tests for the wall-clock timing harness."""

import numpy as np
import pytest

from repro.measurement.timing import TimingResult, time_callable, time_fast_path


class TestTimingResult:
    def test_from_samples(self):
        r = TimingResult.from_samples(np.array([1.0, 2.0, 3.0, 4.0]))
        assert r.n_iterations == 4
        assert r.mean_us == pytest.approx(2.5)
        assert r.min_us == 1.0 and r.max_us == 4.0
        assert r.p50_us <= r.p95_us

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingResult.from_samples(np.array([]))


class TestTimeCallable:
    def test_counts_iterations(self):
        calls = []
        r = time_callable(lambda: calls.append(1), n_iterations=50, warmup=5)
        assert r.n_iterations == 50
        assert len(calls) == 55  # warmup included in calls, not in samples

    def test_positive_times(self):
        r = time_callable(lambda: sum(range(100)), n_iterations=20, warmup=2)
        assert r.mean_us > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, n_iterations=0)


class TestTimeFastPath:
    def test_runs_and_reports(self):
        r = time_fast_path(n_streams=2, n_iterations=40, payload_bytes=64)
        assert r.n_iterations == 40
        assert 0.0 < r.mean_us < 100_000.0

    def test_checksum_verification_costs_more(self):
        base = time_fast_path(n_streams=2, n_iterations=60,
                              payload_bytes=4096)
        checked = time_fast_path(n_streams=2, n_iterations=60,
                                 payload_bytes=4096,
                                 verify_udp_checksum=True)
        assert checked.p50_us > base.p50_us
