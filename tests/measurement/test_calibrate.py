"""Tests for the calibration pipeline."""

import pytest

from repro.core.params import PAPER_COSTS, ProtocolCosts
from repro.measurement.cachestate import CacheStateExperiment, FootprintLayout
from repro.measurement.calibrate import (
    calibrated_paper_costs,
    derive_composition,
    derive_costs,
    scale_to_target,
)


class TestDeriveCosts:
    def test_bounds_ordered(self):
        costs = derive_costs()
        assert costs.t_warm_us < costs.t_l2_us < costs.t_cold_us

    def test_overheads_from_template(self):
        costs = derive_costs()
        assert costs.lock_overhead_us == PAPER_COSTS.lock_overhead_us
        assert costs.checksum_bytes_per_us == PAPER_COSTS.checksum_bytes_per_us

    def test_custom_template(self):
        template = ProtocolCosts(dispatch_us=9.0)
        costs = derive_costs(template=template)
        assert costs.dispatch_us == 9.0


class TestScaleToTarget:
    def test_anchors_t_cold(self):
        measured = ProtocolCosts(t_warm_us=100.0, t_l2_us=150.0, t_cold_us=200.0)
        scaled = scale_to_target(measured, 284.3)
        assert scaled.t_cold_us == pytest.approx(284.3)

    def test_preserves_ratios(self):
        measured = ProtocolCosts(t_warm_us=100.0, t_l2_us=150.0, t_cold_us=200.0)
        scaled = scale_to_target(measured, 284.3)
        assert scaled.t_warm_us / scaled.t_cold_us == pytest.approx(0.5)
        assert scaled.t_l2_us / scaled.t_cold_us == pytest.approx(0.75)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            scale_to_target(PAPER_COSTS, 0.0)


class TestDeriveComposition:
    def test_weights_sum_to_one(self):
        comp = derive_composition()
        total = comp.code_global + comp.stream_state + comp.thread_stack
        assert total == pytest.approx(1.0)

    def test_code_dominates_default_layout(self):
        # The default layout gives code+globals the largest region.
        comp = derive_composition()
        assert comp.code_global > comp.stream_state


class TestFullPipeline:
    def test_calibrated_costs_near_paper_presets(self):
        costs, comp = calibrated_paper_costs()
        assert costs.t_cold_us == pytest.approx(284.3)
        # The simulated platform's measured bounds land near the presets.
        assert costs.t_warm_us == pytest.approx(PAPER_COSTS.t_warm_us, rel=0.1)
        assert costs.t_l2_us == pytest.approx(PAPER_COSTS.t_l2_us, rel=0.1)
        # And the V=0 affinity-benefit bound sits in the published band.
        assert 0.40 <= costs.max_affinity_benefit <= 0.50

    def test_calibrated_costs_usable_in_simulation(self):
        from repro.sim.system import run_simulation
        from ..conftest import fast_config
        costs, comp = calibrated_paper_costs()
        s = run_simulation(fast_config(costs=costs, composition=comp,
                                       duration_us=80_000, warmup_us=10_000))
        assert s.n_packets > 0
        assert s.mean_exec_us > costs.t_warm_us
