"""Tests for the conditioned cache-state measurement harness."""

import numpy as np
import pytest

from repro.measurement.cachestate import (
    CacheStateExperiment,
    FootprintLayout,
    TwoLevelTimedCache,
)


class TestFootprintLayout:
    def test_regions_disjoint(self):
        layout = FootprintLayout()
        regions = list(layout.component_regions().values())
        for (b1, s1), (b2, s2) in zip(regions, regions[1:]):
            assert b1 + s1 < b2  # gap between regions

    def test_packet_trace_length(self):
        layout = FootprintLayout(references_per_packet=1234)
        assert len(layout.packet_trace()) == 1234

    def test_packet_trace_covers_all_components(self):
        layout = FootprintLayout()
        trace = layout.packet_trace()
        for name in layout.component_regions():
            region = layout.region_trace(name)
            assert np.intersect1d(trace, region).size > 0

    def test_trace_deterministic(self):
        a = FootprintLayout().packet_trace()
        b = FootprintLayout().packet_trace()
        assert np.array_equal(a, b)

    def test_total_bytes(self):
        layout = FootprintLayout(code_global_bytes=1024,
                                 stream_state_bytes=512,
                                 thread_stack_bytes=256)
        assert layout.total_bytes == 1792

    def test_validation(self):
        with pytest.raises(ValueError):
            FootprintLayout(code_global_bytes=0)
        with pytest.raises(ValueError):
            FootprintLayout(references_per_packet=0)
        with pytest.raises(ValueError):
            FootprintLayout(stride_bytes=0)


class TestTwoLevelTimedCache:
    def test_warm_run_is_fastest(self):
        cache = TwoLevelTimedCache()
        trace = FootprintLayout().packet_trace()
        cache.warm(trace)
        warm = cache.run(trace)
        cold_cache = TwoLevelTimedCache()
        cold = cold_cache.run(trace)
        assert warm.time_us < cold.time_us
        assert warm.l2_misses == 0

    def test_flush_l1_preserves_l2(self):
        cache = TwoLevelTimedCache()
        trace = FootprintLayout().packet_trace()
        cache.warm(trace)
        cache.flush_l1()
        m = cache.run(trace)
        assert m.l1_misses > 0
        assert m.l2_misses == 0

    def test_base_time_matches_reference_count(self):
        cache = TwoLevelTimedCache(l2_hit_cycles=0.0, memory_cycles=0.0)
        trace = FootprintLayout(references_per_packet=2000).packet_trace()
        m = cache.run(trace)
        # 2000 refs * 5 cycles / 100 MHz = 100 us.
        assert m.time_us == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelTimedCache(clock_hz=0.0)
        with pytest.raises(ValueError):
            TwoLevelTimedCache(memory_cycles=-1.0)


class TestCacheStateExperiment:
    @pytest.fixture(scope="class")
    def experiment(self):
        return CacheStateExperiment()

    def test_condition_ordering(self, experiment):
        times = experiment.measure_all()
        assert (times["warm"].time_us
                < times["l2_warm"].time_us
                < times["cold"].time_us)

    def test_warm_cold_ratio_near_paper(self, experiment):
        times = experiment.measure_all()
        ratio = times["warm"].time_us / times["cold"].time_us
        # Paper band: 1 - ratio in 40-50%.
        assert 0.4 <= 1.0 - ratio <= 0.55

    def test_unknown_condition(self, experiment):
        with pytest.raises(ValueError, match="condition"):
            experiment.measure("lukewarm")

    def test_component_breakdown_positive(self, experiment):
        breakdown = experiment.component_breakdown()
        assert set(breakdown) == {"code_global", "stream_state", "thread_stack"}
        assert all(v > 0 for v in breakdown.values())

    def test_breakdown_scales_with_region_size(self):
        small = CacheStateExperiment(FootprintLayout(stream_state_bytes=1024))
        large = CacheStateExperiment(FootprintLayout(stream_state_bytes=4096))
        assert (large.component_breakdown()["stream_state"]
                > small.component_breakdown()["stream_state"])
