"""Tests for the analytic-vs-measured execution-time validation."""

import pytest

from repro.measurement.model_validation import (
    ModelValidationPoint,
    validate_exec_model,
)


class TestPoints:
    def test_relative_error(self):
        p = ModelValidationPoint(intervening_refs=10, measured_us=200.0,
                                 analytic_us=210.0)
        assert p.relative_error == pytest.approx(0.05)

    def test_zero_measured_infinite_error(self):
        p = ModelValidationPoint(intervening_refs=10, measured_us=0.0,
                                 analytic_us=1.0)
        assert p.relative_error == float("inf")


class TestValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return validate_exec_model(
            intervening_refs=(0, 1_000, 10_000, 100_000),
        )

    def test_model_matches_measurement(self, result):
        # The paper's methodological core: the cheap analytic form tracks
        # the exact platform within a few percent.
        assert result.mean_relative_error < 0.05
        assert result.max_relative_error < 0.10

    def test_zero_displacement_exact(self, result):
        p0 = result.points[0]
        assert p0.intervening_refs == 0
        assert p0.analytic_us == pytest.approx(p0.measured_us)
        assert p0.analytic_us == pytest.approx(result.t_warm_us)

    def test_measured_curve_monotone(self, result):
        measured = [p.measured_us for p in result.points]
        assert measured == sorted(measured)

    def test_curve_bounded_by_cold(self, result):
        for p in result.points:
            assert p.measured_us <= result.t_cold_us + 1e-6
            assert p.analytic_us <= result.t_cold_us + 1e-6

    def test_small_displacing_region_breaks_assumption(self):
        # Documented caveat: a displacing working set smaller than L2 maps
        # to a contiguous subset of sets and the analytic model
        # under-predicts the displacement.
        r = validate_exec_model(
            displacing_working_set=256 * 1024,
            intervening_refs=(0, 30_000, 500_000),
        )
        assert r.max_relative_error > 0.10
