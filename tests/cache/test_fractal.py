"""Tests for fractal-dimension estimation and miss-ratio prediction."""

import numpy as np
import pytest

from repro.cache.fractal import (
    FractalFit,
    estimate_fractal_dimension,
    predict_miss_ratio,
)
from repro.cache.hierarchy import CacheLevelConfig
from repro.cache.simulator import CacheSimulator
from repro.cache.traces import sequential_trace, uniform_trace, zipf_trace


class TestEstimation:
    def test_sweeping_walk_dimension_one(self):
        # Sequential trace: every reference is a new line -> u = R, D = 1.
        trace = sequential_trace(5_000, stride_bytes=64)
        fit = estimate_fractal_dimension(trace, line_bytes=64)
        assert fit.dimension == pytest.approx(1.0, abs=0.05)
        assert fit.r_squared > 0.999

    def test_zipf_walk_sticky(self, rng):
        trace = zipf_trace(50_000, 512 * 1024, rng=rng, skew=1.4)
        fit = estimate_fractal_dimension(trace, line_bytes=64)
        assert fit.dimension > 1.2  # reuse-heavy
        assert fit.r_squared > 0.95

    def test_higher_skew_higher_dimension(self):
        mild = zipf_trace(40_000, 512 * 1024,
                          rng=np.random.default_rng(1), skew=1.15)
        sticky = zipf_trace(40_000, 512 * 1024,
                            rng=np.random.default_rng(1), skew=2.2)
        d_mild = estimate_fractal_dimension(mild, 64).dimension
        d_sticky = estimate_fractal_dimension(sticky, 64).dimension
        assert d_sticky > d_mild

    def test_fit_evaluates(self):
        fit = FractalFit(W=2.0, dimension=1.25, r_squared=1.0, line_bytes=64)
        u = fit.unique_lines(10_000.0)
        assert u == pytest.approx(2.0 * 10_000.0 ** 0.8)

    def test_references_to_fill_inverts(self):
        fit = FractalFit(W=2.0, dimension=1.25, r_squared=1.0, line_bytes=64)
        R = fit.references_to_fill(1024)
        assert fit.unique_lines(R) == pytest.approx(1024.0, rel=1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="too short"):
            estimate_fractal_dimension(np.arange(5))
        with pytest.raises(ValueError, match="power of two"):
            estimate_fractal_dimension(np.arange(100), line_bytes=48)
        with pytest.raises(ValueError, match="out of range"):
            estimate_fractal_dimension(np.arange(100), checkpoints=[500])


class TestMissRatioPrediction:
    def test_sweeping_walk_always_misses(self):
        trace = sequential_trace(5_000, stride_bytes=64)
        fit = estimate_fractal_dimension(trace, line_bytes=64)
        assert predict_miss_ratio(fit, cache_lines=256) == pytest.approx(
            1.0, abs=0.05
        )

    def test_prediction_close_to_simulation_zipf(self, rng):
        # The [26] application: predict LRU miss ratio from D alone and
        # compare against the exact trace-driven simulator.
        trace = zipf_trace(80_000, 1 << 20, rng=rng, skew=1.4,
                           granule_bytes=64)
        line = 64
        fit = estimate_fractal_dimension(trace, line_bytes=line)
        config = CacheLevelConfig(size_bytes=256 * line, line_bytes=line,
                                  associativity=256)  # fully associative
        sim = CacheSimulator(config)
        measured = sim.access_trace(trace).miss_ratio
        predicted = predict_miss_ratio(fit, cache_lines=256)
        assert predicted == pytest.approx(measured, abs=0.15)

    def test_bigger_cache_lower_predicted_misses(self, rng):
        trace = zipf_trace(40_000, 512 * 1024, rng=rng, skew=1.3)
        fit = estimate_fractal_dimension(trace, line_bytes=64)
        small = predict_miss_ratio(fit, cache_lines=64)
        large = predict_miss_ratio(fit, cache_lines=4096)
        assert large < small

    def test_tiny_cache_saturates(self):
        fit = FractalFit(W=5.0, dimension=1.3, r_squared=1.0, line_bytes=64)
        assert predict_miss_ratio(fit, cache_lines=1) == 1.0

    def test_validation(self):
        fit = FractalFit(W=1.0, dimension=1.2, r_squared=1.0, line_bytes=64)
        with pytest.raises(ValueError):
            predict_miss_ratio(fit, cache_lines=0)
        with pytest.raises(ValueError):
            fit.references_to_fill(0)
