"""Tests for cache-level configs and the two-level hierarchy model."""

import numpy as np
import pytest

from repro.cache.footprint import MVS_WORKLOAD
from repro.cache.hierarchy import (
    CHALLENGE_L2,
    R4400_L1D,
    CacheHierarchy,
    CacheLevelConfig,
    sgi_challenge_hierarchy,
)


class TestCacheLevelConfig:
    def test_r4400_l1_geometry(self):
        assert R4400_L1D.size_bytes == 16 * 1024
        assert R4400_L1D.line_bytes == 32
        assert R4400_L1D.n_lines == 512
        assert R4400_L1D.n_sets == 512  # direct-mapped
        assert R4400_L1D.split_fraction == 0.5

    def test_challenge_l2_geometry(self):
        assert CHALLENGE_L2.size_bytes == 1024 * 1024
        assert CHALLENGE_L2.n_lines == 8192
        assert CHALLENGE_L2.split_fraction == 1.0

    def test_sets_with_associativity(self):
        c = CacheLevelConfig(size_bytes=8192, line_bytes=64, associativity=4)
        assert c.n_lines == 128
        assert c.n_sets == 32

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheLevelConfig(size_bytes=1000, line_bytes=64)

    def test_rejects_lines_not_multiple_of_assoc(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheLevelConfig(size_bytes=192, line_bytes=64, associativity=2)

    def test_rejects_bad_split_fraction(self):
        with pytest.raises(ValueError, match="split_fraction"):
            CacheLevelConfig(size_bytes=1024, line_bytes=32, split_fraction=0.0)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(size_bytes=0, line_bytes=32)


class TestCacheHierarchy:
    def test_paper_reference_rate(self):
        h = sgi_challenge_hierarchy()
        # 100 MHz / 5 cycles-per-reference = 20 M refs/s = 20 refs/us.
        assert h.references_per_second == pytest.approx(20e6)
        assert h.references_per_us == pytest.approx(20.0)

    def test_references_for_time_scales_with_intensity(self):
        h = sgi_challenge_hierarchy()
        assert h.references_for_time(1000.0, 1.0) == pytest.approx(20_000.0)
        assert h.references_for_time(1000.0, 0.5) == pytest.approx(10_000.0)
        assert h.references_for_time(1000.0, 0.0) == 0.0

    def test_references_rejects_negative(self):
        h = sgi_challenge_hierarchy()
        with pytest.raises(ValueError):
            h.references_for_time(-1.0)
        with pytest.raises(ValueError):
            h.references_for_time(1.0, intensity=-0.5)

    def test_flush_fractions_shape(self):
        h = sgi_challenge_hierarchy()
        F = h.flush_fractions(np.array([10.0, 1e3, 1e5]))
        assert F.shape == (2, 3)
        assert np.all((F >= 0) & (F <= 1))

    def test_l1_flushes_much_faster_than_l2(self):
        # The paper's headline hierarchy observation.
        h = sgi_challenge_hierarchy()
        F = h.flush_fractions(1_000.0)  # 1 ms of intervening work
        assert F[0] > 0.5      # L1 mostly gone
        assert F[1] < 0.15     # L2 barely touched

    def test_split_fraction_halves_displacement(self):
        unified = CacheLevelConfig(16 * 1024, 32, 1, 1.0)
        split = CacheLevelConfig(16 * 1024, 32, 1, 0.5)
        hu = CacheHierarchy(levels=(unified, CHALLENGE_L2))
        hs = CacheHierarchy(levels=(split, CHALLENGE_L2))
        refs = 5_000.0
        fu = hu.flush_fraction_for_references(refs, 0)
        fs = hs.flush_fraction_for_references(refs, 0)
        assert fs < fu

    def test_time_to_flush_ordering(self):
        h = sgi_challenge_hierarchy()
        t1 = h.time_to_flush(0, 0.5)
        t2 = h.time_to_flush(1, 0.5)
        assert t2 > 10 * t1  # "much more slowly"

    def test_time_to_flush_is_consistent(self):
        h = sgi_challenge_hierarchy()
        t = h.time_to_flush(0, 0.5)
        f = h.flush_fraction_for_references(h.references_for_time(t), 0)
        assert f == pytest.approx(0.5, abs=1e-6)

    def test_time_to_flush_validates(self):
        h = sgi_challenge_hierarchy()
        with pytest.raises(ValueError):
            h.time_to_flush(0, 1.5)
        with pytest.raises(ValueError):
            h.time_to_flush(0, 0.5, intensity=0.0)

    def test_intensity_slows_flushing(self):
        h = sgi_challenge_hierarchy()
        assert h.time_to_flush(0, 0.5, intensity=0.5) > h.time_to_flush(
            0, 0.5, intensity=1.0
        )

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError, match="at least one"):
            CacheHierarchy(levels=())

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=(R4400_L1D,), clock_hz=0.0)

    def test_custom_footprint_fn(self):
        h = sgi_challenge_hierarchy(footprint_fn=MVS_WORKLOAD)
        assert h.footprint_fn is MVS_WORKLOAD
