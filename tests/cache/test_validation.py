"""Tests for the fit-and-compare validation pipeline."""

import numpy as np
import pytest

from repro.cache.footprint import MVS_WORKLOAD, FootprintFunction
from repro.cache.hierarchy import CacheLevelConfig, R4400_L1D
from repro.cache.traces import uniform_trace, zipf_trace
from repro.cache.validation import (
    FootprintSample,
    compare_flush_model,
    fit_footprint_constants,
    measure_footprint_samples,
)


class TestMeasureSamples:
    def test_counts_unique_lines(self, rng):
        trace = np.array([0, 16, 32, 48, 0, 16], dtype=np.int64)
        samples = measure_footprint_samples(trace, [4, 6], [16, 32])
        by_key = {(s.references, s.line_bytes): s.unique_lines for s in samples}
        assert by_key[(4, 16)] == 4   # 0,16,32,48 are distinct 16B lines
        assert by_key[(6, 16)] == 4
        assert by_key[(4, 32)] == 2   # lines {0,1}
        assert by_key[(6, 32)] == 2

    def test_validates_line_size(self, rng):
        with pytest.raises(ValueError, match="power of two"):
            measure_footprint_samples(np.arange(10), [5], [48])

    def test_validates_reference_counts(self):
        with pytest.raises(ValueError, match="out of range"):
            measure_footprint_samples(np.arange(10), [11], [16])


class TestFit:
    def test_recovers_exact_model_generated_samples(self):
        # Generate synthetic u values straight from a known constant set;
        # the least-squares fit must recover the constants (exact linear
        # system in log space).
        truth = FootprintFunction(W=1.8, a=0.05, b=0.8, log10_d=-0.1)
        samples = []
        for L in (16, 32, 128):
            for R in (10**3, 10**4, 10**5, 10**6):
                samples.append(FootprintSample(
                    references=R, line_bytes=L,
                    unique_lines=int(round(truth.unique_lines(R, L))),
                ))
        fitted = fit_footprint_constants(samples)
        assert fitted.W == pytest.approx(truth.W, rel=0.05)
        assert fitted.a == pytest.approx(truth.a, abs=0.02)
        assert fitted.b == pytest.approx(truth.b, abs=0.02)
        assert fitted.log10_d == pytest.approx(truth.log10_d, abs=0.02)

    def test_fits_zipf_trace_reasonably(self, rng):
        trace = zipf_trace(40_000, 128 * 1024, rng=rng, skew=1.3)
        checkpoints = [100, 1000, 10_000, 40_000]
        samples = measure_footprint_samples(trace, checkpoints, (16, 32, 128))
        fitted = fit_footprint_constants(samples)
        # Every sample within 40% (power-law form is approximate for Zipf).
        for s in samples:
            u = fitted.unique_lines(s.references, s.line_bytes)
            assert u == pytest.approx(s.unique_lines, rel=0.4)

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError, match="at least 4"):
            fit_footprint_constants([
                FootprintSample(10, 16, 5),
            ])

    def test_requires_spanning_samples(self):
        samples = [FootprintSample(10, 16, 5), FootprintSample(20, 16, 9),
                   FootprintSample(40, 16, 15), FootprintSample(80, 16, 25)]
        with pytest.raises(ValueError, match="span"):
            fit_footprint_constants(samples)


class TestCompareFlush:
    def test_agreement_on_zipf_trace(self, rng):
        # For a power-law-locality trace (the family the SST form models),
        # fit then compare: analytic and simulated flush fractions agree.
        # The footprint must be address-disjoint from the displacing
        # stream (the model's independence assumption): otherwise the
        # displacing trace re-warms footprint lines it shares.
        ws = 256 * 1024
        trace = zipf_trace(40_000, ws, rng=rng, skew=1.3)
        checkpoints = [300, 1000, 3000, 10_000, 40_000]
        samples = measure_footprint_samples(trace, checkpoints, (16, 32, 128))
        fitted = fit_footprint_constants(samples)
        footprint = uniform_trace(1500, 8192, rng=rng, base_address=1 << 24)
        displacing = zipf_trace(40_000, ws, rng=rng, skew=1.3)
        cmp = compare_flush_model(R4400_L1D, fitted, footprint, displacing,
                                  checkpoints)
        assert cmp.mean_abs_error < 0.08
        assert cmp.max_abs_error < 0.15

    def test_uniform_trace_sanity(self, rng):
        # The SST power law only approximates a uniform trace's
        # coupon-collector saturation; require loose agreement only.
        ws = 64 * 1024
        trace = uniform_trace(30_000, ws, rng=rng)
        checkpoints = [300, 1000, 3000, 10_000, 30_000]
        samples = measure_footprint_samples(trace, checkpoints, (16, 32, 128))
        fitted = fit_footprint_constants(samples)
        footprint = uniform_trace(1500, 8192, rng=rng, base_address=1 << 24)
        displacing = uniform_trace(30_000, ws, rng=rng)
        cmp = compare_flush_model(R4400_L1D, fitted, footprint, displacing,
                                  checkpoints)
        assert cmp.max_abs_error < 0.3

    def test_checkpoint_validation(self, rng):
        footprint = uniform_trace(10, 512, rng=rng)
        displacing = uniform_trace(100, 4096, rng=rng)
        with pytest.raises(ValueError, match="out of range"):
            compare_flush_model(R4400_L1D, MVS_WORKLOAD, footprint,
                                displacing, [101])

    def test_empty_comparison_stats(self):
        from repro.cache.validation import FlushComparison
        c = FlushComparison((), (), ())
        assert c.max_abs_error == 0.0
        assert c.mean_abs_error == 0.0

    def test_monotone_measured_fractions(self, rng):
        footprint = uniform_trace(800, 4096, rng=rng)
        displacing = uniform_trace(20_000, 64 * 1024, rng=rng)
        checkpoints = [0, 100, 1000, 10_000, 20_000]
        cmp = compare_flush_model(R4400_L1D, MVS_WORKLOAD, footprint,
                                  displacing, checkpoints)
        measured = list(cmp.measured)
        assert measured == sorted(measured)
