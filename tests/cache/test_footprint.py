"""Unit and property tests for the Singh-Stone-Thiebaut footprint function."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.footprint import MVS_WORKLOAD, FootprintFunction, mvs_footprint


class TestConstruction:
    def test_mvs_constants_match_paper(self):
        assert MVS_WORKLOAD.W == pytest.approx(2.19827)
        assert MVS_WORKLOAD.a == pytest.approx(0.033233)
        assert MVS_WORKLOAD.b == pytest.approx(0.827457)
        assert MVS_WORKLOAD.log10_d == pytest.approx(-0.13025)

    def test_mvs_footprint_returns_singleton(self):
        assert mvs_footprint() is MVS_WORKLOAD

    def test_rejects_nonpositive_W(self):
        with pytest.raises(ValueError, match="W must be positive"):
            FootprintFunction(W=0.0, a=0.1, b=0.8, log10_d=-0.1)

    def test_rejects_nonpositive_b(self):
        with pytest.raises(ValueError, match="b must be positive"):
            FootprintFunction(W=1.0, a=0.1, b=0.0, log10_d=-0.1)

    def test_frozen(self):
        with pytest.raises(Exception):
            MVS_WORKLOAD.W = 3.0


class TestUniqueLines:
    def test_zero_references_zero_lines(self):
        assert MVS_WORKLOAD.unique_lines(0.0, 32) == 0.0

    def test_single_reference_at_most_one_line(self):
        assert MVS_WORKLOAD.unique_lines(1.0, 32) <= 1.0

    def test_never_exceeds_reference_count(self):
        for R in (1, 5, 100, 1e6):
            assert MVS_WORKLOAD.unique_lines(R, 32) <= R

    def test_known_value_base10(self):
        # Direct evaluation of eq. 2 in log10 form at R=1e4, L=32.
        expected = 10 ** (
            np.log10(2.19827)
            + 0.033233 * np.log10(32)
            + 0.827457 * 4.0
            - 0.13025 * np.log10(32) * 4.0
        )
        assert MVS_WORKLOAD.unique_lines(1e4, 32) == pytest.approx(expected, rel=1e-12)

    def test_scalar_input_returns_float(self):
        out = MVS_WORKLOAD.unique_lines(1000.0, 32)
        assert isinstance(out, float)

    def test_array_input_returns_array(self):
        out = MVS_WORKLOAD.unique_lines(np.array([10.0, 100.0]), 32)
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_monotone_in_references(self):
        R = np.logspace(0, 8, 60)
        u = MVS_WORKLOAD.unique_lines(R, 32)
        assert np.all(np.diff(u) >= -1e-9)

    def test_larger_lines_touch_fewer_lines_at_scale(self):
        # At large R the negative interaction term dominates: bigger lines
        # mean fewer unique lines for the same reference count.
        assert MVS_WORKLOAD.unique_lines(1e6, 128) < MVS_WORKLOAD.unique_lines(1e6, 32)

    def test_rejects_negative_references(self):
        with pytest.raises(ValueError, match="non-negative"):
            MVS_WORKLOAD.unique_lines(-1.0, 32)

    def test_rejects_nonpositive_line(self):
        with pytest.raises(ValueError, match="line_bytes"):
            MVS_WORKLOAD.unique_lines(10.0, 0)

    def test_fractional_references_interpolate_linearly(self):
        half = MVS_WORKLOAD.unique_lines(0.5, 32)
        one = MVS_WORKLOAD.unique_lines(1.0, 32)
        assert 0.0 < half <= one

    @given(
        R=st.floats(min_value=1.0, max_value=1e9),
        L=st.sampled_from([16, 32, 64, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bounds(self, R, L):
        u = MVS_WORKLOAD.unique_lines(R, L)
        assert 0.0 <= u <= R

    @given(
        R=st.floats(min_value=1.0, max_value=1e8),
        factor=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_monotone(self, R, factor):
        assert MVS_WORKLOAD.unique_lines(R * factor, 32) >= (
            MVS_WORKLOAD.unique_lines(R, 32) - 1e-9
        )


class TestInverse:
    def test_round_trip(self):
        R = 1e5
        u = MVS_WORKLOAD.unique_lines(R, 32)
        assert MVS_WORKLOAD.references_for_lines(u, 32) == pytest.approx(R, rel=1e-6)

    def test_zero_lines(self):
        assert MVS_WORKLOAD.references_for_lines(0.0, 32) == 0.0

    def test_non_invertible_slope_raises(self):
        fp = FootprintFunction(W=1.0, a=0.0, b=0.2, log10_d=-0.5)
        # slope = 0.2 - 0.5*log10(L); negative for L >= 10^(0.4) ~ 2.5
        with pytest.raises(ValueError, match="not invertible"):
            fp.references_for_lines(10.0, 32)


class TestEffectiveExponent:
    def test_matches_definition(self):
        L = 32
        expected = MVS_WORKLOAD.b + MVS_WORKLOAD.log10_d * np.log10(L)
        assert MVS_WORKLOAD.effective_exponent(L) == pytest.approx(expected)

    def test_power_law_in_R(self):
        # [26]: u is a power function of R at fixed L.
        L = 32
        exp = MVS_WORKLOAD.effective_exponent(L)
        u1 = MVS_WORKLOAD.unique_lines(1e5, L)
        u2 = MVS_WORKLOAD.unique_lines(1e6, L)
        assert u2 / u1 == pytest.approx(10 ** exp, rel=1e-9)
