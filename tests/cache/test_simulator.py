"""Tests for the exact trace-driven LRU cache simulator."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.hierarchy import CacheLevelConfig
from repro.cache.simulator import AccessStats, CacheSimulator, measure_flushed_fraction
from repro.cache.traces import sequential_trace, uniform_trace


def tiny_cache(assoc=1, sets_bytes=256, line=32):
    return CacheSimulator(
        CacheLevelConfig(size_bytes=sets_bytes, line_bytes=line, associativity=assoc)
    )


class TestAddressing:
    def test_line_of(self):
        sim = tiny_cache()
        assert sim.line_of(0) == 0
        assert sim.line_of(31) == 0
        assert sim.line_of(32) == 1

    def test_lines_of_vectorized(self):
        sim = tiny_cache()
        out = sim.lines_of(np.array([0, 31, 32, 95]))
        assert list(out) == [0, 0, 1, 2]

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheSimulator(CacheLevelConfig(size_bytes=96, line_bytes=48))


class TestAccessSemantics:
    def test_first_access_misses_second_hits(self):
        sim = tiny_cache()
        assert sim.access_line(5) is False
        assert sim.access_line(5) is True

    def test_direct_mapped_conflict_eviction(self):
        sim = tiny_cache()  # 8 lines, 8 sets direct-mapped
        n = sim.config.n_sets
        assert sim.access_line(0) is False
        assert sim.access_line(n) is False   # same set, evicts 0
        assert sim.access_line(0) is False   # 0 was evicted

    def test_two_way_lru(self):
        sim = tiny_cache(assoc=2)  # 8 lines, 4 sets x 2 ways
        s = sim.config.n_sets
        sim.access_line(0)
        sim.access_line(s)       # same set, both resident
        assert sim.access_line(0) is True   # still there; 0 is now MRU
        sim.access_line(2 * s)   # evicts LRU = line s
        assert sim.access_line(0) is True
        assert sim.access_line(s) is False  # was evicted

    def test_access_trace_stats(self):
        sim = tiny_cache()
        trace = np.array([0, 0, 32, 0, 32])
        stats = sim.access_trace(trace)
        assert stats.accesses == 5
        assert stats.misses == 2
        assert stats.hits == 3
        assert stats.hit_ratio == pytest.approx(0.6)
        assert stats.miss_ratio == pytest.approx(0.4)

    def test_stats_addition(self):
        a = AccessStats(accesses=2, hits=1, misses=1)
        b = AccessStats(accesses=3, hits=3, misses=0)
        c = a + b
        assert (c.accesses, c.hits, c.misses) == (5, 4, 1)

    def test_empty_stats_ratios(self):
        s = AccessStats()
        assert s.hit_ratio == 0.0 and s.miss_ratio == 0.0


class TestFootprintOps:
    def test_warm_and_resident(self):
        sim = tiny_cache()
        sim.warm_with_lines([1, 2, 3])
        assert sim.resident_lines() == {1, 2, 3}
        assert sim.occupancy == 3

    def test_flush(self):
        sim = tiny_cache()
        sim.warm_with_lines([1, 2])
        sim.flush()
        assert sim.occupancy == 0
        assert sim.resident_lines() == set()

    def test_resident_fraction(self):
        sim = tiny_cache()
        sim.warm_with_lines([0, 1])
        assert sim.resident_fraction([0, 1]) == 1.0
        sim.access_line(sim.config.n_sets)  # evicts line 0
        assert sim.resident_fraction([0, 1]) == pytest.approx(0.5)

    def test_resident_fraction_empty_footprint(self):
        assert tiny_cache().resident_fraction([]) == 1.0

    def test_unique_lines_in(self):
        sim = tiny_cache()
        trace = np.array([0, 1, 31, 32, 64, 64])
        assert sim.unique_lines_in(trace) == 3

    def test_occupancy_never_exceeds_capacity(self):
        sim = tiny_cache()
        rng = np.random.default_rng(1)
        sim.access_trace(uniform_trace(2000, 64 * 1024, rng=rng))
        assert sim.occupancy <= sim.config.n_lines


class TestMeasureFlushedFraction:
    def test_no_intervening_references(self):
        cfg = CacheLevelConfig(size_bytes=1024, line_bytes=32)
        footprint = sequential_trace(8, stride_bytes=32)
        out = measure_flushed_fraction(cfg, footprint, np.array([], dtype=np.int64))
        assert out == 0.0

    def test_full_displacement(self):
        cfg = CacheLevelConfig(size_bytes=1024, line_bytes=32)  # 32 lines
        footprint = sequential_trace(8, stride_bytes=32)
        # Sweep the whole cache twice with disjoint conflicting addresses.
        intervening = sequential_trace(64, stride_bytes=32, base_address=1024)
        out = measure_flushed_fraction(cfg, footprint, intervening)
        assert out == 1.0

    def test_partial_displacement_counts_lines(self):
        cfg = CacheLevelConfig(size_bytes=1024, line_bytes=32)
        footprint = sequential_trace(8, stride_bytes=32)  # lines 0..7
        # Conflict with exactly lines 0..3 (same sets, different tags).
        intervening = sequential_trace(4, stride_bytes=32, base_address=1024)
        out = measure_flushed_fraction(cfg, footprint, intervening)
        assert out == pytest.approx(0.5)

    def test_footprint_larger_than_cache(self):
        cfg = CacheLevelConfig(size_bytes=64, line_bytes=32)  # 2 lines
        footprint = sequential_trace(8, stride_bytes=32)
        out = measure_flushed_fraction(cfg, footprint, np.array([], dtype=np.int64))
        # Only the lines resident after warming count; none were displaced.
        assert out == 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_fraction_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        cfg = CacheLevelConfig(size_bytes=512, line_bytes=32, associativity=2)
        footprint = uniform_trace(40, 2048, rng=rng)
        intervening = uniform_trace(100, 8192, rng=rng)
        out = measure_flushed_fraction(cfg, footprint, intervening)
        assert 0.0 <= out <= 1.0
