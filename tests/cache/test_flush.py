"""Tests for the set-occupancy flush model."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.flush import (
    flushed_fraction,
    flushed_fraction_poisson,
    survival_fraction,
)


class TestDirectMapped:
    def test_matches_closed_form(self):
        # F = 1 - (1 - 1/S)^n for direct-mapped caches (the paper's case).
        S, n = 512, 700.0
        expected = 1.0 - (1.0 - 1.0 / S) ** n
        assert flushed_fraction(n, S, 1) == pytest.approx(expected, rel=1e-12)

    def test_zero_intervening_lines(self):
        assert flushed_fraction(0.0, 512, 1) == 0.0

    def test_saturates_to_one(self):
        assert flushed_fraction(1e9, 512, 1) == pytest.approx(1.0)

    def test_single_set_cache(self):
        # One direct-mapped set: any single line flushes everything.
        assert flushed_fraction(1.0, 1, 1) == pytest.approx(1.0)

    def test_fractional_lines_continuous(self):
        a = flushed_fraction(10.0, 512, 1)
        b = flushed_fraction(10.5, 512, 1)
        c = flushed_fraction(11.0, 512, 1)
        assert a < b < c


class TestSetAssociative:
    def test_zero_below_associativity(self):
        # Fewer intervening lines than ways cannot evict under LRU.
        assert flushed_fraction(1.0, 128, 2) == 0.0
        assert flushed_fraction(3.0, 128, 4) == 0.0

    def test_higher_associativity_flushes_less(self):
        n = 1000.0
        f1 = flushed_fraction(n, 256, 1)
        f2 = flushed_fraction(n, 256, 2)
        f4 = flushed_fraction(n, 256, 4)
        assert f1 > f2 > f4

    def test_binomial_tail_identity(self):
        # P(X >= 2) = 1 - P(0) - P(1) for Binomial(n, p), small n exact.
        S, n, A = 8, 12, 2
        p = 1.0 / S
        expected = 1.0 - (1 - p) ** n - n * p * (1 - p) ** (n - 1)
        assert flushed_fraction(float(n), S, A) == pytest.approx(expected, rel=1e-9)


class TestPoissonLimit:
    def test_close_to_binomial_for_small_p(self):
        n, S = 5000.0, 4096
        exact = flushed_fraction(n, S, 1)
        approx = flushed_fraction_poisson(n, S, 1)
        assert approx == pytest.approx(exact, abs=1e-3)

    def test_poisson_assoc_form(self):
        from scipy import special
        n, S, A = 5000.0, 512, 2
        assert flushed_fraction_poisson(n, S, A) == pytest.approx(
            float(special.gammainc(A, n / S))
        )


class TestValidationAndShapes:
    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError, match="n_sets"):
            flushed_fraction(1.0, 0, 1)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            flushed_fraction(1.0, 8, 0)

    def test_rejects_negative_lines(self):
        with pytest.raises(ValueError, match="non-negative"):
            flushed_fraction(-1.0, 8, 1)

    def test_vectorized(self):
        n = np.array([0.0, 10.0, 100.0, 1e6])
        out = flushed_fraction(n, 512, 1)
        assert out.shape == (4,)
        assert out[0] == 0.0 and out[-1] == pytest.approx(1.0)
        assert np.all(np.diff(out) >= 0)

    def test_survival_is_complement(self):
        n = 300.0
        assert survival_fraction(n, 512, 1) == pytest.approx(
            1.0 - flushed_fraction(n, 512, 1)
        )

    @given(
        n=st.floats(min_value=0.0, max_value=1e8),
        S=st.sampled_from([64, 512, 8192]),
        A=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_in_unit_interval(self, n, S, A):
        f = flushed_fraction(n, S, A)
        assert 0.0 <= f <= 1.0

    @given(
        n=st.floats(min_value=0.0, max_value=1e6),
        extra=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_monotone_in_lines(self, n, extra):
        assert flushed_fraction(n + extra, 512, 1) >= flushed_fraction(n, 512, 1) - 1e-12
