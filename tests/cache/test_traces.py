"""Tests for synthetic reference-trace generators."""

import numpy as np
import pytest

from repro.cache.traces import (
    interleave_traces,
    markov_locality_trace,
    sequential_trace,
    uniform_trace,
    zipf_trace,
)


class TestUniform:
    def test_range_and_length(self, rng):
        t = uniform_trace(1000, 4096, rng=rng)
        assert len(t) == 1000
        assert t.min() >= 0 and t.max() < 4096
        assert t.dtype == np.int64

    def test_base_address(self, rng):
        t = uniform_trace(100, 64, rng=rng, base_address=10_000)
        assert t.min() >= 10_000 and t.max() < 10_064

    def test_deterministic_for_seed(self):
        a = uniform_trace(50, 1024, rng=np.random.default_rng(3))
        b = uniform_trace(50, 1024, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            uniform_trace(10, 64, rng=None)

    def test_rejects_wrong_rng_type(self):
        with pytest.raises(TypeError):
            uniform_trace(10, 64, rng=np.random.RandomState(0))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_trace(-1, 64, rng=rng)
        with pytest.raises(ValueError):
            uniform_trace(10, 0, rng=rng)


class TestSequential:
    def test_stride(self):
        t = sequential_trace(5, stride_bytes=8)
        assert list(t) == [0, 8, 16, 24, 32]

    def test_no_reuse(self):
        t = sequential_trace(100, stride_bytes=4)
        assert len(np.unique(t)) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(-1)
        with pytest.raises(ValueError):
            sequential_trace(10, stride_bytes=0)


class TestZipf:
    def test_range(self, rng):
        t = zipf_trace(2000, 64 * 1024, rng=rng)
        assert t.min() >= 0 and t.max() < 64 * 1024

    def test_locality_higher_skew_fewer_unique_granules(self, rng):
        ws = 256 * 1024
        low = zipf_trace(5000, ws, rng=np.random.default_rng(1), skew=1.1)
        high = zipf_trace(5000, ws, rng=np.random.default_rng(1), skew=2.5)
        g = 64
        assert len(np.unique(high // g)) < len(np.unique(low // g))

    def test_sublinear_unique_growth(self, rng):
        # The power-law property the SST form captures.
        t = zipf_trace(20_000, 256 * 1024, rng=rng, skew=1.3)
        u_half = len(np.unique(t[:10_000] // 64))
        u_full = len(np.unique(t // 64))
        assert u_full < 2 * u_half

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="skew"):
            zipf_trace(10, 1024, rng=rng, skew=1.0)
        with pytest.raises(ValueError):
            zipf_trace(10, 32, rng=rng, granule_bytes=64)


class TestMarkov:
    def test_range_and_length(self, rng):
        t = markov_locality_trace(500, 16 * 1024, rng=rng)
        assert len(t) == 500
        assert t.min() >= 0 and t.max() < 16 * 1024

    def test_sticky_regions(self, rng):
        t = markov_locality_trace(
            2000, 64 * 1024, rng=rng, stay_probability=0.99, region_bytes=1024
        )
        regions = t // 1024
        switches = int((np.diff(regions) != 0).sum())
        # With p_stay = 0.99, region switches are rare (expected ~20 jumps
        # plus within-jump noise) compared to 2000 references.
        assert switches < 200

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            markov_locality_trace(10, 1024, rng=rng, stay_probability=1.0)
        with pytest.raises(ValueError):
            markov_locality_trace(10, 512, rng=rng, region_bytes=1024)


class TestInterleave:
    def test_round_robin(self):
        a = np.array([0, 2, 4], dtype=np.int64)
        b = np.array([1, 3, 5], dtype=np.int64)
        out = interleave_traces(a, b)
        assert list(out) == [0, 1, 2, 3, 4, 5]

    def test_truncates_to_shortest(self):
        a = np.array([0, 2, 4, 6], dtype=np.int64)
        b = np.array([1, 3], dtype=np.int64)
        out = interleave_traces(a, b)
        assert list(out) == [0, 1, 2, 3]

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            interleave_traces()
