"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.paradigm == "locking"
        assert args.rate == 12_000.0

    @pytest.mark.parametrize("argv", [
        ["run", "e06"],
        ["all"],
        ["csv", "out"],
    ])
    def test_runner_flag_defaults(self, argv):
        args = build_parser().parse_args(argv)
        assert args.jobs == 0
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_runner_flags_parse(self):
        args = build_parser().parse_args(
            ["all", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c"])
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    @pytest.mark.parametrize("argv", [
        ["run", "e06"],
        ["all"],
        ["verify", "check"],
    ])
    def test_fault_tolerance_flag_defaults(self, argv):
        args = build_parser().parse_args(argv)
        assert args.timeout is None
        assert args.retries == 0
        assert args.resume is False
        assert args.fail_fast is False

    def test_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            ["all", "--timeout", "120", "--retries", "3", "--resume",
             "--fail-fast"])
        assert args.timeout == 120.0
        assert args.retries == 3
        assert args.resume is True
        assert args.fail_fast is True

    def test_fault_tolerance_flags_reach_the_runner(self):
        from repro.cli import _make_runner

        args = build_parser().parse_args(
            ["all", "--timeout", "60", "--retries", "2", "--resume",
             "--no-cache"])
        runner = _make_runner(args)
        assert runner.timeout_s == 60.0
        assert runner.retries == 2
        assert runner.resume is True
        assert runner.fail_fast is False

    def test_faults_subcommand_parses(self):
        args = build_parser().parse_args(["faults"])
        assert args.seed == 1 and args.jobs == 2 and args.workdir is None
        args = build_parser().parse_args(
            ["faults", "--seed", "9", "--jobs", "4", "--workdir", "/tmp/w"])
        assert args.seed == 9 and args.jobs == 4 and args.workdir == "/tmp/w"

    def test_with_extras_flag(self):
        assert build_parser().parse_args(["all", "--with-extras"]).with_extras
        assert build_parser().parse_args(["csv", "o", "--with-extras"]).with_extras
        assert not build_parser().parse_args(["all"]).with_extras

    def test_check_invariants_flag(self):
        assert not build_parser().parse_args(["all"]).check_invariants
        assert build_parser().parse_args(
            ["all", "--check-invariants"]).check_invariants
        assert build_parser().parse_args(
            ["simulate", "--check-invariants"]).check_invariants

    def test_verify_subcommands_parse(self):
        args = build_parser().parse_args(["verify", "record"])
        assert args.verify_command == "record"
        assert args.ids is None and args.seed == 1 and not args.full
        args = build_parser().parse_args(
            ["verify", "check", "--ids", "e01", "e02", "--rtol", "0.01",
             "--goldens", "/tmp/g", "--no-cache"])
        assert args.verify_command == "check"
        assert args.ids == ["e01", "e02"]
        assert args.rtol == 0.01
        assert args.goldens == "/tmp/g"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify"])  # subcommand required
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "record", "--ids", "e99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e14" in out

    def test_run_model_experiment(self, capsys):
        assert main(["run", "e02"]) == 0
        out = capsys.readouterr().out
        assert "u(R; L=32)" in out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--rate", "6000", "--streams", "4",
            "--duration-ms", "80", "--policy", "mru",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean delay (us)" in out
        assert "locking/mru" in out

    def test_simulate_ips(self, capsys):
        assert main([
            "simulate", "--paradigm", "ips", "--policy", "ips-wired",
            "--rate", "6000", "--duration-ms", "60",
        ]) == 0
        assert "ips/ips-wired" in capsys.readouterr().out


def test_module_entry_point():
    import repro.__main__  # noqa: F401 -- import would sys.exit; just check


class TestCsvCommand:
    def test_writes_model_experiment_csvs(self, tmp_path, monkeypatch, capsys):
        # Restrict to the cheap model-level experiments for the unit test.
        import repro.cli as cli
        monkeypatch.setattr(cli, "EXPERIMENT_IDS", ("e02", "e03"))
        assert main(["csv", str(tmp_path), "--no-cache"]) == 0
        assert (tmp_path / "e02.csv").exists()
        assert (tmp_path / "e03.csv").exists()
        assert "[runner]" in capsys.readouterr().out

    def test_with_extras_uses_full_id_list(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        monkeypatch.setattr(cli, "EXPERIMENT_IDS", ("e02",))
        monkeypatch.setattr(cli, "ALL_IDS", ("e02", "e03"))
        outdir = tmp_path / "extras"
        assert main(["csv", str(outdir), "--with-extras", "--no-cache"]) == 0
        assert (outdir / "e02.csv").exists()
        assert (outdir / "e03.csv").exists()


class TestRunnerIntegration:
    def test_run_prints_runner_summary(self, capsys):
        assert main(["run", "e02", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[runner]" in out
        assert "cache off" in out

    def test_all_prints_per_experiment_timing(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        monkeypatch.setattr(cli, "EXPERIMENT_IDS", ("e02",))
        assert main(["all", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[e02]" in out
        assert "cache on" in out


class TestCacheCommand:
    def test_reports_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries:   0" in out

    def test_clear(self, tmp_path, capsys):
        from repro.runner import ResultCache, SweepRunner

        from .conftest import fast_config

        cfg = fast_config(duration_us=40_000.0, warmup_us=10_000.0)
        SweepRunner(jobs=0, cache=ResultCache(tmp_path)).run_many([cfg])
        assert len(ResultCache(tmp_path)) == 1
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 0

    def test_reports_quarantined_entries(self, tmp_path, capsys):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        path = cache.path_for("ab" + "0" * 62)
        path.parent.mkdir(parents=True)
        path.write_text("{torn")
        assert cache.get("ab" + "0" * 62) is None  # quarantines it
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "quarantined: 1" in out


class TestVerifyCommand:
    def test_record_then_check_round_trip(self, tmp_path, capsys):
        goldens = tmp_path / "goldens"
        assert main(["verify", "record", "--ids", "e01", "--no-cache",
                     "--goldens", str(goldens)]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "e01.json" in out
        assert main(["verify", "check", "--no-cache",
                     "--goldens", str(goldens)]) == 0
        out = capsys.readouterr().out
        assert "1/1 experiments ok" in out

    def test_check_fails_on_drift_with_report(self, tmp_path, capsys):
        import json

        goldens = tmp_path / "goldens"
        assert main(["verify", "record", "--ids", "e01", "--no-cache",
                     "--goldens", str(goldens)]) == 0
        capsys.readouterr()
        # invalidate the golden (any corruption fails the integrity check)
        path = goldens / "e01.json"
        entry = json.loads(path.read_text())
        entry["seed"] = 12345
        path.write_text(json.dumps(entry))
        assert main(["verify", "check", "--no-cache",
                     "--goldens", str(goldens)]) == 1
        out = capsys.readouterr().out
        assert "FAIL e01" in out
        assert "affected experiments: e01" in out


class TestSimulateKnobs:
    def test_burst_and_overhead_flags(self, capsys):
        assert main([
            "simulate", "--rate", "6000", "--streams", "4",
            "--duration-ms", "60", "--burst", "8",
            "--fixed-overhead-us", "50", "--lock-granularity", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean delay (us)" in out

    def test_stacks_flag_for_ips(self, capsys):
        assert main([
            "simulate", "--paradigm", "ips", "--policy", "ips-wired",
            "--stacks", "4", "--rate", "6000", "--duration-ms", "60",
        ]) == 0

    def test_simulate_under_invariant_checker(self, capsys):
        assert main([
            "simulate", "--rate", "6000", "--streams", "4",
            "--duration-ms", "60", "--check-invariants",
        ]) == 0
        assert "mean delay (us)" in capsys.readouterr().out
