"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.paradigm == "locking"
        assert args.rate == 12_000.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e14" in out

    def test_run_model_experiment(self, capsys):
        assert main(["run", "e02"]) == 0
        out = capsys.readouterr().out
        assert "u(R; L=32)" in out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--rate", "6000", "--streams", "4",
            "--duration-ms", "80", "--policy", "mru",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean delay (us)" in out
        assert "locking/mru" in out

    def test_simulate_ips(self, capsys):
        assert main([
            "simulate", "--paradigm", "ips", "--policy", "ips-wired",
            "--rate", "6000", "--duration-ms", "60",
        ]) == 0
        assert "ips/ips-wired" in capsys.readouterr().out


def test_module_entry_point():
    import repro.__main__  # noqa: F401 -- import would sys.exit; just check


class TestCsvCommand:
    def test_writes_model_experiment_csvs(self, tmp_path, monkeypatch, capsys):
        # Restrict to the cheap model-level experiments for the unit test.
        import repro.cli as cli
        monkeypatch.setattr(cli, "EXPERIMENT_IDS", ("e02", "e03"))
        assert main(["csv", str(tmp_path)]) == 0
        assert (tmp_path / "e02.csv").exists()
        assert (tmp_path / "e03.csv").exists()


class TestSimulateKnobs:
    def test_burst_and_overhead_flags(self, capsys):
        assert main([
            "simulate", "--rate", "6000", "--streams", "4",
            "--duration-ms", "60", "--burst", "8",
            "--fixed-overhead-us", "50", "--lock-granularity", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean delay (us)" in out

    def test_stacks_flag_for_ips(self, capsys):
        assert main([
            "simulate", "--paradigm", "ips", "--policy", "ips-wired",
            "--stacks", "4", "--rate", "6000", "--duration-ms", "60",
        ]) == 0
