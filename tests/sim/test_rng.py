"""Tests for reproducible RNG stream management."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a = RandomStreams(42).arrivals(3).random(10)
        b = RandomStreams(42).arrivals(3).random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).arrivals(0).random(10)
        b = RandomStreams(2).arrivals(0).random(10)
        assert not np.array_equal(a, b)

    def test_different_keys_independent(self):
        rs = RandomStreams(42)
        a = rs.arrivals(0).random(10)
        b = rs.arrivals(1).random(10)
        assert not np.array_equal(a, b)

    def test_key_order_does_not_matter(self):
        rs1 = RandomStreams(7)
        _ = rs1.scheduling  # request scheduling first
        a = rs1.arrivals(5).random(5)
        rs2 = RandomStreams(7)
        b = rs2.arrivals(5).random(5)  # request arrivals first
        assert np.array_equal(a, b)

    def test_generator_cached(self):
        rs = RandomStreams(1)
        assert rs.arrivals(0) is rs.arrivals(0)
        assert rs.scheduling is rs.scheduling

    def test_string_keys_stable(self):
        a = RandomStreams(9).get("custom", "key").random(4)
        b = RandomStreams(9).get("custom", "key").random(4)
        assert np.array_equal(a, b)

    def test_sizes_stream_exists(self):
        assert isinstance(RandomStreams(0).sizes, np.random.Generator)

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)
        with pytest.raises(ValueError):
            RandomStreams("seed")
