"""Oracle tests for the per-stream reordering/migration metrics.

Each trace is hand-worked: rows are fed to the collector in completion
order (the order both engines append them) and every count and depth is
asserted against a by-hand derivation, not against the implementation.

Definitions under test (see ``MetricsCollector.summarize``):

- a packet's *sequence number* is its arrival rank within its stream,
  with arrival ties ranked in completion order (so simultaneous batch
  arrivals never count as reordered);
- a packet is *out of order* when a higher sequence number of its stream
  already completed; its *depth* is ``max(seq completed so far) - seq``;
- a *migration* is a service start on a different processor than the
  stream's previous service, counted in service-start order (a stream's
  first service is placement, not migration).
"""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsCollector
from repro.sim.system import NetworkProcessingSystem
from repro.verify.invariants import InvariantChecker, InvariantViolation

from ..conftest import fast_config


def summarize_rows(rows, warmup_us=0.0, n_procs=2):
    """Feed ``(stream, arrival, start, completion, proc)`` rows (already
    in completion order) to a fresh collector and summarize."""
    mc = MetricsCollector(warmup_us=warmup_us)
    mc.extend_columns(
        [r[0] for r in rows],
        [r[1] for r in rows],
        [r[2] for r in rows],
        [r[3] for r in rows],
        [1.0] * len(rows),          # exec
        [0.0] * len(rows),          # lock wait
        [r[4] for r in rows],
    )
    mc.fold_batch_counts(len(rows), len(rows), 0, len(rows))
    return mc.summarize(
        duration_us=100.0,
        utilization_per_proc=(0.0,) * n_procs,
        offered_rate_pps=0.0,
    )


class TestOracleTraces:
    def test_single_stream_fully_reversed(self):
        # Stream 7 arrives 0,1,2 (seq 0,1,2) and completes reversed.
        # Completion-order seqs [2,1,0]: depths 0, 2-1=1, 2-0=2.
        s = summarize_rows([
            (7, 2.0, 2.5, 4.0, 1),
            (7, 1.0, 1.2, 5.0, 0),
            (7, 0.0, 0.1, 6.0, 0),
        ])
        assert s.out_of_order_total == 2
        assert s.ooo_depth_counts == {1: 1, 2: 1}
        assert s.per_stream_out_of_order == {7: 2}
        assert s.max_ooo_depth == 2
        assert s.reordered_fraction == pytest.approx(2 / 3)
        # Start order: (0.1, p0), (1.2, p0), (2.5, p1) -> one migration.
        assert s.migrations_total == 1
        assert s.per_stream_migrations == {7: 1}

    def test_in_order_interleaved_streams(self):
        # Two streams complete in arrival order on fixed processors:
        # nothing is out of order, nothing migrates.
        s = summarize_rows([
            (0, 0.0, 0.1, 3.0, 0),
            (1, 0.5, 0.6, 3.5, 1),
            (0, 1.0, 3.0, 4.0, 0),
            (1, 1.5, 3.5, 4.5, 1),
        ])
        assert s.out_of_order_total == 0
        assert s.ooo_depth_counts == {}
        assert s.per_stream_out_of_order == {}
        assert s.max_ooo_depth == 0
        assert s.migrations_total == 0
        assert s.per_stream_migrations == {}

    def test_simultaneous_batch_arrivals_never_reorder(self):
        # All three packets of stream 3 arrive at the same instant; ties
        # take completion order, so seqs are 0,1,2 however they finish —
        # but hopping 0 -> 1 -> 0 across processors is two migrations.
        s = summarize_rows([
            (3, 5.0, 5.1, 6.0, 0),
            (3, 5.0, 5.2, 7.0, 1),
            (3, 5.0, 5.3, 8.0, 0),
        ])
        assert s.out_of_order_total == 0
        assert s.ooo_depth_counts == {}
        assert s.migrations_total == 2
        assert s.per_stream_migrations == {3: 2}

    def test_one_swap_in_one_stream(self):
        # Stream 1's two packets complete swapped; stream 0 is clean.
        s = summarize_rows([
            (0, 0.0, 0.1, 10.0, 0),
            (1, 2.0, 2.1, 11.0, 1),
            (1, 1.0, 1.1, 12.0, 1),
            (0, 3.0, 10.0, 13.0, 0),
        ])
        assert s.out_of_order_total == 1
        assert s.ooo_depth_counts == {1: 1}
        assert s.per_stream_out_of_order == {1: 1}
        assert s.migrations_total == 0

    def test_depth_distribution_one_early_packet(self):
        # Stream 5, seqs 0..4; the newest (seq 4) completes first, then
        # the rest in order: depths 4,3,2,1 — the TCP-reassembly gap a
        # receiver would buffer after one packet jumps the queue.
        rows = [(5, 4.0, 4.5, 10.0, 0)]
        rows += [(5, float(i), 10.0 + i, 11.0 + i, 0) for i in range(4)]
        s = summarize_rows(rows)
        assert s.out_of_order_total == 4
        assert s.ooo_depth_counts == {1: 1, 2: 1, 3: 1, 4: 1}
        assert s.per_stream_out_of_order == {5: 4}
        assert s.max_ooo_depth == 4
        assert s.migrations_total == 0

    def test_empty_run_is_reorder_free(self):
        mc = MetricsCollector()
        s = mc.summarize(duration_us=10.0, utilization_per_proc=(0.0,),
                         offered_rate_pps=0.0)
        assert s.out_of_order_total == 0
        assert s.ooo_depth_counts == {}
        assert s.migrations_total == 0
        assert s.reordered_fraction == 0.0
        assert s.max_ooo_depth == 0

    def test_reordering_row_columns(self):
        s = summarize_rows([(0, 0.0, 0.1, 1.0, 0)])
        row = s.reordering_row()
        assert set(row) == {"out_of_order", "ooo_fraction",
                            "max_ooo_depth", "migrations"}

    def test_engine_migration_total_overrides_row_count(self):
        # The dispatcher counts migrations over the whole run (warmup
        # included); summarize must prefer it over the row-derived count.
        mc = MetricsCollector(warmup_us=0.0)
        mc.extend_columns([0], [0.0], [0.1], [1.0], [1.0], [0.0], [0])
        s = mc.summarize(duration_us=10.0, utilization_per_proc=(0.0,),
                         offered_rate_pps=0.0, migrations=5)
        assert s.migrations_total == 5
        assert s.per_stream_migrations == {}  # rows alone show none


class TestConservationInvariant:
    def test_migrations_cannot_exceed_dispatches(self):
        checker = InvariantChecker()
        checker.dispatches = 1
        checker.migrations = 2
        with pytest.raises(InvariantViolation, match="migrations exceed"):
            checker.at_end(_FakeMetrics(), 0, [])

    def test_dispatcher_count_must_match_checker(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="migration accounting"):
            checker.at_end(_FakeMetrics(), 0, [], dispatcher_migrations=3)

    @pytest.mark.parametrize("policy", ["flow-steer", "work-steal",
                                        "grouped", "mru"])
    def test_full_run_upholds_conservation(self, policy):
        system = NetworkProcessingSystem(
            fast_config(policy=policy, check_invariants=True,
                        duration_us=40_000.0, warmup_us=5_000.0)
        )
        summary = system.run()
        inv = system.invariants.summary()
        assert inv["migrations"] <= inv["dispatches"]
        assert inv["migrations"] == system.dispatcher.migrations
        # The summary carries the engine total, not the row-derived one.
        assert summary.migrations_total == system.dispatcher.migrations


class _FakeMetrics:
    arrivals = 0
    completions = 0
    in_flight = 0
