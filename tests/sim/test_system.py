"""Integration tests: full simulations, queueing validation, invariants."""

import math

import pytest

from repro.analysis.mg1 import md1_mean_delay, mmc_mean_delay
from repro.core.params import PAPER_COSTS, PlatformConfig
from repro.core.policies import LOCKING_POLICIES
from repro.sim.system import NetworkProcessingSystem, SystemConfig, run_simulation
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


class TestConfigValidation:
    def test_bad_paradigm(self):
        with pytest.raises(ValueError, match="paradigm"):
            fast_config(paradigm="threads")

    def test_bad_intensity(self):
        with pytest.raises(ValueError, match="intensity"):
            fast_config(nonprotocol_intensity=-0.1)

    def test_bad_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            fast_config(duration_us=100.0, warmup_us=100.0)

    def test_bad_stacks(self):
        with pytest.raises(ValueError, match="n_stacks"):
            fast_config(paradigm="ips", policy="ips-wired", n_stacks=0)

    def test_policy_type_mismatch(self):
        from repro.core.policies import IPSWiredPolicy
        cfg = fast_config(policy=IPSWiredPolicy())
        with pytest.raises(TypeError, match="LockingPolicy"):
            NetworkProcessingSystem(cfg)

    def test_with_updates_functionally(self):
        cfg = fast_config()
        cfg2 = cfg.with_(seed=99)
        assert cfg2.seed == 99 and cfg.seed == 7

    def test_default_stacks_equals_processors(self):
        cfg = fast_config(paradigm="ips", policy="ips-wired")
        assert cfg.effective_n_stacks == cfg.platform.n_processors

    def test_single_use(self):
        system = NetworkProcessingSystem(fast_config())
        system.run()
        with pytest.raises(RuntimeError, match="single-use"):
            system.run()


class TestConservationAndDeterminism:
    def test_arrivals_equal_completions_plus_backlog(self):
        system = NetworkProcessingSystem(fast_config())
        system.run()
        m = system.metrics
        assert m.arrivals == m.completions + m.backlog

    def test_same_seed_same_results(self):
        a = run_simulation(fast_config(seed=11))
        b = run_simulation(fast_config(seed=11))
        assert a.mean_delay_us == b.mean_delay_us
        assert a.n_packets == b.n_packets

    def test_different_seeds_differ(self):
        a = run_simulation(fast_config(seed=11))
        b = run_simulation(fast_config(seed=12))
        assert a.mean_delay_us != b.mean_delay_us

    def test_common_random_numbers_across_policies(self):
        # Same seed, different policy: identical arrival counts.
        a = run_simulation(fast_config(policy="fcfs"))
        b = run_simulation(fast_config(policy="mru"))
        assert a.n_packets == b.n_packets

    def test_all_locking_policies_run(self):
        for name in LOCKING_POLICIES:
            s = run_simulation(fast_config(policy=name, duration_us=60_000,
                                           warmup_us=10_000))
            assert s.n_packets > 0, name

    def test_ips_policies_run(self):
        for name in ("ips-wired", "ips-mru"):
            s = run_simulation(fast_config(paradigm="ips", policy=name,
                                           duration_us=60_000, warmup_us=10_000))
            assert s.n_packets > 0, name


class TestQueueingValidation:
    """Degenerate configurations against closed-form queueing results."""

    def test_md1_single_processor_locking(self):
        # One CPU, V=0: after the first packet everything is warm and
        # service is deterministic t_warm + dispatch + lock_overhead.
        service = (PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
                   + PAPER_COSTS.lock_overhead_us)
        rate = 0.7 / service  # rho = 0.7, packets/us
        cfg = SystemConfig(
            traffic=TrafficSpec.single_stream(rate * 1e6),
            paradigm="locking", policy="fcfs",
            platform=PlatformConfig(n_processors=1),
            nonprotocol_intensity=0.0,
            duration_us=4_000_000.0, warmup_us=400_000.0, seed=3,
        )
        s = run_simulation(cfg)
        expected = md1_mean_delay(rate, service)
        assert s.mean_exec_us == pytest.approx(service, rel=1e-3)
        assert s.mean_delay_us == pytest.approx(expected, rel=0.08)

    def test_md1_single_stack_ips(self):
        service = PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
        rate = 0.6 / service
        cfg = SystemConfig(
            traffic=TrafficSpec.single_stream(rate * 1e6),
            paradigm="ips", policy="ips-wired",
            platform=PlatformConfig(n_processors=1),
            nonprotocol_intensity=0.0,
            duration_us=4_000_000.0, warmup_us=400_000.0, seed=3,
        )
        s = run_simulation(cfg)
        expected = md1_mean_delay(rate, service)
        assert s.mean_delay_us == pytest.approx(expected, rel=0.08)

    def test_multiserver_less_delay_than_single(self):
        # Work conservation sanity: 4 CPUs at the same total load beat 1.
        mk = lambda n: SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(4, 8_000.0),
            paradigm="locking", policy="fcfs",
            platform=PlatformConfig(n_processors=n),
            nonprotocol_intensity=0.0,
            duration_us=500_000.0, warmup_us=100_000.0, seed=5,
        )
        d1 = run_simulation(mk(1)).mean_delay_us
        d4 = run_simulation(mk(4)).mean_delay_us
        assert d4 < d1


class TestModelEffects:
    """The cache-affinity mechanics show through end to end."""

    def test_v0_affinity_runs_fully_warm(self):
        # Wired streams + V=0: every packet after the first per stream is
        # completely warm *except* the shared writable state, which other
        # processors' protocol executions keep migrating away (the Locking
        # penalty IPS avoids).
        from repro.core.params import PAPER_COMPOSITION
        cfg = fast_config(policy="wired-streams", nonprotocol_intensity=0.0,
                          traffic=TrafficSpec.homogeneous_poisson(8, 4_000.0),
                          duration_us=400_000, warmup_us=80_000)
        s = run_simulation(cfg)
        warm_service = (PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
                        + PAPER_COSTS.lock_overhead_us)
        shared_penalty = (
            PAPER_COMPOSITION.code_global
            * PAPER_COMPOSITION.shared_writable_of_code
            * (PAPER_COSTS.t_cold_us - PAPER_COSTS.t_warm_us)
        )
        assert s.mean_exec_us == pytest.approx(
            warm_service + shared_penalty, rel=0.03
        )

    def test_v0_single_proc_truly_warm(self):
        # One processor, ONE stream, V=0: no migration, no displacement by
        # other streams' protocol references -> exactly the warm bound.
        # (With several streams, each one's state is displaced by the
        # others' executions on the shared processor — see the wired test.)
        cfg = fast_config(
            policy="mru", nonprotocol_intensity=0.0,
            traffic=TrafficSpec.single_stream(3_000.0),
            platform=PlatformConfig(n_processors=1),
            duration_us=400_000, warmup_us=80_000,
        )
        s = run_simulation(cfg)
        warm_service = (PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
                        + PAPER_COSTS.lock_overhead_us)
        assert s.mean_exec_us == pytest.approx(warm_service, rel=0.02)

    def test_higher_intensity_higher_exec_time(self):
        lo = run_simulation(fast_config(nonprotocol_intensity=0.1))
        hi = run_simulation(fast_config(nonprotocol_intensity=1.0))
        assert hi.mean_exec_us > lo.mean_exec_us

    def test_affinity_beats_baseline_exec_time(self):
        base = run_simulation(fast_config(policy="fcfs"))
        mru = run_simulation(fast_config(policy="mru"))
        assert mru.mean_exec_us < base.mean_exec_us

    def test_ips_avoids_lock_overhead(self):
        # Neutralize the shared-writable migration penalty so the Locking
        # vs IPS service gap isolates the per-packet locking cost.
        from repro.core.params import FootprintComposition
        no_shared = FootprintComposition(shared_writable_of_code=0.0)
        lk = run_simulation(fast_config(policy="wired-streams",
                                        composition=no_shared,
                                        nonprotocol_intensity=0.0))
        ips = run_simulation(fast_config(paradigm="ips", policy="ips-wired",
                                         composition=no_shared,
                                         nonprotocol_intensity=0.0))
        assert lk.mean_exec_us - ips.mean_exec_us == pytest.approx(
            PAPER_COSTS.lock_overhead_us, rel=0.15
        )

    def test_fixed_overhead_added(self):
        base = run_simulation(fast_config())
        loaded = run_simulation(fast_config(fixed_overhead_us=139.0))
        assert loaded.mean_exec_us - base.mean_exec_us == pytest.approx(
            139.0, rel=0.05
        )

    def test_data_touching_charges_payload(self):
        from repro.workloads.traffic import FixedSize
        traffic = TrafficSpec.homogeneous_poisson(
            4, 4_000.0, size_model=FixedSize(3200)
        )
        base = run_simulation(fast_config(traffic=traffic))
        touched = run_simulation(fast_config(traffic=traffic, data_touching=True))
        assert touched.mean_exec_us - base.mean_exec_us == pytest.approx(
            3200 / PAPER_COSTS.checksum_bytes_per_us, rel=0.05
        )


class TestIPSSemantics:
    def test_wired_stream_processor_binding(self):
        cfg = fast_config(policy="wired-streams",
                          traffic=TrafficSpec.homogeneous_poisson(8, 6_000.0))
        system = NetworkProcessingSystem(cfg)
        system.run()
        for rec in system.metrics.records:
            assert rec.processor_id == rec.stream_id % 8

    def test_ips_wired_stack_binding(self):
        cfg = fast_config(paradigm="ips", policy="ips-wired", n_stacks=4,
                          traffic=TrafficSpec.homogeneous_poisson(8, 6_000.0))
        system = NetworkProcessingSystem(cfg)
        system.run()
        for rec in system.metrics.records:
            assert rec.processor_id == (rec.stream_id % 4) % 8

    def test_ips_stream_fifo_per_stack(self):
        # A stack is serial: its packets complete in arrival order.
        cfg = fast_config(paradigm="ips", policy="ips-mru",
                          traffic=TrafficSpec.homogeneous_poisson(4, 10_000.0))
        system = NetworkProcessingSystem(cfg)
        system.run()
        by_stack = {}
        for rec in system.metrics.records:
            by_stack.setdefault(rec.stream_id % 8, []).append(rec)
        for recs in by_stack.values():
            completions = [r.completion_us for r in recs]
            arrivals = [r.arrival_us for r in recs]
            assert arrivals == sorted(arrivals)
            assert completions == sorted(completions)

    def test_lock_waits_zero_under_ips(self):
        s = run_simulation(fast_config(paradigm="ips", policy="ips-wired"))
        assert s.mean_lock_wait_us == 0.0

    def test_locking_sees_contention_at_high_rate(self):
        cfg = fast_config(
            traffic=TrafficSpec.homogeneous_poisson(8, 38_000.0),
            duration_us=200_000, warmup_us=30_000,
        )
        s = run_simulation(cfg)
        assert s.mean_lock_wait_us > 0.0
