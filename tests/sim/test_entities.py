"""Tests for simulation entities: packets, processor state, thread pool."""

import math

import pytest

from repro.core.exec_model import COLD
from repro.sim.entities import Packet, ProcessorState, ThreadPool


def proc(V=1.0, rate=20.0):
    return ProcessorState(0, references_per_us=rate, nonprotocol_intensity=V)


def packet(stream=0, arrival=0.0):
    return Packet(packet_id=0, stream_id=stream, arrival_us=arrival)


class TestPacket:
    def test_delay_and_queueing(self):
        p = packet(arrival=10.0)
        p.service_start_us = 25.0
        p.completion_us = 40.0
        assert p.queueing_us == pytest.approx(15.0)
        assert p.delay_us == pytest.approx(30.0)


class TestProcessorRefClock:
    def test_idle_accrues_at_intensity_rate(self):
        p = proc(V=0.5, rate=20.0)
        assert p.ref_clock(100.0) == pytest.approx(100.0 * 20.0 * 0.5)

    def test_zero_intensity_accrues_nothing(self):
        p = proc(V=0.0)
        assert p.ref_clock(1000.0) == 0.0

    def test_busy_time_does_not_accrue_idle_refs(self):
        p = proc(V=1.0)
        pk = packet()
        p.begin_service(pk, 10.0)
        clock_at_start = p.ref_clock(10.0)
        # While busy, reading the clock later adds nothing.
        assert p.ref_clock(50.0) == pytest.approx(clock_at_start)

    def test_protocol_execution_adds_full_rate_refs(self):
        p = proc(V=0.0)  # isolate protocol refs
        pk = packet()
        p.begin_service(pk, 0.0)
        p.end_service(10.0, exec_time_us=10.0, touched_keys=(("code",),),
                      protocol_epoch=1)
        assert p.ref_clock(10.0) == pytest.approx(10.0 * 20.0)

    def test_time_backwards_rejected(self):
        p = proc()
        p.ref_clock(100.0)
        with pytest.raises(ValueError, match="backwards"):
            p.accrue_idle(50.0)


class TestRefsSinceTouch:
    def test_untouched_is_cold(self):
        assert proc().refs_since_touch(("code",), 100.0) is COLD

    def test_touch_resets_to_zero(self):
        p = proc(V=1.0)
        pk = packet()
        p.begin_service(pk, 0.0)
        p.end_service(10.0, 10.0, (("code",),), 1)
        # Immediately after completion, no displacing refs since touch.
        assert p.refs_since_touch(("code",), 10.0) == pytest.approx(0.0)

    def test_idle_displacement_counts(self):
        p = proc(V=1.0)
        pk = packet()
        p.begin_service(pk, 0.0)
        p.end_service(10.0, 10.0, (("code",),), 1)
        assert p.refs_since_touch(("code",), 60.0) == pytest.approx(50.0 * 20.0)

    def test_other_execution_displaces_untouched_keys(self):
        p = proc(V=0.0)
        pk = packet(stream=1)
        p.begin_service(pk, 0.0)
        p.end_service(10.0, 10.0, (("stream", 1),), 1)
        pk2 = packet(stream=2)
        p.begin_service(pk2, 10.0)
        p.end_service(20.0, 10.0, (("stream", 2),), 2)
        # Stream 1's state was displaced by stream 2's execution refs.
        assert p.refs_since_touch(("stream", 1), 20.0) == pytest.approx(200.0)
        assert p.refs_since_touch(("stream", 2), 20.0) == pytest.approx(0.0)


class TestServiceLifecycle:
    def test_begin_while_busy_raises(self):
        p = proc()
        p.begin_service(packet(), 0.0)
        with pytest.raises(RuntimeError, match="already busy"):
            p.begin_service(packet(), 1.0)

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError, match="not serving"):
            proc().end_service(1.0, 1.0, (), 0)

    def test_end_returns_packet_and_clears_state(self):
        p = proc()
        pk = packet()
        p.begin_service(pk, 0.0)
        out = p.end_service(5.0, 5.0, (), 1)
        assert out is pk
        assert not p.busy
        assert p.last_protocol_end == 5.0
        assert p.protocol_epoch_seen == 1

    def test_utilization(self):
        p = proc()
        p.begin_service(packet(), 0.0)
        p.end_service(25.0, 25.0, (), 1)
        assert p.utilization(100.0) == pytest.approx(0.25)
        assert p.utilization(0.0) == 0.0

    def test_nonprotocol_time_tracked(self):
        p = proc(V=1.0)
        p.accrue_idle(40.0)
        assert p.nonprotocol_us == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorState(0, references_per_us=0.0, nonprotocol_intensity=1.0)
        with pytest.raises(ValueError):
            ProcessorState(0, references_per_us=20.0, nonprotocol_intensity=-1.0)


class TestThreadPoolShared:
    def test_acquire_release_cycle(self):
        pool = ThreadPool(4, per_processor=False)
        t = pool.acquire(2)
        assert pool.free_count == 3
        pool.release(t)
        assert pool.free_count == 4
        assert pool.last_processor(t) == 2

    def test_prefers_thread_with_matching_last_processor(self):
        pool = ThreadPool(4, per_processor=False)
        t1 = pool.acquire(1)
        t2 = pool.acquire(2)
        pool.release(t1)
        pool.release(t2)
        again = pool.acquire(1)
        assert again == t1  # affinity-preferred free thread

    def test_exhaustion_raises(self):
        pool = ThreadPool(1, per_processor=False)
        pool.acquire(0)
        with pytest.raises(RuntimeError, match="no free"):
            pool.acquire(1)

    def test_double_release_raises(self):
        pool = ThreadPool(2, per_processor=False)
        t = pool.acquire(0)
        pool.release(t)
        with pytest.raises(RuntimeError, match="not busy"):
            pool.release(t)


class TestThreadPoolPerProcessor:
    def test_thread_id_equals_processor(self):
        pool = ThreadPool(4, per_processor=True)
        assert pool.acquire(3) == 3

    def test_bound_thread_busy_raises(self):
        pool = ThreadPool(4, per_processor=True)
        pool.acquire(1)
        with pytest.raises(RuntimeError):
            pool.acquire(1)

    def test_needs_a_thread(self):
        with pytest.raises(ValueError):
            ThreadPool(0, per_processor=True)
