"""Tests for the serialized-lock model."""

import pytest

from repro.sim.locks import SerialLock


class TestSerialLock:
    def test_uncontended_no_wait(self):
        lock = SerialLock()
        assert lock.reserve(0.0, 15.0) == 0.0

    def test_back_to_back_contends(self):
        lock = SerialLock()
        lock.reserve(0.0, 15.0)
        assert lock.reserve(0.0, 15.0) == pytest.approx(15.0)
        assert lock.reserve(0.0, 15.0) == pytest.approx(30.0)

    def test_gap_larger_than_hold_no_wait(self):
        lock = SerialLock()
        lock.reserve(0.0, 10.0)
        assert lock.reserve(50.0, 10.0) == 0.0

    def test_partial_overlap(self):
        lock = SerialLock()
        lock.reserve(0.0, 10.0)
        assert lock.reserve(4.0, 10.0) == pytest.approx(6.0)

    def test_statistics(self):
        lock = SerialLock()
        lock.reserve(0.0, 10.0)
        lock.reserve(0.0, 10.0)
        lock.reserve(100.0, 10.0)
        assert lock.acquisitions == 3
        assert lock.contended == 1
        assert lock.contention_ratio == pytest.approx(1 / 3)
        assert lock.total_hold_us == pytest.approx(30.0)
        assert lock.mean_wait_us == pytest.approx(10.0 / 3)

    def test_utilization(self):
        lock = SerialLock()
        lock.reserve(0.0, 25.0)
        assert lock.utilization(100.0) == pytest.approx(0.25)
        assert lock.utilization(0.0) == 0.0

    def test_empty_stats(self):
        lock = SerialLock()
        assert lock.mean_wait_us == 0.0
        assert lock.contention_ratio == 0.0

    def test_zero_hold_allowed(self):
        lock = SerialLock()
        assert lock.reserve(0.0, 0.0) == 0.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            SerialLock().reserve(0.0, -1.0)

    def test_fifo_throughput_bound(self):
        # N back-to-back reservations of h us serialize to N*h total.
        lock = SerialLock()
        total_wait = sum(lock.reserve(0.0, 5.0) for _ in range(10))
        assert total_wait == pytest.approx(sum(5.0 * k for k in range(10)))
