"""Edge-case tests for the dispatchers (misuse guards, fairness)."""

import pytest

from repro.core.policies import LockingPolicy, IPSPolicy
from repro.sim.system import NetworkProcessingSystem
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


class GreedyBadPolicy(LockingPolicy):
    """Dispatches to processor 0 even when it is busy (misuse)."""

    name = "greedy-bad"

    def __init__(self):
        super().__init__()
        self._queue = []

    def on_arrival(self, packet):
        self._queue.append(packet)

    def next_dispatch(self):
        if self._queue:
            return 0, self._queue.pop(0)
        return None

    def queued(self):
        return len(self._queue)


class BadIPSPolicy(IPSPolicy):
    """Chooses a busy processor (misuse)."""

    name = "bad-ips"

    def select_processor(self, stack_id, view, stack_last_proc):
        return 0  # regardless of idleness


class TestMisuseGuards:
    def test_locking_dispatch_to_busy_processor_raises(self):
        cfg = fast_config(policy=GreedyBadPolicy(),
                          traffic=TrafficSpec.homogeneous_poisson(4, 40_000),
                          duration_us=50_000, warmup_us=5_000)
        system = NetworkProcessingSystem(cfg)
        with pytest.raises(RuntimeError, match="busy processor"):
            system.run()

    def test_ips_policy_choosing_busy_processor_raises(self):
        cfg = fast_config(paradigm="ips", policy=BadIPSPolicy(),
                          traffic=TrafficSpec.homogeneous_poisson(4, 40_000),
                          duration_us=50_000, warmup_us=5_000)
        system = NetworkProcessingSystem(cfg)
        with pytest.raises(RuntimeError, match="busy processor"):
            system.run()


class TestIPSFairness:
    def test_stacks_served_in_head_arrival_order(self):
        # With one processor and many stacks, the IPS dispatcher serves
        # whichever runnable stack has the earliest waiting packet —
        # global FCFS across stacks.
        from repro.core.params import PlatformConfig
        cfg = fast_config(
            paradigm="ips", policy="ips-mru", n_stacks=4,
            platform=PlatformConfig(n_processors=1),
            traffic=TrafficSpec.homogeneous_poisson(4, 9_000),
            duration_us=150_000, warmup_us=20_000,
        )
        system = NetworkProcessingSystem(cfg)
        system.run()
        starts = [
            (r.service_start_us, r.arrival_us)
            for r in system.metrics.records
        ]
        starts.sort()
        # Service order should never start a packet that arrived later
        # than a still-waiting earlier packet by more than one service
        # time (head-of-line FCFS across stacks, modulo in-flight work).
        arrivals_in_service_order = [a for _, a in starts]
        inversions = sum(
            1
            for x, y in zip(arrivals_in_service_order,
                            arrivals_in_service_order[1:])
            if x > y + 200.0  # tolerance: one max service time
        )
        assert inversions == 0

    def test_all_stacks_make_progress(self):
        cfg = fast_config(
            paradigm="ips", policy="ips-wired", n_stacks=4,
            traffic=TrafficSpec.homogeneous_poisson(8, 12_000),
            duration_us=150_000, warmup_us=20_000,
        )
        system = NetworkProcessingSystem(cfg)
        system.run()
        stacks_seen = {r.stream_id % 4 for r in system.metrics.records}
        assert stacks_seen == {0, 1, 2, 3}


class TestSeedRobustness:
    """Key orderings hold across seeds, not just the default one."""

    @pytest.mark.parametrize("seed", [2, 23, 101])
    def test_mru_beats_fcfs(self, seed):
        from repro.sim.system import run_simulation
        base = fast_config(seed=seed, duration_us=200_000, warmup_us=30_000,
                           traffic=TrafficSpec.homogeneous_poisson(8, 12_000))
        fcfs = run_simulation(base.with_(policy="fcfs"))
        mru = run_simulation(base.with_(policy="mru"))
        assert mru.mean_delay_us < fcfs.mean_delay_us

    @pytest.mark.parametrize("seed", [2, 23])
    def test_ips_wired_lower_service_than_locking(self, seed):
        from repro.sim.system import run_simulation
        base = fast_config(seed=seed, duration_us=200_000, warmup_us=30_000,
                           traffic=TrafficSpec.homogeneous_poisson(8, 12_000))
        lk = run_simulation(base.with_(policy="wired-streams"))
        ips = run_simulation(base.with_(paradigm="ips", policy="ips-wired"))
        assert ips.mean_exec_us < lk.mean_exec_us
