"""Tests for the discrete-event engine."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(10.0, lambda i=i: fired.append(i))
        sim.run_until(100.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42.0, lambda: seen.append(sim.now))
        sim.run_until(100.0)
        assert seen == [42.0]

    def test_clock_ends_at_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(55.0)
        assert sim.now == 55.0

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(200.0, lambda: fired.append(1))
        sim.run_until(100.0)
        assert fired == []
        assert sim.pending == 1
        sim.run_until(300.0)
        assert fired == [1]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until(100.0)
        assert fired == [0, 1, 2, 3]
        assert sim.events_processed == 4

    def test_absolute_scheduling(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(10.0)
        seen = []
        sim.at(15.0, lambda: seen.append(sim.now))
        sim.run_until(20.0)
        assert seen == [15.0]


class TestErrors:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_nan_delay_reported_as_nan_not_negative(self):
        with pytest.raises(SimulationError, match="NaN delay"):
            Simulator().schedule(float("nan"), lambda: None)

    def test_nan_absolute_time_reported_as_nan_not_past(self):
        with pytest.raises(SimulationError, match="NaN time"):
            Simulator().at(float("nan"), lambda: None)

    def test_negative_delay_message_distinct_from_nan(self):
        with pytest.raises(SimulationError, match="negative delay"):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_to_completion_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run_to_completion(max_events=100)


class TestControl:
    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(100.0)
        assert fired == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_to_completion_drains(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 1.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_to_completion()
        assert fired == [1.0, 3.0, 5.0]
        assert sim.pending == 0


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                       max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run_until(2e6)
    assert times == sorted(times)
    assert len(times) == len(delays)
