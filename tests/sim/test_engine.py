"""Tests for the discrete-event engine."""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim.engine import (
    EVENT_ARRIVAL,
    EVENT_COMPLETION,
    Event,
    SimulationError,
    Simulator,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(10.0, lambda i=i: fired.append(i))
        sim.run_until(100.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42.0, lambda: seen.append(sim.now))
        sim.run_until(100.0)
        assert seen == [42.0]

    def test_clock_ends_at_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(55.0)
        assert sim.now == 55.0

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(200.0, lambda: fired.append(1))
        sim.run_until(100.0)
        assert fired == []
        assert sim.pending == 1
        sim.run_until(300.0)
        assert fired == [1]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run_until(100.0)
        assert fired == [0, 1, 2, 3]
        assert sim.events_processed == 4

    def test_absolute_scheduling(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(10.0)
        seen = []
        sim.at(15.0, lambda: seen.append(sim.now))
        sim.run_until(20.0)
        assert seen == [15.0]


class TestRecordScheduling:
    """The slotted-record fast path honours the ``(time, seq)`` contract.

    Ties at one timestamp must fire in scheduling order regardless of
    which API scheduled them — reusable records, ``fn(arg)`` pairs and
    generic closures all share one sequence counter.
    """

    def test_ties_fire_in_scheduling_order_across_all_apis(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append("closure"))
        sim.at_record(10.0, Event(EVENT_ARRIVAL, fired.append, "record"))
        sim.at_call(10.0, fired.append, "call")
        sim.schedule_record(10.0, Event(EVENT_COMPLETION, fired.append,
                                        "rel-record"))
        sim.schedule_call(10.0, fired.append, "rel-call")
        sim.run_until(100.0)
        assert fired == ["closure", "record", "call", "rel-record", "rel-call"]

    def test_record_reuse_keeps_tie_break(self):
        sim = Simulator()
        fired = []
        record = Event(EVENT_ARRIVAL, lambda arg: fired.append(("reused", sim.now)))
        record.arg = object()  # non-None: fast-path convention
        sim.at_record(5.0, record)
        sim.at(5.0, lambda: fired.append(("closure", sim.now)))
        sim.run_until(5.0)
        # Re-pushing the same record object starts a fresh tie group.
        sim.at(9.0, lambda: fired.append(("closure", sim.now)))
        sim.at_record(9.0, record)
        sim.run_until(100.0)
        assert fired == [
            ("reused", 5.0), ("closure", 5.0),
            ("closure", 9.0), ("reused", 9.0),
        ]

    def test_event_at_horizon_fires_and_later_stays(self):
        """Pop-first horizon handling: ``time == end`` fires, the first
        entry past the horizon is pushed back intact."""
        sim = Simulator()
        fired = []
        sim.at_call(50.0, fired.append, "at-horizon")
        sim.at_call(math.nextafter(50.0, math.inf), fired.append, "just-past")
        sim.run_until(50.0)
        assert fired == ["at-horizon"]
        assert sim.pending == 1
        assert sim.now == 50.0
        sim.run_until(51.0)
        assert fired == ["at-horizon", "just-past"]

    def test_events_processed_counted_when_stopped_mid_run(self):
        sim = Simulator()
        sim.at_call(1.0, lambda _: None, 0)
        sim.at(2.0, sim.stop)
        sim.at_call(3.0, lambda _: None, 0)
        sim.run_until(100.0)
        assert sim.events_processed == 2
        assert sim.pending == 1

    def test_on_event_hook_sees_every_tied_event(self):
        times = []
        sim = Simulator(on_event=times.append)
        for _ in range(3):
            sim.at_call(7.0, lambda _: None, 0)
        sim.at_call(8.0, lambda _: None, 0)
        sim.run_until(10.0)
        assert times == [7.0, 7.0, 7.0, 8.0]

    def test_record_schedule_rejects_nan_and_negative(self):
        sim = Simulator()
        record = Event(EVENT_COMPLETION, lambda _: None, 0)
        with pytest.raises(SimulationError, match="NaN"):
            sim.schedule_record(float("nan"), record)
        with pytest.raises(SimulationError, match="negative"):
            sim.schedule_record(-1.0, record)
        with pytest.raises(SimulationError, match="NaN"):
            sim.at_record(float("nan"), record)


class TestErrors:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_nan_delay_reported_as_nan_not_negative(self):
        with pytest.raises(SimulationError, match="NaN delay"):
            Simulator().schedule(float("nan"), lambda: None)

    def test_nan_absolute_time_reported_as_nan_not_past(self):
        with pytest.raises(SimulationError, match="NaN time"):
            Simulator().at(float("nan"), lambda: None)

    def test_negative_delay_message_distinct_from_nan(self):
        with pytest.raises(SimulationError, match="negative delay"):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_to_completion_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run_to_completion(max_events=100)


class TestControl:
    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(100.0)
        assert fired == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_run_to_completion_drains(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 1.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_to_completion()
        assert fired == [1.0, 3.0, 5.0]
        assert sim.pending == 0


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                       max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run_until(2e6)
    assert times == sorted(times)
    assert len(times) == len(delays)
