"""Tests for per-layer lock granularity (ref [3] dimension)."""

import pytest

from repro.sim.locks import LayeredLocks
from repro.sim.system import run_simulation
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


class TestLayeredLocks:
    def test_single_lock_equals_serial_lock(self):
        layered = LayeredLocks(1)
        assert layered.reserve(0.0, 15.0) == 0.0
        assert layered.reserve(0.0, 15.0) == pytest.approx(15.0)

    def test_pipelining_reduces_wait(self):
        # Two packets arriving together: with one lock the second waits
        # the full CS; with 3 stage locks it waits only one stage.
        coarse = LayeredLocks(1)
        fine = LayeredLocks(3)
        coarse.reserve(0.0, 15.0)
        fine.reserve(0.0, 15.0)
        assert coarse.reserve(0.0, 15.0) == pytest.approx(15.0)
        assert fine.reserve(0.0, 15.0) == pytest.approx(5.0)

    def test_throughput_ceiling_scales(self):
        # Sustained back-to-back packets: per-packet serialization cost is
        # cs/n, so total wait over k packets shrinks ~n-fold.
        def total_wait(n_locks: int, k: int = 20) -> float:
            locks = LayeredLocks(n_locks)
            return sum(locks.reserve(0.0, 12.0) for _ in range(k))

        assert total_wait(3) < total_wait(1) / 2.0

    def test_stage_ordering_respected(self):
        locks = LayeredLocks(2)
        locks.reserve(0.0, 10.0)     # stage 0 busy [0,5), stage 1 [5,10)
        wait = locks.reserve(2.0, 10.0)  # arrives mid stage-0 hold
        assert wait == pytest.approx(3.0)  # waits for stage 0 only

    def test_statistics(self):
        locks = LayeredLocks(2)
        locks.reserve(0.0, 10.0)
        locks.reserve(0.0, 10.0)
        assert locks.acquisitions == 2
        assert locks.total_wait_us > 0.0
        assert 0.0 < locks.contention_ratio <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LayeredLocks(0)
        with pytest.raises(ValueError):
            LayeredLocks(2).reserve(0.0, -1.0)

    def test_empty_stats(self):
        assert LayeredLocks(2).contention_ratio == 0.0


class TestGranularityInSimulation:
    def test_finer_locks_reduce_lock_waits(self):
        base = fast_config(
            traffic=TrafficSpec.homogeneous_poisson(8, 40_000),
            policy="wired-streams", duration_us=150_000, warmup_us=20_000,
        )
        coarse = run_simulation(base.with_(lock_granularity=1))
        fine = run_simulation(base.with_(lock_granularity=3))
        assert fine.mean_lock_wait_us < coarse.mean_lock_wait_us

    def test_granularity_validated(self):
        with pytest.raises(ValueError, match="lock_granularity"):
            fast_config(lock_granularity=0)

    def test_ips_ignores_granularity(self):
        base = fast_config(paradigm="ips", policy="ips-wired",
                           duration_us=60_000, warmup_us=10_000)
        a = run_simulation(base.with_(lock_granularity=1))
        b = run_simulation(base.with_(lock_granularity=4))
        assert a.mean_delay_us == b.mean_delay_us
