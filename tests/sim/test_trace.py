"""Tests for execution tracing, attribution, and simulator invariants."""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.exec_model import COLD, ComponentState
from repro.core.params import PAPER_COSTS
from repro.sim.entities import Packet
from repro.sim.system import NetworkProcessingSystem
from repro.sim.trace import ExecutionTracer
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


def traced_system(**overrides) -> NetworkProcessingSystem:
    system = NetworkProcessingSystem(
        fast_config(trace=True, duration_us=100_000, warmup_us=10_000,
                    **overrides)
    )
    system.run()
    return system


class TestRecording:
    def test_every_service_recorded(self):
        system = traced_system()
        # Records cover all services started (completions + in-flight).
        assert len(system.tracer) >= system.metrics.completions

    def test_tracing_off_by_default(self):
        system = NetworkProcessingSystem(fast_config(duration_us=50_000,
                                                     warmup_us=5_000))
        system.run()
        assert system.tracer is None

    def test_record_fields(self):
        system = traced_system()
        r = system.tracer.records[0]
        assert r.exec_time_us > 0
        assert r.end_us == pytest.approx(
            r.start_us + r.lock_wait_us + r.exec_time_us
        )
        # First packet of a stream is always stream-cold.
        assert r.stream_was_cold

    def test_to_rows_shape(self):
        system = traced_system()
        rows = system.tracer.to_rows()
        assert len(rows) == len(system.tracer)
        assert {"packet_id", "processor_id", "exec_time_us"} <= set(rows[0])


class TestDiagnostics:
    def test_wired_streams_never_migrate(self):
        system = traced_system(policy="wired-streams")
        assert system.tracer.migration_rate() == 0.0

    def test_fcfs_migrates_heavily(self):
        system = traced_system(policy="fcfs",
                               traffic=TrafficSpec.homogeneous_poisson(8, 8_000))
        # Random placement on 8 CPUs: ~7/8 of services migrate.
        assert system.tracer.migration_rate() > 0.5

    def test_cold_fraction_wired_near_zero(self):
        system = traced_system(policy="wired-streams")
        # Only each stream's first packet is cold.
        assert system.tracer.cold_fraction() < 0.05

    def test_attribution_sums_to_mean_penalty(self):
        system = traced_system()
        attribution = system.tracer.component_attribution()
        mean_exec = sum(
            r.exec_time_us for r in system.tracer.records
        ) / len(system.tracer)
        reconstructed = (
            PAPER_COSTS.t_warm_us + PAPER_COSTS.dispatch_us
            + PAPER_COSTS.lock_overhead_us
            + attribution["code_global"] + attribution["stream_state"]
            + attribution["thread_stack"]
        )
        assert reconstructed == pytest.approx(mean_exec, rel=1e-6)

    def test_empty_tracer_diagnostics(self, model):
        t = ExecutionTracer(model)
        assert t.cold_fraction() == 0.0
        assert t.migration_rate() == 0.0
        assert t.component_attribution()["lock_wait"] == 0.0


class TestInvariants:
    def test_no_overlap_all_policies(self):
        for paradigm, policy in (
            ("locking", "fcfs"), ("locking", "mru"), ("locking", "pools"),
            ("locking", "wired-streams"), ("locking", "hybrid"),
            ("ips", "ips-wired"), ("ips", "ips-mru"),
        ):
            system = traced_system(paradigm=paradigm, policy=policy)
            system.tracer.check_no_overlap()

    def test_overlap_detection_works(self, model):
        t = ExecutionTracer(model)
        pk = Packet(packet_id=0, stream_id=0, arrival_us=0.0)
        pk.processor_id = 0
        state = ComponentState()
        t.record(pk, state, 0.0, 100.0, 0.0)
        t.record(pk, state, 0.0, 100.0, 50.0)  # overlaps
        with pytest.raises(AssertionError, match="double-booked"):
            t.check_no_overlap()

    def test_utilization_from_trace_matches_metrics(self):
        system = traced_system(policy="wired-streams")
        horizon = system.config.duration_us
        for p in range(4):
            from_trace = system.tracer.utilization_from_trace(p, horizon)
            from_proc = system.processors[p].utilization(horizon)
            # Trace intervals include lock waits; allow that slack.
            assert from_trace == pytest.approx(from_proc, abs=0.05)

    def test_utilization_validates_horizon(self, model):
        with pytest.raises(ValueError):
            ExecutionTracer(model).utilization_from_trace(0, 0.0)

    @given(seed=st.integers(min_value=0, max_value=500),
           policy=st.sampled_from(["fcfs", "mru", "wired-streams",
                                   "pools", "hybrid"]))
    @settings(max_examples=12, deadline=None)
    def test_property_no_overlap_random_configs(self, seed, policy):
        system = NetworkProcessingSystem(fast_config(
            trace=True, policy=policy, seed=seed,
            duration_us=40_000, warmup_us=4_000,
            traffic=TrafficSpec.homogeneous_poisson(6, 20_000),
        ))
        system.run()
        system.tracer.check_no_overlap()
