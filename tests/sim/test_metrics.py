"""Tests for metrics collection and summaries."""

import math

import pytest

from repro.sim.entities import Packet
from repro.sim.metrics import MetricsCollector, PacketRecord, SimulationSummary


def completed_packet(arrival, start, completion, stream=0, exec_us=None,
                     lock_wait=0.0, proc=0):
    p = Packet(packet_id=0, stream_id=stream, arrival_us=arrival)
    p.service_start_us = start
    p.completion_us = completion
    p.exec_time_us = exec_us if exec_us is not None else completion - start
    p.lock_wait_us = lock_wait
    p.processor_id = proc
    return p


class TestCollection:
    def test_warmup_cutoff_discards_early_completions(self):
        m = MetricsCollector(warmup_us=100.0)
        early = completed_packet(0.0, 10.0, 50.0)
        late = completed_packet(90.0, 100.0, 150.0)
        for p in (early, late):
            m.on_arrival(p)
            m.on_completion(p)
        assert len(m.records) == 1
        assert m.records[0].completion_us == 150.0

    def test_backlog_tracking(self):
        m = MetricsCollector()
        packets = [completed_packet(i, i, i + 10) for i in range(3)]
        for p in packets:
            m.on_arrival(p)
        assert m.backlog == 3
        assert m.max_backlog == 3
        m.on_completion(packets[0])
        assert m.backlog == 2

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            MetricsCollector(warmup_us=-1.0)


class TestSummary:
    def make_summary(self, delays, duration=1000.0, warmup=0.0):
        m = MetricsCollector(warmup_us=warmup)
        for i, d in enumerate(delays):
            p = completed_packet(arrival=10.0 * i, start=10.0 * i,
                                 completion=10.0 * i + d, stream=i % 2)
            m.on_arrival(p)
            m.on_completion(p)
        return m.summarize(duration, (0.5, 0.7), offered_rate_pps=1000.0)

    def test_mean_delay(self):
        s = self.make_summary([10.0, 20.0, 30.0])
        assert s.mean_delay_us == pytest.approx(20.0)
        assert s.n_packets == 3

    def test_percentiles_ordered(self):
        s = self.make_summary(list(range(1, 101)))
        assert s.p50_delay_us <= s.p95_delay_us <= s.p99_delay_us

    def test_throughput(self):
        s = self.make_summary([10.0] * 5, duration=1000.0)
        # 5 packets in 1000 us -> 5e3 pps... 5 / 1000us * 1e6 = 5000 pps.
        assert s.throughput_pps == pytest.approx(5000.0)

    def test_per_stream_means(self):
        s = self.make_summary([10.0, 20.0, 10.0, 20.0])
        assert s.per_stream_mean_delay_us[0] == pytest.approx(10.0)
        assert s.per_stream_mean_delay_us[1] == pytest.approx(20.0)

    def test_utilization_mean(self):
        s = self.make_summary([10.0])
        assert s.mean_utilization == pytest.approx(0.6)

    def test_empty_summary_is_nan(self):
        m = MetricsCollector()
        s = m.summarize(1000.0, (0.0,), offered_rate_pps=10.0)
        assert s.n_packets == 0
        assert math.isnan(s.mean_delay_us)
        assert s.throughput_pps == 0.0

    def test_stability_heuristic(self):
        m = MetricsCollector()
        done = [completed_packet(i, i, i + 5) for i in range(100)]
        for p in done:
            m.on_arrival(p)
            m.on_completion(p)
        s = m.summarize(1000.0, (0.1,), 10.0)
        assert s.stable
        # Now a run where most packets never finished.
        m2 = MetricsCollector()
        for p in done:
            m2.on_arrival(p)
        for p in done[:10]:
            m2.on_completion(p)
        s2 = m2.summarize(1000.0, (0.1,), 10.0)
        assert s2.final_backlog == 90
        assert not s2.stable

    def test_row_keys(self):
        s = self.make_summary([10.0, 12.0])
        row = s.row()
        assert {"n_packets", "mean_delay_us", "throughput_pps"} <= set(row)

    def test_ci_contains_mean_for_iid(self):
        s = self.make_summary([10.0, 12.0, 14.0, 16.0] * 20)
        lo, hi = s.delay_ci_us
        assert lo <= s.mean_delay_us <= hi
