"""Tests for the closed-form queueing validation formulas."""

import pytest

from repro.analysis.mg1 import (
    erlang_c,
    md1_mean_delay,
    mg1_mean_delay,
    mm1_mean_delay,
    mmc_mean_delay,
)


class TestMM1:
    def test_known_value(self):
        # lambda=0.5, mu=1 -> W = 1/(1-0.5) = 2.
        assert mm1_mean_delay(0.5, 1.0) == pytest.approx(2.0)

    def test_blows_up_near_saturation(self):
        assert mm1_mean_delay(0.99, 1.0) > 50.0

    def test_stability_enforced(self):
        with pytest.raises(ValueError):
            mm1_mean_delay(1.0, 1.0)
        with pytest.raises(ValueError):
            mm1_mean_delay(2.0, 1.0)


class TestMD1:
    def test_known_value(self):
        # rho=0.5, s=1: W = 1 + 0.5/(2*0.5) = 1.5.
        assert md1_mean_delay(0.5, 1.0) == pytest.approx(1.5)

    def test_half_the_mm1_waiting(self):
        # M/D/1 waiting time is half of M/M/1's at equal rho.
        lam, mu = 0.8, 1.0
        wait_md1 = md1_mean_delay(lam, 1.0 / mu) - 1.0 / mu
        wait_mm1 = mm1_mean_delay(lam, mu) - 1.0 / mu
        assert wait_md1 == pytest.approx(wait_mm1 / 2.0)

    def test_zero_load(self):
        assert md1_mean_delay(0.0, 5.0) == pytest.approx(5.0)


class TestMG1:
    def test_reduces_to_md1_for_deterministic(self):
        s = 2.0
        assert mg1_mean_delay(0.3, s, s * s) == pytest.approx(md1_mean_delay(0.3, s))

    def test_reduces_to_mm1_for_exponential(self):
        # Exponential: E[S^2] = 2 E[S]^2.
        lam, mu = 0.6, 1.0
        assert mg1_mean_delay(lam, 1.0 / mu, 2.0 / mu**2) == pytest.approx(
            mm1_mean_delay(lam, mu)
        )

    def test_variance_inflates_delay(self):
        s = 1.0
        low = mg1_mean_delay(0.7, s, s * s)
        high = mg1_mean_delay(0.7, s, 4.0 * s * s)
        assert high > low

    def test_second_moment_validated(self):
        with pytest.raises(ValueError):
            mg1_mean_delay(0.1, 2.0, 1.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # C(1, a) = a for M/M/1.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_monotone_in_load(self):
        assert erlang_c(4, 3.5) > erlang_c(4, 1.0)

    def test_in_unit_interval(self):
        for a in (0.5, 2.0, 3.9):
            assert 0.0 <= erlang_c(4, a) <= 1.0

    def test_stability_enforced(self):
        with pytest.raises(ValueError):
            erlang_c(4, 4.0)
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)


class TestMMC:
    def test_reduces_to_mm1(self):
        assert mmc_mean_delay(0.5, 1.0, 1) == pytest.approx(mm1_mean_delay(0.5, 1.0))

    def test_pooling_beats_split_servers(self):
        # M/M/4 at rho=0.7 beats an M/M/1 at the same per-server load.
        mu = 1.0
        w4 = mmc_mean_delay(2.8, mu, 4)
        w1 = mmc_mean_delay(0.7, mu, 1)
        assert w4 < w1

    def test_approaches_service_time_at_light_load(self):
        assert mmc_mean_delay(0.01, 1.0, 8) == pytest.approx(1.0, rel=1e-3)
