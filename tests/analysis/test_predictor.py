"""Tests for the analytic delay predictor (vs simulation and structurally)."""

import math

import pytest

from repro.analysis.predictor import AnalyticPredictor, DelayPrediction
from repro.core.params import PAPER_COSTS, PlatformConfig
from repro.sim.system import SystemConfig, run_simulation
from repro.workloads.traffic import TrafficSpec


@pytest.fixture(scope="module")
def predictor():
    return AnalyticPredictor()


class TestStructure:
    def test_unsupported_policy(self, predictor):
        with pytest.raises(ValueError, match="supports"):
            predictor.predict("hybrid", 1_000.0, 8)

    def test_input_validation(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict("mru", 0.0, 8)
        with pytest.raises(ValueError):
            predictor.predict("mru", 1_000.0, 0)

    def test_queue_structures(self, predictor):
        wired = predictor.predict("wired-streams", 8_000.0, 8)
        shared = predictor.predict("fcfs", 8_000.0, 8)
        assert wired.queue_structure == "M/D/1 per processor"
        assert shared.queue_structure == "M/D/c shared"

    def test_overload_marked_unstable(self, predictor):
        p = predictor.predict("fcfs", 500_000.0, 8)
        assert not p.stable
        assert math.isinf(p.mean_delay_us)
        assert math.isinf(p.queueing_us)

    def test_delay_increases_with_rate(self, predictor):
        delays = [
            predictor.predict("ips-wired", r, 8).mean_delay_us
            for r in (4_000, 16_000, 32_000)
        ]
        assert delays == sorted(delays)

    def test_v0_reduces_service(self, predictor):
        loaded = predictor.predict("wired-streams", 8_000.0, 8, intensity=1.0)
        clean = predictor.predict("wired-streams", 8_000.0, 8, intensity=0.0)
        assert clean.service_us < loaded.service_us

    def test_ips_service_below_locking_wired(self, predictor):
        lk = predictor.predict("wired-streams", 16_000.0, 8)
        ips = predictor.predict("ips-wired", 16_000.0, 8)
        assert ips.service_us < lk.service_us

    def test_affinity_service_below_baseline(self, predictor):
        base = predictor.predict("fcfs", 8_000.0, 8)
        mru = predictor.predict("mru", 8_000.0, 8)
        assert mru.service_us < base.service_us


class TestAgreementWithSimulation:
    """Predictor within ~15 % of the simulator at moderate utilization
    (it is deliberately conservative near saturation)."""

    CASES = (
        ("wired-streams", "locking", "wired-streams"),
        ("ips-wired", "ips", "ips-wired"),
        ("fcfs", "locking", "fcfs"),
        ("mru", "locking", "mru"),
    )

    @pytest.mark.parametrize("policy,paradigm,sim_policy", CASES)
    def test_moderate_load_agreement(self, predictor, policy, paradigm,
                                     sim_policy):
        rate = 8_000.0
        prediction = predictor.predict(policy, rate, 8)
        cfg = SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(8, rate),
            paradigm=paradigm, policy=sim_policy,
            duration_us=600_000, warmup_us=100_000, seed=3,
        )
        simulated = run_simulation(cfg)
        assert prediction.mean_delay_us == pytest.approx(
            simulated.mean_delay_us, rel=0.15
        )
        assert prediction.service_us == pytest.approx(
            simulated.mean_exec_us, rel=0.12
        )

    def test_capacity_ordering_matches_e09(self, predictor):
        caps = {
            policy: predictor.capacity_pps(policy, 16)
            for policy in ("fcfs", "wired-streams", "ips-wired")
        }
        assert caps["ips-wired"] > caps["wired-streams"] > caps["fcfs"]

    def test_capacity_magnitude(self, predictor):
        # 8 CPUs at ~160-200 us/packet -> capacity in the tens of kpps.
        cap = predictor.capacity_pps("ips-wired", 16)
        assert 30_000 < cap < 70_000
