"""Tests for batch means, CIs, and warm-up procedures."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    batch_means,
    batch_means_ci,
    relative_half_width,
    suggest_warmup_index,
    welch_moving_average,
)


class TestBatchMeans:
    def test_splits_evenly(self):
        obs = np.arange(40, dtype=float)
        means = batch_means(obs, n_batches=4)
        assert len(means) == 4
        assert means[0] == pytest.approx(np.mean(np.arange(10)))

    def test_drops_remainder(self):
        obs = np.arange(43, dtype=float)
        means = batch_means(obs, n_batches=4)
        assert len(means) == 4
        # Remainder (3 obs) ignored: last batch is obs[30:40].
        assert means[-1] == pytest.approx(np.mean(np.arange(30, 40)))

    def test_short_series_clamps_batch_count(self):
        # 3 observations, 4 batches requested: clamp to 3 one-obs batches.
        means = batch_means(np.arange(3, dtype=float), n_batches=4)
        assert list(means) == [0.0, 1.0, 2.0]

    def test_two_observations_still_work(self):
        means = batch_means(np.array([1.0, 3.0]), n_batches=20)
        assert list(means) == [1.0, 3.0]

    def test_too_few_observations(self):
        with pytest.raises(ValueError, match="too few"):
            batch_means(np.array([5.0]), n_batches=4)

    def test_needs_two_batches(self):
        with pytest.raises(ValueError):
            batch_means(np.arange(10, dtype=float), n_batches=1)


class TestBatchMeansCI:
    def test_ci_contains_true_mean_iid(self, rng):
        obs = rng.normal(100.0, 10.0, size=10_000)
        lo, hi = batch_means_ci(obs, n_batches=20)
        assert lo < 100.0 < hi
        assert hi - lo < 2.0  # tight at n=10k

    def test_coverage_rate_near_nominal(self):
        # 95% CI should contain the mean in ~95% of replications.
        hits = 0
        n_rep = 200
        for k in range(n_rep):
            obs = np.random.default_rng(k).normal(5.0, 2.0, size=800)
            lo, hi = batch_means_ci(obs, n_batches=16)
            hits += lo <= 5.0 <= hi
        assert hits / n_rep > 0.88

    def test_degenerate_inputs(self):
        assert batch_means_ci(np.array([])) == (0.0, 0.0)
        assert batch_means_ci(np.array([3.0])) == (3.0, 3.0)
        lo, hi = batch_means_ci(np.full(100, 7.0))
        assert lo == hi == 7.0

    def test_small_sample_falls_back(self):
        obs = np.array([1.0, 2.0, 3.0, 4.0])
        lo, hi = batch_means_ci(obs, n_batches=20)
        assert lo < 2.5 < hi

    def test_never_nan_for_any_short_series(self):
        # Regression: series shorter than n_batches used to be able to
        # reach NaN through downstream consumers; the CI is now always a
        # finite interval.
        for n in range(0, 45):
            lo, hi = batch_means_ci(np.arange(n, dtype=float), n_batches=20)
            assert math.isfinite(lo) and math.isfinite(hi)
            assert lo <= hi

    def test_nonfinite_observations_dropped(self):
        obs = np.array([1.0, math.nan, math.inf, 2.0, -math.inf, 3.0])
        lo, hi = batch_means_ci(obs)
        assert math.isfinite(lo) and math.isfinite(hi)
        assert lo <= 2.0 <= hi  # estimated from the finite subset {1,2,3}
        # all-non-finite input degrades to the zero interval, not NaN
        assert batch_means_ci(np.array([math.nan, math.inf])) == (0.0, 0.0)


class TestRelativeHalfWidth:
    def test_decreases_with_sample_size(self, rng):
        small = relative_half_width(rng.normal(10, 2, 200))
        large = relative_half_width(rng.normal(10, 2, 20_000))
        assert large < small

    def test_empty_is_inf(self):
        assert relative_half_width(np.array([])) == math.inf

    def test_zero_mean_is_inf(self):
        assert relative_half_width(np.zeros(100)) == math.inf

    def test_nonfinite_series_is_inf_not_nan(self):
        # Saturated sweep points report inf delays; the stopping criterion
        # must degrade to "no precision" rather than NaN.
        assert relative_half_width(np.array([math.inf, math.inf])) == math.inf
        assert relative_half_width(np.full(10, math.nan)) == math.inf

    def test_short_series_is_finite(self):
        value = relative_half_width(np.array([9.0, 10.0, 11.0]), n_batches=20)
        assert math.isfinite(value) and value > 0.0


class TestWelch:
    def test_moving_average_smooths(self, rng):
        noisy = rng.normal(0, 1, 500) + 10.0
        smooth = welch_moving_average(noisy, window=20)
        assert smooth.std() < noisy.std()
        assert len(smooth) == len(noisy)

    def test_endpoint_windows_shrink(self):
        obs = np.arange(10, dtype=float)
        smooth = welch_moving_average(obs, window=3)
        assert smooth[0] == obs[0]  # window of size 1 at the edge
        assert smooth[-1] == obs[-1]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            welch_moving_average(np.arange(5.0), window=0)

    def test_warmup_index_detects_transient(self, rng):
        # Exponential transient decaying into a stationary level.
        n = 2000
        transient = 50.0 * np.exp(-np.arange(n) / 100.0)
        obs = 100.0 + transient + rng.normal(0, 1.0, n)
        idx = suggest_warmup_index(obs, window=25, tolerance=0.02)
        assert 100 < idx < 1200

    def test_warmup_index_stationary_series(self, rng):
        obs = 10.0 + rng.normal(0, 0.01, 500)
        assert suggest_warmup_index(obs) < 50

    def test_warmup_index_tiny_series(self):
        assert suggest_warmup_index(np.arange(5.0)) == 0
