"""Tests for independent replications and paired comparisons."""

import pytest

from repro.analysis.replications import paired_comparison, replicate
from repro.workloads.traffic import TrafficSpec

from ..conftest import fast_config


def small_config(**overrides):
    return fast_config(
        traffic=TrafficSpec.homogeneous_poisson(4, 8_000.0),
        duration_us=80_000, warmup_us=10_000, **overrides,
    )


class TestReplicate:
    def test_runs_requested_replications(self):
        r = replicate(small_config(), n_replications=3)
        assert r.n_replications == 3
        assert len(r.per_run_means) == 3

    def test_ci_contains_mean(self):
        r = replicate(small_config(), n_replications=4)
        assert r.ci_us[0] <= r.mean_delay_us <= r.ci_us[1]

    def test_different_seeds_give_different_means(self):
        r = replicate(small_config(), n_replications=3)
        assert len(set(r.per_run_means)) == 3

    def test_deterministic_given_base_seed(self):
        a = replicate(small_config(), n_replications=2, base_seed=77)
        b = replicate(small_config(), n_replications=2, base_seed=77)
        assert a.per_run_means == b.per_run_means

    def test_custom_metric(self):
        r = replicate(small_config(), n_replications=2,
                      metric=lambda s: s.mean_exec_us)
        assert all(150.0 < m < 300.0 for m in r.per_run_means)

    def test_relative_half_width(self):
        r = replicate(small_config(), n_replications=4)
        assert 0.0 <= r.relative_half_width < 1.0

    def test_single_replication_zero_width(self):
        r = replicate(small_config(), n_replications=1)
        assert r.half_width_us == 0.0

    def test_stability_flag(self):
        r = replicate(small_config(), n_replications=2)
        assert r.all_stable

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(small_config(), n_replications=0)


class TestPairedComparison:
    def test_affinity_significantly_better_than_baseline(self):
        cmp = paired_comparison(
            small_config(policy="fcfs"),
            small_config(policy="stream-mru"),
            n_replications=4,
        )
        # fcfs minus affinity: positive difference, CI excludes zero.
        assert cmp.mean_difference_us > 0
        assert cmp.significant

    def test_identical_configs_not_significant(self):
        cmp = paired_comparison(
            small_config(policy="mru"),
            small_config(policy="mru"),
            n_replications=3,
        )
        assert cmp.mean_difference_us == pytest.approx(0.0)
        assert not cmp.significant

    def test_pairing_uses_common_seeds(self):
        cmp = paired_comparison(
            small_config(policy="fcfs"),
            small_config(policy="mru"),
            n_replications=3, base_seed=55,
        )
        again = replicate(small_config(policy="fcfs"), n_replications=3,
                          base_seed=55)
        assert cmp.a.per_run_means == again.per_run_means
