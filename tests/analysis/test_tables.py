"""Tests for table/series rendering."""

import math

from repro.analysis.tables import format_kv, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "10" in lines[3]

    def test_title(self):
        out = format_table([{"x": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_missing_cells_dash(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in out.splitlines()[2]

    def test_column_selection_and_order(self):
        out = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = out.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_nan_and_bool_rendering(self):
        out = format_table([{"x": math.nan, "ok": True}])
        assert "nan" in out and "yes" in out

    def test_scientific_for_extremes(self):
        out = format_table([{"x": 1e9}], precision=2)
        assert "e+" in out

    def test_precision(self):
        out = format_table([{"x": 1.23456}], precision=4)
        assert "1.2346" in out


class TestFormatSeries:
    def test_aligns_x_with_series(self):
        out = format_series([1.0, 2.0], {"y": [10.0, 20.0]}, x_label="t")
        lines = out.splitlines()
        assert lines[0].startswith("t")
        assert "20" in lines[3]

    def test_short_series_padded(self):
        out = format_series([1.0, 2.0], {"y": [10.0]})
        assert "-" in out.splitlines()[-1]


class TestFormatKV:
    def test_alignment(self):
        out = format_kv({"short": 1, "a-much-longer-key": 2})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title_line(self):
        out = format_kv({"k": "v"}, title="Header")
        assert out.splitlines()[0] == "Header"

    def test_empty(self):
        assert format_kv({}) == ""
