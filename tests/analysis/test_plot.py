"""Tests for text plotting."""

import math

import pytest

from repro.analysis.plot import ascii_plot, sparkline


class TestSparkline:
    def test_monotone_series_monotone_blocks(self):
        s = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(s) == 4
        assert list(s) == sorted(s, key=lambda c: " ▁▂▃▄▅▆▇█".index(c))

    def test_constant_series(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(set(s)) == 1

    def test_nonfinite_rendered_as_dot(self):
        s = sparkline([1.0, math.inf, 2.0, None])
        assert s[1] == "·" and s[3] == "·"

    def test_all_nonfinite(self):
        assert sparkline([math.nan, math.inf]) == "··"


class TestAsciiPlot:
    def test_contains_marks_and_legend(self):
        out = ascii_plot([1, 2, 3], {"a": [10.0, 20.0, 30.0],
                                     "b": [30.0, 20.0, 10.0]})
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = ascii_plot([1, 2], {"y": [1.0, 2.0]}, x_label="rate",
                         y_label="delay")
        assert "(rate)" in out
        assert "delay:" in out

    def test_infinite_values_clipped_as_caret(self):
        out = ascii_plot([1, 2, 3], {"y": [1.0, 2.0, math.inf]})
        assert "^" in out

    def test_title_first_line(self):
        out = ascii_plot([1, 2], {"y": [1.0, 2.0]}, title="The Title")
        assert out.splitlines()[0] == "The Title"

    def test_log_x_marker(self):
        out = ascii_plot([10, 100, 1000], {"y": [1.0, 2.0, 3.0]}, logx=True)
        assert "log" in out

    def test_y_range_printed(self):
        out = ascii_plot([1, 2], {"y": [5.0, 15.0]})
        assert "15" in out and "5" in out

    def test_constant_series_centred(self):
        out = ascii_plot([1, 2, 3], {"y": [7.0, 7.0, 7.0]})
        assert "o" in out

    def test_empty_x(self):
        assert ascii_plot([], {"y": []}) == "(no data)"

    def test_no_finite_data(self):
        assert "(no finite data)" in ascii_plot([1], {"y": [math.inf]})

    def test_grid_size_validated(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"y": [1.0]}, width=4)

    def test_row_count_matches_height(self):
        out = ascii_plot([1, 2], {"y": [1.0, 2.0]}, height=10)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 10
