"""Runtime invariant checker: unit-level violations + clean integration runs."""

from __future__ import annotations

import pytest

from repro.runner.keys import config_key
from repro.sim.entities import Packet
from repro.sim.system import NetworkProcessingSystem, run_simulation
from repro.verify import InvariantChecker, InvariantViolation

from ..conftest import fast_config


def _packet(pid=0, arrival=100.0, start=110.0, lock_wait=2.0, exec_time=50.0):
    p = Packet(packet_id=pid, stream_id=0, arrival_us=arrival, size_bytes=512)
    p.service_start_us = start
    p.lock_wait_us = lock_wait
    p.exec_time_us = exec_time
    return p


# ----------------------------------------------------------------------
# Unit: each invariant fires on the exact contradiction it guards
# ----------------------------------------------------------------------
class TestUnitViolations:
    def test_clock_monotonicity(self):
        chk = InvariantChecker()
        chk.on_event(10.0)
        chk.on_event(10.0)  # equal times are fine (simultaneous events)
        with pytest.raises(InvariantViolation, match="clock went backwards"):
            chk.on_event(9.0)

    def test_arrival_stamp_mismatch(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="stamped arrival"):
            chk.on_arrival(_packet(arrival=100.0), now_us=101.0)

    def test_service_before_arrival(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="causality"):
            chk.on_service_start(0, _packet(arrival=100.0), now_us=99.0,
                                 lock_wait_us=0.0, exec_time_us=50.0)

    def test_negative_service_parts(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="negative or NaN"):
            chk.on_service_start(0, _packet(), now_us=110.0,
                                 lock_wait_us=-1.0, exec_time_us=50.0)

    def test_processor_double_booking(self):
        chk = InvariantChecker()
        chk.on_service_start(0, _packet(pid=1), now_us=110.0,
                             lock_wait_us=0.0, exec_time_us=50.0)
        with pytest.raises(InvariantViolation, match="still serving"):
            chk.on_service_start(0, _packet(pid=2, arrival=100.0),
                                 now_us=120.0, lock_wait_us=0.0,
                                 exec_time_us=10.0)

    def test_busy_interval_overlap(self):
        chk = InvariantChecker()
        p1 = _packet(pid=1, lock_wait=0.0)
        chk.on_arrival(p1, 100.0)
        chk.on_service_start(0, p1, now_us=110.0, lock_wait_us=0.0,
                             exec_time_us=50.0)  # busy until 160
        chk.on_completion(p1, 0, now_us=160.0)
        with pytest.raises(InvariantViolation, match="double-booked"):
            chk.on_service_start(0, _packet(pid=2), now_us=150.0,
                                 lock_wait_us=0.0, exec_time_us=10.0)

    def test_completion_of_wrong_packet(self):
        chk = InvariantChecker()
        other = _packet(pid=7)
        chk.on_arrival(other, 100.0)
        chk.on_service_start(0, _packet(pid=1), now_us=110.0,
                             lock_wait_us=2.0, exec_time_us=50.0)
        with pytest.raises(InvariantViolation, match="but was serving"):
            chk.on_completion(other, 0, now_us=162.0)

    def test_delay_less_than_exec_time(self):
        chk = InvariantChecker()
        p = _packet(arrival=100.0, start=100.0, lock_wait=0.0, exec_time=50.0)
        chk.on_arrival(p, 100.0)
        chk.on_service_start(0, p, now_us=100.0, lock_wait_us=0.0,
                             exec_time_us=50.0)
        # completion at 120 implies delay 20 < exec_time 50
        with pytest.raises(InvariantViolation, match="delay"):
            chk.on_completion(p, 0, now_us=120.0)

    def test_busy_span_decomposition(self):
        chk = InvariantChecker()
        p = _packet(arrival=100.0, start=110.0, lock_wait=2.0, exec_time=50.0)
        chk.on_arrival(p, 100.0)
        chk.on_service_start(0, p, now_us=110.0, lock_wait_us=2.0,
                             exec_time_us=50.0)
        with pytest.raises(InvariantViolation, match="busy span"):
            chk.on_completion(p, 0, now_us=170.0)  # span 60 != 52

    def test_lock_mutual_exclusion(self):
        chk = InvariantChecker()
        chk.on_lock_reservation(0, start_us=100.0, hold_us=10.0)
        chk.on_lock_reservation(0, start_us=110.0, hold_us=10.0)  # adjacent ok
        chk.on_lock_reservation(1, start_us=105.0, hold_us=10.0)  # other lock
        with pytest.raises(InvariantViolation, match="mutual exclusion"):
            chk.on_lock_reservation(0, start_us=115.0, hold_us=1.0)

    def test_conservation_negative_in_flight(self):
        chk = InvariantChecker()
        p = _packet(arrival=100.0, start=110.0, lock_wait=2.0, exec_time=50.0)
        chk.on_service_start(0, p, now_us=110.0, lock_wait_us=2.0,
                             exec_time_us=50.0)
        with pytest.raises(InvariantViolation, match="negative"):
            chk.on_completion(p, 0, now_us=162.0)  # never arrived

    def test_at_end_cross_check_against_metrics(self):
        class FakeMetrics:
            arrivals = 5
            completions = 3
            in_flight = 2

        class FakeProc:
            busy = False

        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="conservation"):
            chk.at_end(FakeMetrics(), dispatcher_queued=0, processors=[FakeProc()])

    def test_summary_counters(self):
        chk = InvariantChecker()
        p = _packet(arrival=0.0, start=0.0, lock_wait=0.0, exec_time=10.0)
        chk.on_arrival(p, 0.0)
        chk.on_service_start(0, p, 0.0, 0.0, 10.0)
        chk.on_completion(p, 0, 10.0)
        s = chk.summary()
        assert s["arrivals"] == s["completions"] == 1
        assert s["in_flight"] == 0
        assert s["checks"] >= 3


# ----------------------------------------------------------------------
# Integration: full simulations run clean under the checker
# ----------------------------------------------------------------------
@pytest.mark.parametrize("overrides", [
    dict(paradigm="locking", policy="mru"),
    dict(paradigm="locking", policy="fcfs", lock_granularity=3),
    dict(paradigm="ips", policy="ips-mru"),
    dict(paradigm="ips", policy="ips-wired"),
])
def test_simulations_satisfy_all_invariants(overrides):
    system = NetworkProcessingSystem(
        fast_config(check_invariants=True, **overrides))
    summary = system.run()
    assert summary.n_packets > 0
    # the checker demonstrably ran and accounted for every packet
    assert system.invariants.checks > summary.n_packets
    assert system.invariants.arrivals == system.metrics.arrivals
    assert system.invariants.in_flight == system.metrics.in_flight


def test_checker_absent_when_disabled():
    system = NetworkProcessingSystem(fast_config())
    assert system.invariants is None
    assert system.sim._on_event is None


def test_observability_flag_does_not_change_results_or_key():
    plain = fast_config()
    checked = plain.with_(check_invariants=True)
    assert run_simulation(plain) == run_simulation(checked)
    assert config_key(plain) == config_key(checked)


def test_tampered_metrics_detected_at_end():
    """Corrupt the metrics mid-run: the end-of-run cross-check must fire."""
    system = NetworkProcessingSystem(fast_config(check_invariants=True))
    system.metrics.arrivals += 1  # simulate a lost-update style bug
    with pytest.raises(InvariantViolation, match="arrivals"):
        system.run()
