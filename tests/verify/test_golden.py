"""Golden-result regression: record/check round-trips and drift detection.

Uses e01 (the protocol cost table — cheap to regenerate) against a tmp
directory; the checked-in goldens under ``tests/goldens/`` are exercised
end-to-end by the CI ``verify`` job (``repro verify check``).
"""

from __future__ import annotations

import json

import pytest

from repro.verify import golden


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One e01 golden recorded into a module-scoped tmp directory."""
    directory = tmp_path_factory.mktemp("goldens")
    written = golden.record(ids=["e01"], directory=directory)
    return directory, written


def test_record_writes_golden_and_manifest(recorded):
    directory, written = recorded
    assert golden.golden_path(directory, "e01").exists()
    assert (directory / "MANIFEST.json").exists()
    assert len(written) == 2
    entry = json.loads(golden.golden_path(directory, "e01").read_text())
    assert entry["experiment_id"] == "e01"
    assert entry["seed"] == 1 and entry["fast"] is True
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    assert manifest["goldens"]["e01"] == entry["sha256"]


def test_record_is_deterministic(recorded, tmp_path):
    directory, _ = recorded
    golden.record(ids=["e01"], directory=tmp_path)
    assert (golden.golden_path(tmp_path, "e01").read_bytes()
            == golden.golden_path(directory, "e01").read_bytes())


def test_check_passes_fresh_goldens(recorded):
    directory, _ = recorded
    report = golden.check(directory=directory)
    assert report.ok
    assert report.failed_ids == []
    assert "1/1 experiments ok" in report.format()


def test_check_detects_value_drift(recorded, tmp_path):
    """A perturbed numeric field fails with a readable report naming the
    experiment — the same failure mode as a changed timing constant."""
    directory, _ = recorded
    path = golden.golden_path(directory, "e01")
    entry = json.loads(path.read_text())

    def perturb(node):
        if isinstance(node, dict):
            for k, v in node.items():
                if isinstance(v, float) and v > 0:
                    node[k] = v * 1.05  # 5% drift: well past rtol=1e-3
                    return True
                if perturb(v):
                    return True
        if isinstance(node, list):
            return any(perturb(v) for v in node)
        return False

    assert perturb(entry["rows"])
    payload = {k: entry[k] for k in
               ("experiment_id", "seed", "fast", "rows", "meta", "meta_skipped")}
    entry["sha256"] = golden._payload_digest(payload)  # keep integrity valid
    drifted = tmp_path / "e01.json"
    drifted.write_text(json.dumps(entry))

    report = golden.check(ids=["e01"], directory=tmp_path)
    assert not report.ok
    assert report.failed_ids == ["e01"]
    text = report.format()
    assert "FAIL e01 [mismatch]" in text
    assert "relative error" in text
    assert "affected experiments: e01" in text


def test_check_detects_tampered_golden(recorded, tmp_path):
    directory, _ = recorded
    original = golden.golden_path(directory, "e01").read_text()
    tampered = tmp_path / "e01.json"
    tampered.write_text(original.replace(":", ";", 1))  # invalid JSON
    report = golden.check(ids=["e01"], directory=tmp_path)
    assert report.failed_ids == ["e01"]
    assert report.checks[0].status == "corrupt"

    # valid JSON whose content no longer matches its digest
    entry = json.loads(original)
    entry["seed"] = 999
    tampered.write_text(json.dumps(entry))
    report = golden.check(ids=["e01"], directory=tmp_path)
    assert report.checks[0].status == "corrupt"
    assert "digest mismatch" in report.checks[0].note


def test_check_reports_missing_golden(recorded):
    directory, _ = recorded
    report = golden.check(ids=["e01", "e02"], directory=directory)
    assert report.failed_ids == ["e02"]
    assert report.checks[1].status == "missing"


def test_check_empty_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="no goldens"):
        golden.check(directory=tmp_path)


def test_compare_semantics():
    out = []
    golden._compare("x", {"a": 1, "b": 1.0, "c": True, "s": "p"},
                    {"a": 1, "b": 1.0 + 1e-12, "c": True, "s": "p"},
                    rtol=1e-3, atol=1e-9, out=out)
    assert out == []  # bit-level / sub-tolerance diffs pass

    out = []
    golden._compare("x", {"n": 100.0}, {"n": 102.0}, 1e-3, 1e-9, out)
    assert len(out) == 1 and "relative error" in out[0].detail

    out = []
    golden._compare("x", {"i": 3}, {"i": 4}, 1e-3, 1e-9, out)
    assert len(out) == 1 and "integer" in out[0].detail

    out = []
    golden._compare("x", {"f": True}, {"f": False}, 1e-3, 1e-9, out)
    assert len(out) == 1 and "boolean" in out[0].detail

    out = []
    golden._compare("x", {"v": float("inf")}, {"v": 5.0}, 1e-3, 1e-9, out)
    assert len(out) == 1 and "non-finite" in out[0].detail

    out = []
    golden._compare("x", {"v": float("nan")}, {"v": float("nan")},
                    1e-3, 1e-9, out)
    assert out == []  # NaN marks the same empty-run state on both sides

    out = []
    golden._compare("x", {"a": 1}, {"b": 1}, 1e-3, 1e-9, out)
    details = {m.detail for m in out}
    assert details == {"field disappeared", "new field"}

    out = []
    golden._compare("x", [1, 2], [1, 2, 3], 1e-3, 1e-9, out)
    assert len(out) == 1 and "length" in out[0].detail


def test_checked_in_goldens_are_intact():
    """Integrity-only scan of the committed goldens (no re-simulation):
    every golden parses, matches its digest, and matches the manifest."""
    directory = golden.default_goldens_dir()
    paths = sorted(directory.glob("e*.json"))
    assert len(paths) >= 14, f"expected the e01..e14 goldens in {directory}"
    manifest = json.loads((directory / "MANIFEST.json").read_text())["goldens"]
    for path in paths:
        entry, error = golden._load_golden(path)
        assert entry is not None, f"{path.name}: {error}"
        assert manifest[path.stem] == entry["sha256"]


def test_every_registered_policy_appears_in_a_golden():
    """Coverage gate: each policy in the registries is pinned by at least
    one committed golden (E15's reordering table names the full registry
    in its ``policy`` column), so adding a policy without extending the
    golden suite fails here rather than going unregressed."""
    from repro.core.policies import IPS_POLICIES, LOCKING_POLICIES

    directory = golden.default_goldens_dir()
    covered = set()
    for path in sorted(directory.glob("e*.json")):
        entry, _error = golden._load_golden(path)
        assert entry is not None
        for row in entry["rows"]:
            value = row.get("policy")
            if isinstance(value, str):
                covered.add(value)
    registered = set(LOCKING_POLICIES) | {
        n for n in IPS_POLICIES if n != "ips-random"
    }
    missing = {
        name for name in registered
        if name not in covered
        and not any(name in label for label in covered)
    }
    assert not missing, f"policies with no golden coverage: {sorted(missing)}"
