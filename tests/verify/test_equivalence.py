"""Statistical equivalence of result sets across seeds."""

from __future__ import annotations

import math

import pytest

from repro.runner import ResultCache, SweepRunner
from repro.sim.metrics import MetricsCollector
from repro.verify.equivalence import (
    assert_equivalent,
    bit_identical,
    ci_overlap,
    compare_result_sets,
    replication_ci,
)

from ..conftest import fast_config

SEEDS_A = (11, 12, 13, 14)
SEEDS_B = (21, 22, 23, 24)


@pytest.fixture(scope="module")
def replications():
    """Two independent seed sets of the same config (module-cached)."""
    runner = SweepRunner(jobs=0, cache=None)
    cfg = fast_config()
    return (runner.run_seeds(cfg, SEEDS_A), runner.run_seeds(cfg, SEEDS_B))


def _nan_summary():
    return MetricsCollector(warmup_us=0.0).summarize(
        duration_us=1_000.0, utilization_per_proc=(0.0,), offered_rate_pps=0.0
    )


def test_ci_overlap_basics():
    assert ci_overlap((0.0, 2.0), (1.0, 3.0))
    assert not ci_overlap((0.0, 1.0), (2.0, 3.0))
    # zero-width intervals: overlap iff equal (the CRN case)
    assert ci_overlap((5.0, 5.0), (5.0, 5.0))
    assert not ci_overlap((5.0, 5.0), (6.0, 6.0))
    assert ci_overlap((0.0, 1.0), (1.5, 3.0), slack=0.5)


def test_replication_ci_is_finite_and_centered(replications):
    set_a, _ = replications
    lo, hi = replication_ci(set_a, "mean_delay_us")
    mean = sum(s.mean_delay_us for s in set_a) / len(set_a)
    assert math.isfinite(lo) and math.isfinite(hi)
    assert lo <= mean <= hi


def test_same_config_different_seeds_equivalent(replications):
    set_a, set_b = replications
    report = assert_equivalent(set_a, set_b, labels=("seeds-a", "seeds-b"))
    assert report.equivalent
    assert "EQUIVALENT" in report.format()


def test_behavioural_change_not_equivalent(replications):
    set_a, _ = replications
    # V = 139 us of fixed overhead shifts delays far outside any CI.
    runner = SweepRunner(jobs=0, cache=None)
    perturbed = runner.run_seeds(
        fast_config(fixed_overhead_us=139.0), SEEDS_B)
    report = compare_result_sets(set_a, perturbed)
    assert not report.equivalent
    failed = [c.metric for c in report.comparisons if not c.overlap]
    assert "mean_delay_us" in failed
    with pytest.raises(AssertionError, match="NOT equivalent"):
        assert_equivalent(set_a, perturbed)


def test_nan_means_equivalent_only_when_both_nan(replications):
    set_a, _ = replications
    nan_set = [_nan_summary(), _nan_summary()]
    assert compare_result_sets(nan_set, nan_set).equivalent
    assert not compare_result_sets(set_a, nan_set).equivalent


def test_empty_sets_rejected(replications):
    set_a, _ = replications
    with pytest.raises(ValueError, match="non-empty"):
        compare_result_sets(set_a, [])


def test_bit_identical(replications):
    set_a, set_b = replications
    runner = SweepRunner(jobs=0, cache=None)
    replay = runner.run_seeds(fast_config(), SEEDS_A)
    assert bit_identical(set_a, replay)
    assert not bit_identical(set_a, set_b)
    assert not bit_identical(set_a, set_a[:-1])


def test_parallel_and_cached_paths_equivalent(tmp_path, replications):
    """Parallel == serial and cached == fresh, both as bit-identity (the
    runner's contract) and as statistical equivalence (the robust check
    that would survive a benign float-order refactor)."""
    set_serial, _ = replications
    cache = ResultCache(tmp_path)
    parallel = SweepRunner(jobs=2, cache=cache).run_seeds(fast_config(), SEEDS_A)
    assert bit_identical(set_serial, parallel)
    assert_equivalent(set_serial, parallel, labels=("serial", "parallel"))
    cached = SweepRunner(jobs=0, cache=cache).run_seeds(fast_config(), SEEDS_A)
    assert bit_identical(parallel, cached)
    assert_equivalent(parallel, cached, labels=("fresh", "cached"))


def test_lazy_exports():
    import repro.verify as verify

    assert verify.assert_equivalent is assert_equivalent
    assert verify.compare_result_sets is compare_result_sets
    with pytest.raises(AttributeError):
        verify.no_such_attribute
