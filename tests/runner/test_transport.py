"""Unit tests for the distributed transports and the chaos wrapper.

The frame codec and spool are tested for exactness and tamper-loudness;
the TCP pair is exercised over loopback; the chaos wrapper is tested for
determinism (same plan, same faults) through a scripted in-memory inner
transport — no sleeping, no sockets, no timing dependence.
"""

import threading

import pytest

from repro.runner import FaultPlan
from repro.runner.backends.transport import (
    ChaosCoordinatorTransport,
    CoordinatorTransport,
    FileCoordinator,
    FileWorker,
    TcpCoordinator,
    TcpWorker,
    TransportError,
    decode_frames,
    encode_frame,
)


class TestFrameCodec:
    def test_round_trip(self):
        msgs = [("hello", "w0"), ("lease", 1, "akey", [1, 2], []),
                ("result", "w0", 1, [(True, "", "", 0.5)], "block", False)]
        buffer = bytearray()
        for m in msgs:
            buffer += encode_frame(m)
        assert decode_frames(buffer) == msgs
        assert buffer == bytearray()  # fully consumed

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(("beat", "w0", 3))
        buffer = bytearray(frame[:-4])
        assert decode_frames(buffer) == []
        assert len(buffer) == len(frame) - 4
        buffer += frame[-4:]
        assert decode_frames(buffer) == [("beat", "w0", 3)]

    def test_bad_magic_is_loud(self):
        buffer = bytearray(b"XXXX" + encode_frame(("hello", "w0"))[4:])
        with pytest.raises(TransportError, match="magic"):
            decode_frames(buffer)

    def test_wrong_version_is_loud(self):
        frame = bytearray(encode_frame(("hello", "w0")))
        frame[4] = 99  # version byte
        with pytest.raises(TransportError, match="version"):
            decode_frames(frame)

    def test_non_tuple_payload_is_loud(self):
        import pickle
        import struct

        payload = pickle.dumps(["not", "a", "tuple"])
        frame = struct.Struct(">4sBI").pack(b"RPRD", 1, len(payload)) + payload
        with pytest.raises(TransportError, match="tuple"):
            decode_frames(bytearray(frame))


class TestTcpPair:
    def test_hello_learns_route_and_round_trips(self):
        coord = TcpCoordinator()
        try:
            worker = TcpWorker(coord.address())
            try:
                worker.send(("hello", "w9"))
                messages = []
                for _ in range(50):
                    messages = coord.poll(0.1)
                    if messages:
                        break
                assert messages == [("hello", "w9")]
                assert coord.send("w9", ("lease", 1, "akey", [], []))
                got = None
                for _ in range(50):
                    got = worker.recv(0.1)
                    if got is not None:
                        break
                assert got == ("lease", 1, "akey", [], [])
            finally:
                worker.close()
        finally:
            coord.close()

    def test_send_without_route_reports_failure(self):
        coord = TcpCoordinator()
        try:
            assert coord.send("nobody", ("stop",)) is False
        finally:
            coord.close()

    def test_unreachable_coordinator_is_loud(self):
        with pytest.raises(TransportError, match="cannot reach"):
            TcpWorker("127.0.0.1:1")  # reserved port, nothing listens

    def test_worker_detects_closed_coordinator(self):
        coord = TcpCoordinator()
        worker = TcpWorker(coord.address())
        try:
            worker.send(("hello", "w0"))
            for _ in range(50):
                if coord.poll(0.1):
                    break
            coord.close()
            with pytest.raises(TransportError):
                for _ in range(100):
                    worker.recv(0.05)
        finally:
            worker.close()

    def test_large_frame_round_trips(self):
        # Several recv() buffers worth, so reassembly is exercised.
        coord = TcpCoordinator()
        worker = TcpWorker(coord.address())
        try:
            big = ("result", "w0", 1, [], "x" * 500_000, False)
            done = threading.Thread(target=worker.send, args=(big,))
            done.start()
            messages = []
            for _ in range(200):
                messages += coord.poll(0.05)
                if messages:
                    break
            done.join()
            assert messages == [big]
        finally:
            worker.close()
            coord.close()


class TestFileSpool:
    def test_round_trip_preserves_sender_fifo(self, tmp_path):
        coord = FileCoordinator(tmp_path)
        worker = FileWorker(tmp_path, "w0")
        worker.send(("hello", "w0"))
        worker.send(("beat", "w0", 1))
        assert coord.poll(0.2) == [("hello", "w0"), ("beat", "w0", 1)]
        assert coord.send("w0", ("stop",))
        assert worker.recv(0.2) == ("stop",)

    def test_empty_poll_returns_empty(self, tmp_path):
        assert FileCoordinator(tmp_path).poll(0.05) == []
        assert FileWorker(tmp_path, "w0").recv(0.05) is None

    def test_no_torn_messages_in_inbox(self, tmp_path):
        # Atomicity contract: only complete ``.msg`` files are visible;
        # staging leftovers are ignored by readers.
        coord = FileCoordinator(tmp_path)
        worker = FileWorker(tmp_path, "w0")
        (tmp_path / "to-coord").mkdir(exist_ok=True)
        (tmp_path / "to-coord" / "0000000000.w0.tmp").write_bytes(b"torn")
        worker.send(("hello", "w0"))
        assert coord.poll(0.2) == [("hello", "w0")]

    def test_address_is_the_spool_root(self, tmp_path):
        assert FileCoordinator(tmp_path).address() == str(tmp_path)


class _ScriptedInner(CoordinatorTransport):
    """Inner transport whose poll() returns pre-scripted batches and
    whose send() records — the chaos wrapper's test bench."""

    def __init__(self, batches):
        self.batches = list(batches)
        self.sent = []

    def poll(self, timeout_s):
        return self.batches.pop(0) if self.batches else []

    def send(self, worker_id, message):
        self.sent.append((worker_id, message))
        return True

    def address(self):
        return "scripted"

    def close(self):
        pass


def _chaos(plan, batches=()):
    return ChaosCoordinatorTransport(_ScriptedInner(batches), plan)


class TestChaosWrapper:
    def test_duplicate_doubles_inbound_and_outbound(self):
        plan = FaultPlan(seed=1, duplicate=1.0, max_faulty_attempts=None)
        chaos = _chaos(plan, [[("hello", "w0")]])
        assert chaos.poll(0.0) == [("hello", "w0"), ("hello", "w0")]
        chaos.send("w0", ("stop",))
        assert chaos._inner.sent == [("w0", ("stop",)), ("w0", ("stop",))]
        assert chaos.duplicated == 2

    def test_drop_returns_success_but_never_sends(self):
        plan = FaultPlan(seed=1, drop=1.0, max_faulty_attempts=None)
        chaos = _chaos(plan, [[("hello", "w0")]])
        assert chaos.poll(0.0) == []
        assert chaos.send("w0", ("stop",)) is True  # silent loss
        assert chaos._inner.sent == []
        assert chaos.dropped == 2

    def test_delay_holds_for_counted_polls(self):
        plan = FaultPlan(seed=1, delay=1.0, max_faulty_attempts=None,
                         delay_polls=3)
        chaos = _chaos(plan, [[("result", "w0", 1, [], "b", False)], [], [],
                              []])
        assert chaos.poll(0.0) == []          # captured
        assert chaos.pending() == 1
        assert chaos.poll(0.0) == []          # held (2 left)
        assert chaos.poll(0.0) == []          # held (1 left)
        released = chaos.poll(0.0)            # released
        assert released == [("result", "w0", 1, [], "b", False)]
        assert chaos.pending() == 0

    def test_partition_isolates_whole_windows_then_heals(self):
        plan = FaultPlan(seed=1, partition=1.0, max_faulty_attempts=1,
                         only_keys=("w0",), partition_window=2)
        chaos = _chaos(plan, [[("hello", "w0")], [("hello", "w0")],
                              [("hello", "w0")], [("hello", "w1")]])
        assert chaos.poll(0.0) == []          # window 1, message 1: lost
        assert chaos.poll(0.0) == []          # window 1, message 2: lost
        # Window 2 (> max_faulty_attempts): the partition healed.
        assert chaos.poll(0.0) == [("hello", "w0")]
        assert chaos.poll(0.0) == [("hello", "w1")]  # other workers untouched
        assert chaos.partitioned == 2

    def test_same_plan_same_faults(self):
        # Chaos is a pure function of (plan, traffic): two wrappers fed
        # identical traffic make identical decisions.
        traffic = [[("hello", "w0")], [("beat", "w0", 1)],
                   [("result", "w0", 1, [], "b", False)], [], [], []]
        plan = FaultPlan(seed=42, drop=0.4, delay=0.3, duplicate=0.3,
                         max_faulty_attempts=None, delay_polls=2)
        a = _chaos(plan, list(traffic))
        b = _chaos(plan, list(traffic))
        out_a = [a.poll(0.0) for _ in range(len(traffic))]
        out_b = [b.poll(0.0) for _ in range(len(traffic))]
        assert out_a == out_b
        assert (a.dropped, a.delayed, a.duplicated) == \
               (b.dropped, b.delayed, b.duplicated)

    def test_different_seed_different_faults(self):
        traffic = [[("hello", f"w{i}")] for i in range(8)]
        make = lambda seed: _chaos(  # noqa: E731
            FaultPlan(seed=seed, drop=0.5, max_faulty_attempts=None),
            list(traffic))
        a, b = make(1), make(2)
        out_a = [a.poll(0.0) for _ in range(len(traffic))]
        out_b = [b.poll(0.0) for _ in range(len(traffic))]
        assert out_a != out_b
