"""CheckpointJournal: identity, round-trip, torn-tail tolerance."""

import json

from repro.runner.checkpoint import CheckpointJournal, sweep_id
from repro.sim.system import run_simulation

from ..conftest import fast_config


def _summary(seed=1):
    return run_simulation(fast_config(seed=seed, duration_us=40_000.0,
                                      warmup_us=10_000.0))


class TestSweepId:
    def test_stable_and_order_sensitive(self):
        keys = ["a" * 64, "b" * 64]
        assert sweep_id(keys) == sweep_id(list(keys))
        assert sweep_id(keys) != sweep_id(keys[::-1])
        assert len(sweep_id(keys)) == 16

    def test_uncacheable_slots_hash_as_empty(self):
        assert sweep_id(["a", None]) == sweep_id(["a", ""])
        assert sweep_id(["a", None]) != sweep_id(["a"])


class TestJournalRoundTrip:
    def test_record_then_load(self, tmp_path):
        sid = sweep_id(["k1", "k2"])
        journal = CheckpointJournal(tmp_path / "j.jsonl", sweep=sid, total=2)
        journal.start(resume=False)
        s1, s2 = _summary(1), _summary(2)
        journal.record("k1", s1)
        journal.record("k2", s2)
        journal.sync()
        journal.close()
        assert journal.recorded == 2

        reader = CheckpointJournal(tmp_path / "j.jsonl", sweep=sid)
        assert reader.load() == {"k1": s1, "k2": s2}

    def test_resume_appends(self, tmp_path):
        sid = sweep_id(["k1", "k2"])
        journal = CheckpointJournal(tmp_path / "j.jsonl", sweep=sid)
        journal.start(resume=False)
        journal.record("k1", _summary(1))
        journal.close()

        appender = CheckpointJournal(tmp_path / "j.jsonl", sweep=sid)
        appender.start(resume=True)
        appender.record("k2", _summary(2))
        appender.close()
        assert sorted(appender.load()) == ["k1", "k2"]

    def test_record_after_close_is_noop(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", sweep="s")
        journal.start(resume=False)
        journal.close()
        journal.record("k", _summary())
        assert journal.recorded == 0
        assert not journal.is_open

    def test_delete_removes_file(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", sweep="s")
        journal.start(resume=False)
        journal.close()
        assert journal.exists()
        journal.delete()
        assert not journal.exists()
        journal.delete()  # idempotent


class TestJournalTolerance:
    def _journal_with_entries(self, tmp_path):
        sid = sweep_id(["k1", "k2"])
        journal = CheckpointJournal(tmp_path / "j.jsonl", sweep=sid)
        journal.start(resume=False)
        journal.record("k1", _summary(1))
        journal.record("k2", _summary(2))
        journal.close()
        return journal

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = self._journal_with_entries(tmp_path)
        blob = journal.path.read_text()
        # Truncate mid-way through the last line: k1 survives, k2 is lost.
        journal.path.write_text(blob[: blob.rindex('{"key":"k2"') + 20])
        assert sorted(journal.load()) == ["k1"]

    def test_malformed_middle_line_is_skipped(self, tmp_path):
        journal = self._journal_with_entries(tmp_path)
        lines = journal.path.read_text().splitlines()
        lines.insert(2, "not json at all")
        lines.insert(2, json.dumps(["a", "list"]))
        journal.path.write_text("\n".join(lines) + "\n")
        assert sorted(journal.load()) == ["k1", "k2"]

    def test_foreign_sweep_header_ignored_wholesale(self, tmp_path):
        self._journal_with_entries(tmp_path)
        other = CheckpointJournal(tmp_path / "j.jsonl", sweep="another-sweep")
        assert other.load() == {}

    def test_unknown_format_ignored_wholesale(self, tmp_path):
        journal = self._journal_with_entries(tmp_path)
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = 999
        lines[0] = json.dumps(header)
        journal.path.write_text("\n".join(lines) + "\n")
        assert journal.load() == {}

    def test_missing_file_loads_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "absent.jsonl", sweep="s")
        assert not journal.exists()
        assert journal.load() == {}

    def test_schema_drifted_summary_skipped(self, tmp_path):
        journal = self._journal_with_entries(tmp_path)
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[1])
        del entry["summary"]["delay_ci_us"]
        lines[1] = json.dumps(entry)
        journal.path.write_text("\n".join(lines) + "\n")
        assert sorted(journal.load()) == ["k2"]
