"""Tests for the cache key scheme (canonical config serialization)."""

import pytest

from repro.core.params import PlatformConfig, ProtocolCosts
from repro.core.policies import make_locking_policy
from repro.runner.keys import (
    UncacheableConfig,
    canonicalize,
    code_version,
    config_key,
)
from repro.workloads.sessions import SessionChurnSpec
from repro.workloads.traffic import FixedSize, TrafficSpec

from ..conftest import fast_config


class TestCanonicalize:
    def test_primitives_pass_through(self):
        for v in (None, True, 3, 2.5, "x"):
            assert canonicalize(v) == v

    def test_sequences_become_lists(self):
        assert canonicalize((1, 2, (3,))) == [1, 2, [3]]

    def test_dataclass_tagged_with_type(self):
        out = canonicalize(FixedSize(64))
        assert out["__type__"].endswith("FixedSize")
        assert out["size_bytes"] == 64

    def test_distinct_types_with_same_fields_do_not_collide(self):
        from repro.workloads.arrivals import DeterministicSpec, PoissonSpec
        a = canonicalize(PoissonSpec(100.0))
        b = canonicalize(DeterministicSpec(100.0))
        assert a != b

    def test_unserializable_rejected(self):
        with pytest.raises(UncacheableConfig):
            canonicalize(object())

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(UncacheableConfig):
            canonicalize({1: "x"})


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(fast_config()) == config_key(fast_config())

    def test_every_knob_changes_the_key(self):
        base = fast_config()
        variants = [
            base.with_(seed=99),
            base.with_(policy="fcfs"),
            base.with_(paradigm="ips", policy="ips-wired"),
            base.with_(duration_us=130_000.0),
            base.with_(nonprotocol_intensity=0.5),
            base.with_(traffic=TrafficSpec.homogeneous_poisson(4, 9_000.0)),
            base.with_(platform=PlatformConfig(n_processors=4)),
            base.with_(costs=ProtocolCosts(t_warm_us=151.0)),
            base.with_(lock_granularity=2),
            base.with_(churn=SessionChurnSpec(1.0, 1e5, 100.0)),
        ]
        keys = {config_key(v) for v in variants}
        assert config_key(base) not in keys
        assert len(keys) == len(variants)

    def test_policy_instances_are_uncacheable(self):
        cfg = fast_config(policy=make_locking_policy("mru"))
        with pytest.raises(UncacheableConfig):
            config_key(cfg)

    def test_key_embeds_code_version(self):
        # The key is a hex digest and changes with the code digest input.
        key = config_key(fast_config())
        assert len(key) == 64
        int(key, 16)  # hex
        assert len(code_version()) == 16
