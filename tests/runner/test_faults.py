"""Fault-plan determinism and the runner's failure paths.

The heavyweight end-to-end proofs (crashed-worker-retried,
hung-task-times-out, corrupted-cache-quarantined, interrupted-sweep-
resumes) live in the :func:`repro.runner.run_fault_suite` scenario
harness, exercised here and by ``repro faults`` in CI.  The unit tests
around it pin down the pieces: the injection function's purity, the
serial retry/timeout/fail-fast logic, and the structure of
:class:`SweepExecutionError`.
"""

import pytest

from repro.runner import (
    FAULT_KINDS,
    FaultPlan,
    SweepExecutionError,
    SweepRunner,
    run_fault_suite,
)
from repro.runner.keys import config_key
from repro.sim.system import run_simulation

from ..conftest import fast_config


def _tiny(**overrides):
    overrides.setdefault("duration_us", 40_000.0)
    overrides.setdefault("warmup_us", 10_000.0)
    return fast_config(**overrides)


class TestFaultPlanDeterminism:
    def test_decide_is_a_pure_function(self):
        plan = FaultPlan(seed=7, crash=0.5)
        draws = [plan.decide("crash", f"key{i}") for i in range(64)]
        assert draws == [plan.decide("crash", f"key{i}") for i in range(64)]
        assert any(draws) and not all(draws)  # rate 0.5 splits the keys

    def test_seed_changes_the_schedule(self):
        keys = [f"key{i}" for i in range(64)]
        a = FaultPlan(seed=1, error=0.5).affected("error", keys)
        b = FaultPlan(seed=2, error=0.5).affected("error", keys)
        assert a != b

    def test_rate_bounds(self):
        keys = [f"key{i}" for i in range(16)]
        never = FaultPlan(seed=1, hang=0.0)
        always = FaultPlan(seed=1, hang=1.0)
        assert never.affected("hang", keys) == []
        assert always.affected("hang", keys) == keys

    def test_max_faulty_attempts_bounds_injection(self):
        plan = FaultPlan(seed=1, error=1.0, max_faulty_attempts=2)
        assert plan.decide("error", "k", attempt=1)
        assert plan.decide("error", "k", attempt=2)
        assert not plan.decide("error", "k", attempt=3)
        permanent = FaultPlan(seed=1, error=1.0, max_faulty_attempts=None)
        assert permanent.decide("error", "k", attempt=99)

    def test_only_keys_restricts(self):
        plan = FaultPlan(seed=1, crash=1.0, only_keys=("a",))
        assert plan.decide("crash", "a")
        assert not plan.decide("crash", "b")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan().decide("meteor", "k")
        assert set(FAULT_KINDS) == {"crash", "hang", "error", "corrupt",
                                    "interrupt", "drop", "delay",
                                    "duplicate", "partition", "kill"}


class TestSerialFailurePaths:
    def test_transient_error_is_retried_to_success(self):
        configs = [_tiny(seed=s) for s in (1, 2)]
        reference = [run_simulation(c) for c in configs]
        plan = FaultPlan(seed=1, error=1.0, max_faulty_attempts=1)
        runner = SweepRunner(jobs=0, retries=1, backoff_base_s=0.0,
                             fault_plan=plan)
        assert runner.run_many(configs) == reference
        assert runner.stats.retries == 2
        assert runner.stats.failures == 0

    def test_permanent_error_exhausts_retries(self):
        configs = [_tiny(seed=s) for s in (1, 2)]
        keys = [config_key(c) for c in configs]
        plan = FaultPlan(seed=1, error=1.0, max_faulty_attempts=None,
                         only_keys=(keys[1],))
        runner = SweepRunner(jobs=0, retries=2, backoff_base_s=0.0,
                             fault_plan=plan)
        with pytest.raises(SweepExecutionError) as err:
            runner.run_many(configs)
        exc = err.value
        assert len(exc.failures) == 1
        report = exc.failures[0]
        assert report.index == 1
        assert report.key == keys[1]
        assert report.kind == "error"
        assert report.attempts == 3  # 1 + retries
        assert "injected failure" in report.error
        # The healthy task still completed before the error was raised.
        assert exc.results[0] == run_simulation(configs[0])
        assert exc.results[1] is None
        assert "failed permanently" in str(exc)

    def test_serial_timeout_reported(self):
        configs = [_tiny(seed=1)]
        plan = FaultPlan(seed=1, hang=1.0, max_faulty_attempts=None,
                         hang_s=30.0)
        runner = SweepRunner(jobs=0, timeout_s=0.3, retries=0,
                             fault_plan=plan)
        with pytest.raises(SweepExecutionError) as err:
            runner.run_many(configs)
        assert err.value.failures[0].kind == "timeout"
        assert runner.stats.timeouts == 1

    def test_fail_fast_skips_remaining_work(self):
        configs = [_tiny(seed=s) for s in (1, 2, 3)]
        keys = [config_key(c) for c in configs]
        plan = FaultPlan(seed=1, error=1.0, max_faulty_attempts=None,
                         only_keys=(keys[0],))
        runner = SweepRunner(jobs=0, retries=0, fail_fast=True,
                             fault_plan=plan)
        with pytest.raises(SweepExecutionError) as err:
            runner.run_many(configs)
        assert len(err.value.failures) == 1
        # Nothing after the failure was executed.
        assert runner.stats.executed == 0
        assert err.value.results[1] is None and err.value.results[2] is None

    def test_inline_crash_degrades_to_error(self):
        # A real os._exit in serial mode would kill the test process; the
        # plan must degrade it to a raised (and here retried) fault.
        configs = [_tiny(seed=1)]
        plan = FaultPlan(seed=1, crash=1.0, max_faulty_attempts=1)
        runner = SweepRunner(jobs=0, retries=1, backoff_base_s=0.0,
                             fault_plan=plan)
        assert runner.run_many(configs) == [run_simulation(configs[0])]
        assert runner.stats.retries == 1

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(timeout_s=0.0)


class TestInterruptCheckpoint:
    def test_interrupt_leaves_loadable_checkpoint(self, tmp_path):
        """KeyboardInterrupt mid-sweep flushes a journal that a resumed
        runner replays without recomputing (acceptance criterion:
        0 completed tasks recomputed)."""
        from repro.runner import CheckpointJournal, sweep_id

        configs = [_tiny(seed=s) for s in (1, 2, 3, 4)]
        keys = [config_key(c) for c in configs]
        plan = FaultPlan(seed=1, interrupt=1.0, max_faulty_attempts=None,
                         only_keys=(keys[2],))
        runner = SweepRunner(jobs=0, checkpoint_dir=tmp_path,
                             fault_plan=plan)
        with pytest.raises(KeyboardInterrupt):
            runner.run_many(configs)
        journal = CheckpointJournal(tmp_path / f"{sweep_id(keys)}.jsonl",
                                    sweep=sweep_id(keys))
        assert journal.exists()
        entries = journal.load()
        assert sorted(entries) == sorted(keys[:2])
        assert entries[keys[0]] == run_simulation(configs[0])

        resumed = SweepRunner(jobs=0, checkpoint_dir=tmp_path, resume=True)
        results = resumed.run_many(configs)
        assert results == [run_simulation(c) for c in configs]
        assert resumed.stats.resumed == 2
        assert resumed.stats.executed == 2
        # Clean completion deletes the journal.
        assert not journal.exists()


@pytest.mark.slow
class TestFaultSuite:
    @pytest.mark.parametrize("backend", ["pool", "warm"])
    def test_every_scenario_passes(self, tmp_path, backend):
        results = run_fault_suite(tmp_path, jobs=2, seed=1, backend=backend)
        expected = [
            "crash-retry-completes",
            "hang-times-out-not-deadlocked",
            "corrupt-entry-quarantined-and-recomputed",
            "interrupt-checkpoint-resume",
            "happy-path-bit-identical",
        ]
        if backend == "warm":
            expected += [
                "warm-crash-cold-respawn-bit-identical",
                "warm-hung-worker-queue-stolen",
            ]
        assert [r.name for r in results] == expected
        failed = [r for r in results if not r.ok]
        assert failed == [], "\n".join(f"{r.name}: {r.detail}" for r in failed)
