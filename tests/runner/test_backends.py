"""Unit tests for the sweep execution backends.

Covers the pieces the warm backend is built from — columnar transport
(exact round-trip), affinity keys and the MRU/steal scheduler, the
in-process chunk path with its model cache, options validation, the
backend factory — plus small end-to-end warm==serial checks.  The
heavyweight bit-identity contracts live in
``tests/properties/test_backend_determinism.py`` and the fault suite.
"""

import dataclasses

import pytest

from repro.core.exec_model import ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS
from repro.core.policies import (
    LOCKING_POLICIES,
    MRUPolicy,
    dynamic_policy_entries,
    make_locking_policy,
    merge_policy_entries,
)
from repro.runner import SweepRunner, use_runner
from repro.runner.affinity import (
    AffinityScheduler,
    QueuedTask,
    affinity_key,
    workload_family,
)
from repro.runner.backends import BACKEND_NAMES, WarmOptions, make_backend
from repro.runner.backends import warm as warm_mod
from repro.runner.backends.base import _WorkerTask
from repro.runner.backends.warm import (
    _MODEL_CACHE,
    _run_chunk,
    reset_warm_state,
)
from repro.runner.columnar import pack_block, unpack_block
from repro.sim.system import NetworkProcessingSystem, run_simulation

from ..conftest import fast_config


def _tiny(**overrides):
    overrides.setdefault("duration_us", 40_000.0)
    overrides.setdefault("warmup_us", 10_000.0)
    return fast_config(**overrides)


class _LateRegisteredMRU(MRUPolicy):
    """Stand-in for a policy an experiment registers at run time (like
    E11's ips-random).  Module level so it pickles by reference into a
    live worker."""

    name = "late-mru"


# ----------------------------------------------------------------------
# Columnar transport
# ----------------------------------------------------------------------
@pytest.fixture(params=["rows", "columnar"])
def _layout(request, monkeypatch):
    """Force each block layout in turn (the threshold normally picks)."""
    from repro.runner import columnar

    if request.param == "columnar":
        monkeypatch.setattr(columnar, "_COLUMNAR_MIN_ROWS", 1)
    return request.param


class TestColumnar:
    def test_round_trip_is_exact(self, _layout):
        summaries = [run_simulation(_tiny(seed=s)) for s in (1, 2, 3)]
        restored = unpack_block(pack_block(summaries))
        assert restored == summaries

    def test_layout_switches_at_threshold(self):
        block = pack_block([run_simulation(_tiny(seed=1))])
        assert "rows" in block          # small blocks ship as rows
        from repro.runner import columnar
        assert columnar._COLUMNAR_MIN_ROWS > 1

    def test_round_trip_restores_pure_python_types(self, _layout):
        s = unpack_block(pack_block([run_simulation(_tiny(seed=4))]))[0]
        assert type(s.n_packets) is int
        assert type(s.mean_delay_us) is float
        assert type(s.delay_ci_us) is tuple
        assert type(s.per_stream_mean_delay_us) is dict
        for k, v in s.per_stream_mean_delay_us.items():
            assert type(k) is int and type(v) is float
        for k, v in s.ooo_depth_counts.items():
            assert type(k) is int and type(v) is int

    def test_empty_block(self):
        assert unpack_block(pack_block([])) == []

    def test_empty_ragged_rows(self, _layout):
        base = run_simulation(_tiny(seed=5))
        hollow = dataclasses.replace(
            base,
            per_stream_mean_delay_us={},
            ooo_depth_counts={},
            per_stream_out_of_order={},
            per_stream_migrations={},
        )
        restored = unpack_block(pack_block([hollow, base]))
        assert restored == [hollow, base]

    def test_schema_drift_fails_loudly(self, monkeypatch):
        from repro.runner import columnar

        monkeypatch.setattr(columnar, "_INT_FIELDS", ("n_packets",))
        with pytest.raises(TypeError, match="schema drifted"):
            columnar._check_schema()


# ----------------------------------------------------------------------
# Affinity keys
# ----------------------------------------------------------------------
class TestAffinityKey:
    def test_per_run_knobs_do_not_fragment(self):
        # Seed, rate and horizon vary *within* a sweep: same key.
        a = affinity_key(_tiny(seed=1))
        assert a == affinity_key(_tiny(seed=2))
        assert a == affinity_key(_tiny(duration_us=80_000.0))

    def test_family_splits_on_structure(self):
        assert workload_family(_tiny()) != workload_family(_tiny(paradigm="ips"))
        assert affinity_key(_tiny()) != affinity_key(_tiny(paradigm="ips"))

    def test_uncacheable_config_falls_back_to_family(self):
        cfg = _tiny(policy=make_locking_policy("mru"))
        key = affinity_key(cfg)
        assert isinstance(key, str) and len(key) == 16
        # Same policy instance type -> same family-only key.
        assert key == affinity_key(_tiny(policy=make_locking_policy("mru")))


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def _tasks(key, indices, attempt=1):
    return [QueuedTask(i, attempt, key) for i in indices]


class TestAffinityScheduler:
    def test_single_key_splits_fair_share(self):
        sched = AffinityScheduler(2)
        sched.assign(_tasks("a", range(4)))
        assert [len(q) for q in sched.queues] == [2, 2]

    def test_mru_worker_preferred(self):
        sched = AffinityScheduler(2)
        sched.assign(_tasks("a", [0]) + _tasks("b", [1]))
        first = sched.next_chunk(0, 8)   # worker 0 now warm for its key
        warm_key = first[0].key
        sched.next_chunk(1, 8)
        before = sched.stats.routed_affine
        sched.assign(_tasks(warm_key, [2]))
        assert sched.stats.routed_affine == before + 1
        assert sched.queues[0][0].key == warm_key

    def test_chunks_are_single_key_runs(self):
        sched = AffinityScheduler(1)
        sched.assign(_tasks("a", [0, 1]) + _tasks("b", [2]))
        chunk = sched.next_chunk(0, 8)
        assert [t.key for t in chunk] == ["a", "a"]
        assert [t.key for t in sched.next_chunk(0, 8)] == ["b"]

    def test_idle_worker_steals_from_tail(self):
        sched = AffinityScheduler(2)
        # Force everything onto worker 0's queue, head run "a", tail run "b".
        sched.queues[0].extend(_tasks("a", [0, 1]) + _tasks("b", [2, 3]))
        stolen = sched.next_chunk(1, 8)
        assert [t.key for t in stolen] == ["b", "b"]
        assert [t.index for t in stolen] == [2, 3]       # order preserved
        assert [t.key for t in sched.queues[0]] == ["a", "a"]  # victim keeps head
        assert sched.stats.steals == 2
        assert sched.mru[1] == "b"

    def test_no_work_returns_empty(self):
        sched = AffinityScheduler(2)
        assert sched.next_chunk(0, 4) == []

    def test_drain_returns_batch_index_order(self):
        sched = AffinityScheduler(3)
        sched.assign(_tasks("a", [5, 1]) + _tasks("b", [3, 0]))
        drained = sched.drain()
        assert [t.index for t in drained] == [0, 1, 3, 5]
        assert sched.pending() == 0

    def test_scatter_round_robins(self):
        sched = AffinityScheduler(2, route="scatter")
        sched.assign(_tasks("a", range(4)))
        assert [t.index for t in sched.queues[0]] == [0, 2]
        assert [t.index for t in sched.queues[1]] == [1, 3]
        assert sched.stats.routed_affine == 0

    def test_push_requeues_retry(self):
        sched = AffinityScheduler(1)
        sched.push(QueuedTask(7, 2, "a"))
        assert sched.pending() == 1
        assert sched.queues[0][0].attempt == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AffinityScheduler(0)
        with pytest.raises(ValueError):
            AffinityScheduler(1, route="bogus")
        with pytest.raises(ValueError):
            AffinityScheduler(1).next_chunk(0, 0)


# ----------------------------------------------------------------------
# Worker-side chunk path (driven in-process)
# ----------------------------------------------------------------------
def _worker_task(cfg):
    return _WorkerTask(cfg, None, 1, None, None)


class TestWarmChunkPath:
    def test_chunk_matches_serial_and_caches_model(self):
        reset_warm_state()
        try:
            configs = [_tiny(seed=s) for s in (1, 2, 3)]
            akey = affinity_key(configs[0])
            meta, block, interrupted = _run_chunk(
                akey, tuple(_worker_task(c) for c in configs))
            assert not interrupted
            assert all(ok for ok, *_ in meta)
            assert unpack_block(block) == [run_simulation(c) for c in configs]
            assert list(_MODEL_CACHE) == [akey]
            model = _MODEL_CACHE[akey]
            _run_chunk(akey, (_worker_task(_tiny(seed=9)),))
            assert _MODEL_CACHE[akey] is model  # reused, not rebuilt
        finally:
            reset_warm_state()

    def test_mismatched_cache_entry_degrades_to_cold_build(self):
        # A wrong model under a key (routing bug by construction) must
        # produce a correct result anyway.
        reset_warm_state()
        try:
            cfg = _tiny(seed=6)
            akey = affinity_key(cfg)
            wrong = ExecutionTimeModel(
                dataclasses.replace(PAPER_COSTS, t_cold_us=PAPER_COSTS.t_cold_us * 2),
                PAPER_COMPOSITION, cfg.platform.hierarchy)
            _MODEL_CACHE[akey] = wrong
            _, block, _ = _run_chunk(akey, (_worker_task(cfg),))
            assert unpack_block(block) == [run_simulation(cfg)]
        finally:
            reset_warm_state()

    def test_model_cache_is_bounded(self):
        reset_warm_state()
        try:
            cfg = _tiny()
            for i in range(warm_mod._MODEL_CACHE_MAX + 3):
                warm_mod._model_for(f"key-{i}", cfg)
            assert len(_MODEL_CACHE) == warm_mod._MODEL_CACHE_MAX
            assert "key-0" not in _MODEL_CACHE  # FIFO eviction
        finally:
            reset_warm_state()

    def test_reset_clears_everything_in_ledger(self):
        warm_mod._model_for("k", _tiny())
        reset_warm_state()
        assert _MODEL_CACHE == {}


# ----------------------------------------------------------------------
# Factory / options / runner integration
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("serial", "pool", "warm", "distributed")

    def test_factory_builds_each(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name)
            assert backend.name == name
            backend.close()

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("threads")

    def test_runner_rejects_unknown(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=2, backend="threads")

    def test_warm_options_validation(self):
        with pytest.raises(ValueError):
            WarmOptions(chunk_tasks=0)
        with pytest.raises(ValueError):
            WarmOptions(route="spray")
        with pytest.raises(ValueError):
            WarmOptions(target_chunk_s=0.0)
        with pytest.raises(ValueError):
            WarmOptions(max_chunk_tasks=0)

    def test_jobs_label_names_backend(self):
        assert "backend=warm" in SweepRunner(jobs=2, backend="warm").jobs_label()
        assert "backend" not in SweepRunner(jobs=0).jobs_label()


class TestModelInjection:
    def test_matching_model_accepted(self):
        cfg = _tiny(seed=2)
        model = ExecutionTimeModel(cfg.costs, cfg.composition,
                                   cfg.platform.hierarchy)
        assert NetworkProcessingSystem(cfg, model=model).run() == \
            run_simulation(cfg)

    def test_mismatched_model_rejected(self):
        cfg = _tiny()
        wrong = ExecutionTimeModel(
            dataclasses.replace(PAPER_COSTS, dispatch_us=99.0),
            PAPER_COMPOSITION, cfg.platform.hierarchy)
        with pytest.raises(ValueError, match="different exec-model"):
            NetworkProcessingSystem(cfg, model=wrong)


@pytest.mark.slow
class TestWarmEndToEnd:
    def test_warm_matches_serial_and_counts_chunks(self):
        configs = [_tiny(seed=s) for s in range(1, 7)]
        serial = SweepRunner(jobs=0).run_many(configs)
        runner = SweepRunner(jobs=2, backend="warm",
                             warm_options=WarmOptions(chunk_tasks=2))
        try:
            assert runner.run_many(configs) == serial
            assert runner.stats.chunks >= 3
            assert "chunks" in runner.stats.summary_line(runner.jobs_label())
        finally:
            runner.close()

    def test_scatter_routing_cannot_change_results(self):
        configs = [_tiny(seed=s) for s in range(1, 5)]
        serial = SweepRunner(jobs=0).run_many(configs)
        with SweepRunner(jobs=2, backend="warm",
                         warm_options=WarmOptions(route="scatter")) as runner:
            assert runner.run_many(configs) == serial

    def test_workers_survive_across_batches_and_close_is_reusable(self):
        runner = SweepRunner(jobs=2, backend="warm")
        try:
            first = runner.run_many([_tiny(seed=1), _tiny(seed=2)])
            assert runner.run_many([_tiny(seed=1), _tiny(seed=2)]) == first
            runner.close()  # retire the fleet ...
            # ... and a later batch lazily respawns it.
            assert runner.run_many([_tiny(seed=1), _tiny(seed=2)]) == first
        finally:
            runner.close()

    def test_backends_used_via_default_runner(self):
        configs = [_tiny(seed=s) for s in (1, 2)]
        serial = SweepRunner(jobs=0).run_many(configs)
        with use_runner(SweepRunner(jobs=2, backend="warm")) as runner:
            assert runner.run_many(configs) == serial
            runner.close()


# ----------------------------------------------------------------------
# Runtime policy registrations must reach persistent workers
# ----------------------------------------------------------------------
class TestDynamicPolicyPropagation:
    def test_snapshot_excludes_builtins_and_merge_restores(self):
        builtin_names = {e[1] for e in dynamic_policy_entries()}
        assert "mru" not in builtin_names and "fcfs" not in builtin_names
        LOCKING_POLICIES["late-mru"] = _LateRegisteredMRU
        try:
            snap = dynamic_policy_entries()
            assert ("locking", "late-mru", _LateRegisteredMRU) in snap
            del LOCKING_POLICIES["late-mru"]
            merge_policy_entries(snap)
            assert LOCKING_POLICIES["late-mru"] is _LateRegisteredMRU
        finally:
            LOCKING_POLICIES.pop("late-mru", None)

    def test_unpicklable_factory_is_skipped_not_fatal(self):
        LOCKING_POLICIES["lambda-policy"] = lambda: MRUPolicy()
        try:
            assert "lambda-policy" not in {
                e[1] for e in dynamic_policy_entries()}
        finally:
            LOCKING_POLICIES.pop("lambda-policy", None)

    def test_policy_registered_after_spawn_reaches_live_workers(self):
        # The e11 regression: workers spawn on the first batch, the
        # parent registers a policy afterwards, and a later batch needs
        # it — a per-batch pool would fork fresh and inherit it, the
        # persistent fleet must learn it via the chunk protocol.
        LOCKING_POLICIES.pop("late-mru", None)
        runner = SweepRunner(jobs=2, backend="warm")
        try:
            runner.run_many([_tiny(seed=9)])          # fleet is now live
            LOCKING_POLICIES["late-mru"] = _LateRegisteredMRU
            configs = [_tiny(seed=s, policy="late-mru") for s in (1, 2)]
            serial = SweepRunner(jobs=0).run_many(configs)
            assert runner.run_many(configs) == serial
        finally:
            runner.close()
            LOCKING_POLICIES.pop("late-mru", None)
