"""SweepRunner behaviour: determinism, caching, dedup, default rebinding.

The determinism tests are the repository's contract that parallel
execution is *bit-identical* to serial — they run two real experiments
(e06 and e10, fast mode) under ``jobs=4`` and compare every row against
the serial reference.  They are the slowest tests in the suite after the
full-suite integration test.
"""

import pytest

from repro.experiments.base import run_experiment
from repro.runner import (
    ResultCache,
    SweepRunner,
    get_runner,
    set_runner,
    use_runner,
)
from repro.sim.system import run_simulation

from ..conftest import fast_config


def _tiny(**overrides):
    overrides.setdefault("duration_us", 40_000.0)
    overrides.setdefault("warmup_us", 10_000.0)
    return fast_config(**overrides)


class TestRunMany:
    def test_results_align_with_input_order(self):
        configs = [_tiny(seed=s) for s in (3, 1, 2)]
        runner = SweepRunner(jobs=0)
        expected = [run_simulation(c) for c in configs]
        assert runner.run_many(configs) == expected

    def test_empty_batch(self):
        runner = SweepRunner(jobs=0)
        assert runner.run_many([]) == []
        assert runner.stats.batches == 1
        assert runner.stats.simulations == 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=-1)

    def test_within_batch_dedup(self, tmp_path):
        runner = SweepRunner(jobs=0, cache=ResultCache(tmp_path))
        configs = [_tiny(seed=5), _tiny(seed=5), _tiny(seed=6)]
        results = runner.run_many(configs)
        assert results[0] == results[1]
        assert runner.stats.executed == 2
        assert runner.stats.deduplicated == 1

    def test_duplicate_keys_dedup_without_cache(self):
        # Content keys are computed whether or not a cache is attached,
        # so identical configs in one batch simulate once either way.
        runner = SweepRunner(jobs=0, cache=None)
        configs = [_tiny(seed=7), _tiny(seed=7), _tiny(seed=7)]
        results = runner.run_many(configs)
        assert results[0] == results[1] == results[2]
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 2

    def test_jobs_one_matches_serial_bitwise(self):
        configs = [_tiny(seed=s) for s in (1, 2, 3)]
        serial = SweepRunner(jobs=0).run_many(configs)
        assert SweepRunner(jobs=1).run_many(configs) == serial

    def test_uncacheable_configs_still_run(self, tmp_path):
        from repro.core.policies import make_locking_policy

        runner = SweepRunner(jobs=0, cache=ResultCache(tmp_path))
        cfg = _tiny(policy=make_locking_policy("mru"))
        results = runner.run_many([cfg, cfg])
        assert results[0] == results[1] == run_simulation(cfg)
        # Policy instances cannot be keyed, so nothing lands in the cache.
        assert len(runner.cache) == 0
        assert runner.stats.executed == 2


class TestCacheBehaviour:
    def test_second_run_is_all_hits(self, tmp_path):
        configs = [_tiny(seed=s) for s in (1, 2, 3)]
        first = SweepRunner(jobs=0, cache=ResultCache(tmp_path))
        cold = first.run_many(configs)
        assert first.stats.executed == 3

        second = SweepRunner(jobs=0, cache=ResultCache(tmp_path))
        warm = second.run_many(configs)
        assert warm == cold
        assert second.stats.cache_hits == 3
        assert second.stats.executed == 0

    def test_no_cache_bypasses(self, tmp_path):
        configs = [_tiny(seed=1)]
        SweepRunner(jobs=0, cache=ResultCache(tmp_path)).run_many(configs)

        uncached = SweepRunner(jobs=0, cache=None)
        uncached.run_many(configs)
        assert uncached.stats.cache_hits == 0
        assert uncached.stats.executed == 1

    def test_stats_summary_line(self, tmp_path):
        runner = SweepRunner(jobs=0, cache=ResultCache(tmp_path))
        runner.run_many([_tiny(seed=1)])
        runner.run_many([_tiny(seed=1)])
        line = runner.stats.summary_line(runner.jobs_label())
        assert "2 simulations" in line
        assert "1 cache hits" in line
        assert "1 executed" in line
        assert "jobs=0, cache on" in line


class TestDefaultRunner:
    def test_use_runner_restores_previous(self):
        before = get_runner()
        mine = SweepRunner(jobs=0)
        with use_runner(mine):
            assert get_runner() is mine
        assert get_runner() is before

    def test_set_runner_returns_previous(self):
        before = get_runner()
        mine = SweepRunner(jobs=0)
        try:
            assert set_runner(mine) is before
            assert get_runner() is mine
        finally:
            set_runner(before)


@pytest.mark.slow
class TestParallelDeterminism:
    """``jobs=4`` must reproduce serial output exactly (common random
    numbers: every grid point carries its own seed)."""

    @pytest.mark.parametrize("backend", ["pool", "warm"])
    @pytest.mark.parametrize("eid", ["e06", "e10"])
    def test_parallel_matches_serial(self, eid, backend):
        serial = run_experiment(eid, fast=True)
        runner = SweepRunner(jobs=4, backend=backend)
        with use_runner(runner):
            parallel = run_experiment(eid, fast=True)
        runner.close()
        assert parallel.rows == serial.rows
        assert parallel.text == serial.text

    def test_parallel_cache_round_trip(self, tmp_path):
        """A cached parallel run replays bit-identically from disk."""
        with use_runner(SweepRunner(jobs=4, cache=ResultCache(tmp_path))) as r:
            first = run_experiment("e06", fast=True)
            executed = r.stats.executed
            assert executed > 0
        with use_runner(SweepRunner(jobs=0, cache=ResultCache(tmp_path))) as r:
            replay = run_experiment("e06", fast=True)
            assert r.stats.executed == 0
            assert r.stats.cache_hits == r.stats.simulations
        assert replay.rows == first.rows
