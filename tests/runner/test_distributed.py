"""Tests for the distributed backend: options, commit gate, chaos twins.

The lease table and transports have their own unit files
(``test_lease.py``, ``test_transport.py``); the full chaos matrix runs
as ``repro faults --backend distributed``.  This file covers the pieces
in between: options validation and the backend factory, happy-path
bit-identity over both transports, the idempotent commit gate (duplicate
discard, mismatch quarantine + loud abort), the stale-result regression
from the issue (a partitioned-then-healed worker's late result for an
already-committed task is discarded, not double-counted), interrupt →
``repro sweep status`` → resume, and an externally launched
``repro sweep worker`` joining over the file spool.
"""

import dataclasses
import json

import pytest

from repro import cli
from repro.runner import (
    BACKEND_NAMES,
    DistributedOptions,
    FaultPlan,
    ResultCache,
    SweepRunner,
    make_backend,
)
from repro.runner.backends.base import BatchState
from repro.runner.backends.distributed import (
    TRANSPORT_NAMES,
    DistributedBackend,
)
from repro.runner.backends.warm import _mp_context
from repro.runner.faults import _grid_keys, _scenario_grid


def _serial(configs):
    return SweepRunner(jobs=0).run_many(configs)


def _opts(**overrides):
    overrides.setdefault("lease_timeout_s", 30.0)
    overrides.setdefault("idle_poll_s", 0.1)
    return DistributedOptions(**overrides)


# ----------------------------------------------------------------------
# Options / factory
# ----------------------------------------------------------------------
class TestOptions:
    def test_registered_backend(self):
        assert "distributed" in BACKEND_NAMES
        assert isinstance(make_backend("distributed"), DistributedBackend)
        assert TRANSPORT_NAMES == ("tcp", "file")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            DistributedOptions(transport="carrier-pigeon")

    @pytest.mark.parametrize("field,bad", [
        ("lease_timeout_s", 0.0),
        ("lease_tasks", 0),
        ("target_lease_s", -1.0),
        ("max_lease_tasks", 0),
        ("max_fleet_failures", -1),
        ("tick_s", 0.0),
        ("idle_poll_s", -0.5),
    ])
    def test_bad_tuning_rejected(self, field, bad):
        with pytest.raises(ValueError):
            DistributedOptions(**{field: bad})

    def test_options_cannot_be_mutated(self):
        opts = DistributedOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.transport = "file"


# ----------------------------------------------------------------------
# Happy path: bit-identity over both transports
# ----------------------------------------------------------------------
class TestHappyPath:
    def test_tcp_matches_serial(self):
        configs = _scenario_grid(4, seed=11)
        runner = SweepRunner(jobs=2, backend="distributed",
                             distributed_options=_opts())
        try:
            results = runner.run_many(configs)
        finally:
            runner.close()
        assert results == _serial(configs)
        assert runner.stats.leases >= 1
        assert runner.stats.failures == 0
        assert runner.stats.lease_expiries == 0

    def test_file_spool_matches_serial(self, tmp_path):
        configs = _scenario_grid(4, seed=12)
        runner = SweepRunner(
            jobs=2, backend="distributed",
            distributed_options=_opts(transport="file",
                                      spool_dir=str(tmp_path / "spool")))
        try:
            results = runner.run_many(configs)
        finally:
            runner.close()
        assert results == _serial(configs)
        assert runner.stats.failures == 0

    def test_fixed_single_task_leases_match_serial(self):
        configs = _scenario_grid(5, seed=13)
        runner = SweepRunner(jobs=2, backend="distributed",
                             distributed_options=_opts(lease_tasks=1))
        try:
            results = runner.run_many(configs)
        finally:
            runner.close()
        assert results == _serial(configs)
        # One task per lease: at least one lease per task executed.
        assert runner.stats.leases >= runner.stats.executed


# ----------------------------------------------------------------------
# The idempotent commit gate (pure units, no worker processes)
# ----------------------------------------------------------------------
def _gate_fixture(tmp_path, with_cache):
    configs = _scenario_grid(1, seed=21)
    summary = _serial(configs)[0]
    cache = ResultCache(tmp_path / "cache") if with_cache else None
    runner = SweepRunner(jobs=2, backend="distributed", cache=cache,
                         checkpoint_dir=None if with_cache
                         else tmp_path / "ckpt")
    backend = DistributedBackend(_opts())
    batch = BatchState([0], configs, [None], ["fk0"], [None], None, [])
    return runner, backend, batch, summary


class TestCommitGate:
    def test_first_write_wins_then_identical_duplicate_discarded(
            self, tmp_path):
        runner, backend, batch, summary = _gate_fixture(tmp_path, True)
        assert backend._commit(0, summary, runner, batch) is True
        assert batch.results[0] == summary
        assert runner.stats.executed == 1
        # Same bytes again: absorbed, counted, not recommitted.
        assert backend._commit(0, summary, runner, batch) is False
        assert runner.stats.dup_results == 1
        assert runner.stats.executed == 1

    def test_mismatch_quarantined_and_aborts(self, tmp_path, capsys):
        runner, backend, batch, summary = _gate_fixture(tmp_path, True)
        backend._commit(0, summary, runner, batch)
        divergent = dataclasses.replace(summary,
                                        n_packets=summary.n_packets + 1)
        with pytest.raises(RuntimeError, match="determinism contract"):
            backend._commit(0, divergent, runner, batch)
        # The committed result stands; the divergent payload is parked.
        assert batch.results[0] == summary
        parked = list(runner.cache.quarantine_dir.glob("mismatch-*.json"))
        assert len(parked) == 1
        payload = json.loads(parked[0].read_text())
        assert payload["task_index"] == 0
        assert payload["committed"] != payload["duplicate"]
        # `repro cache` surfaces the quarantine ledger, mismatches included.
        assert cli.main(["cache", "--cache-dir",
                         str(runner.cache.root)]) == 0
        out = capsys.readouterr().out
        assert "quarantined: 1 entries" in out
        assert str(runner.cache.quarantine_dir) in out

    def test_mismatch_without_cache_parks_next_to_checkpoints(
            self, tmp_path):
        runner, backend, batch, summary = _gate_fixture(tmp_path, False)
        backend._commit(0, summary, runner, batch)
        divergent = dataclasses.replace(summary,
                                        n_packets=summary.n_packets + 1)
        with pytest.raises(RuntimeError, match="quarantined at"):
            backend._commit(0, divergent, runner, batch)
        parked = list((tmp_path / "ckpt" / "quarantine").glob("*.json"))
        assert len(parked) == 1


# ----------------------------------------------------------------------
# Regression: a partitioned-then-healed worker's stale result for an
# already-committed task is discarded, not double-counted (issue item).
# ----------------------------------------------------------------------
class TestStaleResultRegression:
    def test_stale_result_discarded_not_double_counted(self):
        configs = _scenario_grid(4, seed=31)
        reference = _serial(configs)
        # Hold w0.1's first result frame past its lease budget — the
        # partitioned/slow-worker shape: the lease expires, the task
        # re-executes elsewhere and commits, then the held (now stale)
        # result finally lands and must byte-compare + discard.
        plan = FaultPlan(seed=31, delay=1.0, max_faulty_attempts=1,
                         only_keys=("w0.1|result",), delay_polls=40)
        runner = SweepRunner(
            jobs=2, backend="distributed", retries=2, backoff_base_s=0.0,
            fault_plan=plan,
            distributed_options=_opts(lease_timeout_s=0.5))
        try:
            results = runner.run_many(configs)
        finally:
            runner.close()
        assert results == reference
        assert runner.stats.lease_expiries >= 1
        assert runner.stats.dup_results + runner.stats.stale_results >= 1
        # Exactly one commit per task — the stale delivery added nothing.
        assert runner.stats.executed == len(configs)
        assert runner.stats.failures == 0


# ----------------------------------------------------------------------
# Interrupt → `repro sweep status` → resume
# ----------------------------------------------------------------------
class TestInterruptStatusResume:
    def test_interrupt_persists_state_status_reads_it_resume_finishes(
            self, tmp_path, capsys):
        configs = _scenario_grid(6, seed=41)
        reference = _serial(configs)
        keys = _grid_keys(configs)
        ckpt = tmp_path / "ckpt"
        plan = FaultPlan(seed=41, interrupt=1.0, max_faulty_attempts=None,
                         only_keys=(keys[3],))
        runner = SweepRunner(jobs=2, backend="distributed",
                             checkpoint_dir=ckpt, fault_plan=plan,
                             distributed_options=_opts())
        with pytest.raises(KeyboardInterrupt):
            try:
                runner.run_many(configs)
            finally:
                runner.close()
        capsys.readouterr()  # swallow the runner's resume hint
        journals = list(ckpt.glob("*.jsonl"))
        assert len(journals) == 1
        # The BaseException path force-writes the lease state file so
        # `repro sweep status` can show what was in flight.
        state = journals[0].with_name(journals[0].stem + ".state.json")
        assert state.is_file()
        assert json.loads(state.read_text())["backend"] == "distributed"

        assert cli.main(["sweep", "status",
                         "--checkpoint-dir", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert f"/{len(configs)} done" in out
        assert "distributed coordinator" in out

        # Prefix match selects the same journal, verbose form.
        assert cli.main(["sweep", "status", journals[0].stem[:6],
                         "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()

        resumed = SweepRunner(jobs=0, checkpoint_dir=ckpt, resume=True)
        results = resumed.run_many(configs)
        assert results == reference
        assert resumed.stats.resumed >= 1
        assert resumed.stats.resumed + resumed.stats.executed \
            == len(configs)
        # Clean completion deletes the journal — nothing left to resume.
        assert not list(ckpt.glob("*.jsonl"))

    def test_status_empty_dir_and_unknown_prefix(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert cli.main(["sweep", "status",
                         "--checkpoint-dir", str(empty)]) == 0
        assert "no checkpointed sweeps" in capsys.readouterr().out
        assert cli.main(["sweep", "status", "deadbeef",
                         "--checkpoint-dir", str(empty)]) == 1
        assert "no journal matching" in capsys.readouterr().err


# ----------------------------------------------------------------------
# External worker join (`repro sweep worker` over the file spool)
# ----------------------------------------------------------------------
def _join_spool(spool: str) -> None:
    """Child-process entrypoint: join the sweep exactly as a user would,
    through the CLI (module level so every mp start method can spawn it)."""
    raise SystemExit(cli.main([
        "sweep", "worker", "--transport", "file",
        "--address", spool, "--id", "ext0",
    ]))


class TestExternalWorker:
    def test_external_cli_worker_serves_the_whole_sweep(self, tmp_path):
        configs = _scenario_grid(4, seed=51)
        spool = tmp_path / "spool"
        worker = _mp_context().Process(target=_join_spool,
                                       args=(str(spool),), daemon=True)
        worker.start()
        try:
            runner = SweepRunner(
                jobs=2, backend="distributed",
                distributed_options=_opts(
                    transport="file", spool_dir=str(spool),
                    spawn_agents=False, tick_s=0.02))
            try:
                results = runner.run_many(configs)
            finally:
                runner.close()  # sends stop; the worker exits cleanly
            assert results == _serial(configs)
            assert runner.stats.failures == 0
            assert runner.stats.leases >= 1
            worker.join(timeout=30)
            assert worker.exitcode == 0
        finally:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)
