"""Unit tests for the lease table (distributed backend bookkeeping).

Everything here drives time through a fake clock — which is the point of
the RPR013 clock seam: lease expiry is pure arithmetic over injected
timestamps, so none of these tests sleeps.
"""

import pytest

from repro.runner.affinity import QueuedTask
from repro.runner.backends.lease import Lease, LeaseTable


class FakeClock:
    """A settable monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _tasks(*indices):
    return tuple(QueuedTask(i, 1, f"k{i}") for i in indices)


class TestLeaseTable:
    def test_grant_and_complete_retires(self):
        clock = FakeClock()
        table = LeaseTable(5.0, clock)
        lease = table.grant(1, "w0", _tasks(0, 1))
        assert table.active() == 1
        got, was_active = table.complete(1)
        assert got is lease and was_active
        assert table.active() == 0

    def test_duplicate_lease_id_rejected(self):
        table = LeaseTable(5.0, FakeClock())
        table.grant(1, "w0", _tasks(0))
        with pytest.raises(ValueError):
            table.grant(1, "w1", _tasks(1))
        table.complete(1)
        with pytest.raises(ValueError):  # retired ids stay burned too
            table.grant(1, "w1", _tasks(1))

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable(0.0, FakeClock())

    def test_expiry_is_clock_driven(self):
        clock = FakeClock()
        table = LeaseTable(2.0, clock)
        lease = table.grant(1, "w0", _tasks(0))
        clock.advance(1.9)
        assert table.expired() == []
        clock.advance(0.2)  # 2.1s since the grant's implicit first beat
        assert table.expired() == [lease]
        assert table.active() == 0

    def test_heartbeat_extends_the_lease(self):
        clock = FakeClock()
        table = LeaseTable(2.0, clock)
        table.grant(1, "w0", _tasks(0))
        for _ in range(5):
            clock.advance(1.5)
            assert table.heartbeat(1)
            assert table.expired() == []
        clock.advance(2.5)
        assert len(table.expired()) == 1

    def test_heartbeat_after_expiry_reports_stale(self):
        clock = FakeClock()
        table = LeaseTable(1.0, clock)
        table.grant(1, "w0", _tasks(0))
        clock.advance(2.0)
        table.expired()
        assert table.heartbeat(1) is False

    def test_stale_completion_still_addressable(self):
        # The whole reason retired leases are kept: a late result must be
        # matched to its tasks so it can flow through the commit gate.
        clock = FakeClock()
        table = LeaseTable(1.0, clock)
        granted = table.grant(1, "w0", _tasks(3, 4))
        clock.advance(5.0)
        table.expired()
        lease, was_active = table.complete(1)
        assert lease is granted and not was_active
        assert [t.index for t in lease.tasks] == [3, 4]

    def test_unknown_lease_id_returns_none(self):
        table = LeaseTable(1.0, FakeClock())
        assert table.complete(99) == (None, False)

    def test_release_worker_pops_only_that_workers_leases(self):
        table = LeaseTable(5.0, FakeClock())
        table.grant(1, "w0", _tasks(0))
        table.grant(2, "w1", _tasks(1))
        table.grant(3, "w0", _tasks(2))
        released = table.release_worker("w0")
        assert sorted(lease.lease_id for lease in released) == [1, 3]
        assert table.active() == 1
        assert table.lease_of("w1") is not None
        assert table.lease_of("w0") is None

    def test_release_all_empties_the_table(self):
        table = LeaseTable(5.0, FakeClock())
        table.grant(1, "w0", _tasks(0))
        table.grant(2, "w1", _tasks(1))
        assert len(table.release_all()) == 2
        assert table.active() == 0
        # ... but both are still addressable for stale deliveries.
        assert table.complete(2)[0] is not None

    def test_snapshot_reports_ages_from_the_injected_clock(self):
        clock = FakeClock()
        table = LeaseTable(60.0, clock)
        table.grant(7, "w1", _tasks(2, 5))
        clock.advance(3.0)
        table.heartbeat(7)
        clock.advance(1.0)
        (entry,) = table.snapshot()
        assert entry["lease"] == 7
        assert entry["worker"] == "w1"
        assert entry["tasks"] == [2, 5]
        assert entry["age_s"] == pytest.approx(4.0)
        assert entry["beat_age_s"] == pytest.approx(1.0)

    def test_lease_is_plain_data(self):
        lease = Lease(1, "w0", _tasks(0), 0.0, 0.0)
        assert lease.worker_id == "w0"
        assert lease.granted_at_s == 0.0
