"""Tests for the persistent on-disk result cache."""

import json

from repro.runner.cache import (
    ResultCache,
    default_cache_dir,
    summary_from_dict,
    summary_to_dict,
)
from repro.runner.keys import config_key
from repro.sim.system import run_simulation

from ..conftest import fast_config


def _tiny_summary():
    return run_simulation(fast_config(duration_us=40_000.0, warmup_us=10_000.0))


class TestSummaryRoundTrip:
    def test_round_trip_is_identity(self):
        summary = _tiny_summary()
        data = json.loads(json.dumps(summary_to_dict(summary)))
        assert summary_from_dict(data) == summary

    def test_tuples_and_int_keys_restored(self):
        summary = _tiny_summary()
        restored = summary_from_dict(json.loads(json.dumps(summary_to_dict(summary))))
        assert isinstance(restored.delay_ci_us, tuple)
        assert isinstance(restored.utilization_per_proc, tuple)
        assert all(isinstance(k, int) for k in restored.per_stream_mean_delay_us)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = _tiny_summary()
        key = config_key(fast_config())
        assert cache.get(key) is None
        cache.put(key, summary)
        assert cache.get(key) == summary
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.path_for(key) == tmp_path / "ab" / f"{key}.json"

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_unreadable_entry_is_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        # The evidence moved to quarantine/ rather than being destroyed.
        assert cache.quarantined_entries() == 1
        parked = list(cache.quarantine_dir.glob("*.json"))
        assert parked[0].read_text() == "{not json"
        assert cache.stats.errors == 1
        assert cache.stats.quarantined == 1
        # Quarantined files are not cache entries.
        assert len(cache) == 0

    def test_repeat_quarantine_gets_unique_names(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        for _ in range(3):
            path.write_text("{torn")
            assert cache.get(key) is None
        assert cache.quarantined_entries() == 3
        assert cache.clear_quarantine() == 3
        assert cache.quarantined_entries() == 0

    def test_non_object_json_entry_is_uniform_miss(self, tmp_path):
        # A JSON *list* parses fine but is not a valid entry: same path
        # as truncated JSON (errors counter + quarantine + miss).
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(["not", "an", "object"]))
        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert cache.quarantined_entries() == 1

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        assert cache.get(key) is None           # plain miss: no error
        cache.put(key, _tiny_summary())
        assert cache.get(key) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.errors == 0
        assert cache.stats.quarantined == 0

    def test_put_is_atomic_no_temp_debris(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        cache.put(key, _tiny_summary())
        shard = cache.path_for(key).parent
        assert [p.name for p in shard.iterdir()] == [f"{key}.json"]

    def test_truncated_entry_self_heals_as_miss(self, tmp_path):
        """Crash-mid-write simulation: a torn (truncated) entry file must
        read as a miss, be removed, and accept a clean re-write."""
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        summary = _tiny_summary()
        cache.put(key, summary)
        path = cache.path_for(key)
        blob = path.read_bytes()
        for cut in (0, 1, len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:cut])
            assert cache.get(key) is None        # torn entry is a miss...
            assert not path.exists()             # ...and is swept away
            cache.put(key, summary)              # next write self-heals
            assert cache.get(key) == summary

    def test_unknown_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(fast_config())
        cache.put(key, _tiny_summary())
        path = cache.path_for(key)
        data = json.loads(path.read_text())
        data["format"] = 999
        path.write_text(json.dumps(data))
        assert cache.get(key) is None

    def test_prune_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = _tiny_summary()
        for seed in (1, 2, 3):
            cache.put(config_key(fast_config(seed=seed)), summary)
        assert len(cache) == 3
        assert cache.prune() == 3
        assert len(cache) == 0

    def test_default_dir_env_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"
