"""Differential and metamorphic properties of the scheduling-policy zoo.

Three layers of evidence that the zoo policies (``flow-steer``,
``work-steal``, ``grouped``) are implemented correctly in *both* engines:

- **differential**: Hypothesis-driven deep-state equality of the fused
  batched engine against the scalar reference, across workload shapes
  (Poisson, deterministic, all-streams-tied), processor counts and policy
  parameters — the same bit-identity contract as
  ``test_batch_equivalence``, pointed at the policies whose fused loops
  carry per-processor queues;
- **metamorphic**: parameter limits where a zoo policy must degenerate
  into a paper policy decision for decision (``grouped`` with one group
  per processor == ``wired-streams``; ``flow-steer`` that never
  rebalances == ``wired-streams``), and configurations that cannot
  reorder (static wiring, a single processor) must report exactly zero
  reordering and zero migrations;
- **determinism**: identically-seeded runs are bit-identical even when
  executed by a parallel sweep runner, which is what makes the
  RNG draw-order contract (victim before thief) observable.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.params import PlatformConfig
from repro.runner import SweepRunner
from repro.sim import batch
from repro.sim.system import NetworkProcessingSystem, SystemConfig, run_simulation
from repro.workloads.arrivals import DeterministicSpec, PoissonSpec
from repro.workloads.traffic import FixedSize, TrafficSpec

from .test_batch_equivalence import _run_both, _system_state

# ----------------------------------------------------------------------
# Differential: batched == scalar, deep state, across the zoo
# ----------------------------------------------------------------------

_zoo_policy = st.one_of(
    st.builds(
        lambda t: ("flow-steer", {"rebalance_threshold": t}),
        st.integers(min_value=0, max_value=3),
    ),
    st.builds(
        lambda g: ("grouped", {"n_groups": g}),
        st.integers(min_value=1, max_value=8),
    ),
)


def _traffic(shape: str, n_streams: int, per_stream_pps: float) -> TrafficSpec:
    if shape == "poisson":
        specs = tuple(PoissonSpec(per_stream_pps) for _ in range(n_streams))
    elif shape == "staggered":
        specs = tuple(
            DeterministicSpec(per_stream_pps, phase_us=3.0 * i)
            for i in range(n_streams)
        )
    else:  # "tied": every stream arrives at identical float timestamps
        specs = tuple(
            DeterministicSpec(per_stream_pps, phase_us=5.0)
            for _ in range(n_streams)
        )
    return TrafficSpec(stream_specs=specs, size_model=FixedSize(1024))


@given(
    policy_kwargs=_zoo_policy,
    shape=st.sampled_from(["poisson", "staggered", "tied"]),
    n_procs=st.integers(min_value=1, max_value=6),
    n_streams=st.integers(min_value=1, max_value=6),
    rate=st.floats(min_value=500.0, max_value=14_000.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_zoo_batched_equals_scalar_deep_state(
    policy_kwargs, shape, n_procs, n_streams, rate, seed,
):
    policy, kwargs = policy_kwargs
    config = dict(
        platform=PlatformConfig(n_processors=n_procs),
        paradigm="locking", policy=policy, policy_kwargs=kwargs,
        traffic=_traffic(shape, n_streams, rate / n_streams),
        duration_us=50_000.0, warmup_us=5_000.0, seed=seed,
    )
    states = {}
    import os
    old = os.environ.get(batch.ENGINE_ENV)
    try:
        for mode in ("scalar", "batched"):
            os.environ[batch.ENGINE_ENV] = mode
            system = NetworkProcessingSystem(SystemConfig(**config))
            states[mode] = _system_state(system, system.run())
    finally:
        if old is None:
            os.environ.pop(batch.ENGINE_ENV, None)
        else:
            os.environ[batch.ENGINE_ENV] = old
    assert states["scalar"] == states["batched"]


@pytest.mark.parametrize("policy,kwargs", [
    ("flow-steer", {"rebalance_threshold": 0}),
    ("grouped", {"n_groups": 3}),
])
def test_zoo_saturated_batched_equals_scalar(policy, kwargs, monkeypatch):
    """Deep overload: exercises the fused loops' bulk-arrival sweep and
    the end-of-run per-processor queue fold."""
    states = _run_both(
        dict(paradigm="locking", policy=policy, policy_kwargs=kwargs,
             traffic=_traffic("staggered", 8, 11_000.0),
             duration_us=80_000.0, warmup_us=20_000.0, seed=5),
        monkeypatch,
    )
    assert states["scalar"] == states["batched"]


# ----------------------------------------------------------------------
# Metamorphic: degeneracies and impossibility results
# ----------------------------------------------------------------------

def _summary(policy, policy_kwargs=None, n_procs=4, seed=11, rate=36_000.0):
    config = SystemConfig(
        platform=PlatformConfig(n_processors=n_procs),
        paradigm="locking", policy=policy,
        policy_kwargs=policy_kwargs or {},
        traffic=_traffic("poisson", 8, rate / 8),
        duration_us=60_000.0, warmup_us=5_000.0, seed=seed,
    )
    return run_simulation(config)


class TestMetamorphicDegeneracies:
    def test_grouped_one_group_per_processor_is_wired(self):
        wired = _summary("wired-streams")
        grouped = _summary("grouped", {"n_groups": 4})
        assert grouped == wired  # bit-identical, not approximately

    def test_flow_steer_without_rebalance_is_wired(self):
        wired = _summary("wired-streams")
        steer = _summary("flow-steer", {"rebalance_threshold": 10**9})
        assert steer == wired

    def test_static_wiring_never_reorders(self):
        wired = _summary("wired-streams")
        assert wired.n_packets > 0
        assert wired.out_of_order_total == 0
        assert wired.migrations_total == 0
        assert wired.ooo_depth_counts == {}

    def test_aggressive_flow_steer_does_reorder(self):
        # The sanity complement: the zero above is meaningful because
        # the same workload under aggressive re-steering is nonzero.
        steer = _summary("flow-steer", {"rebalance_threshold": 0})
        assert steer.out_of_order_total > 0
        assert steer.migrations_total > 0

    @pytest.mark.parametrize("policy", ["flow-steer", "work-steal",
                                        "grouped", "mru", "fcfs"])
    def test_single_processor_cannot_reorder(self, policy):
        s = _summary(policy, n_procs=1, rate=8_000.0)
        assert s.n_packets > 0
        assert s.out_of_order_total == 0
        assert s.migrations_total == 0


# ----------------------------------------------------------------------
# Determinism under parallel execution
# ----------------------------------------------------------------------

class TestSeededDeterminism:
    def test_work_steal_bit_identical_across_parallel_workers(self):
        """Two identically-seeded work-stealing runs executed by a 4-way
        parallel sweep must be bit-identical (the victim-before-thief
        draw-order contract makes the RNG schedule reproducible)."""
        config = SystemConfig(
            platform=PlatformConfig(n_processors=4),
            paradigm="locking", policy="work-steal",
            traffic=_traffic("poisson", 2, 22_000.0),
            duration_us=60_000.0, warmup_us=5_000.0, seed=9,
        )
        runner = SweepRunner(jobs=4, cache=None)
        first, second = runner.run_many([config, config])
        assert first == second
        serial = run_simulation(config)
        assert first == serial

    @pytest.mark.parametrize("policy,kwargs", [
        ("flow-steer", {}), ("grouped", {}), ("work-steal", {}),
    ])
    def test_zoo_repeat_runs_identical(self, policy, kwargs):
        a = _summary(policy, kwargs)
        b = _summary(policy, kwargs)
        assert a == b
