"""Execution backends can never affect results — property-based contract.

The affinity machinery (MRU routing, fair-share splitting, idle stealing,
chunked dispatch, columnar transport, warm model reuse) exists purely for
wall-clock: every config carries its own seed, so *where* and *in what
grouping* a task runs must be invisible in the output.  Hypothesis drives
the adversarial levers — submission order, backend choice, routing mode
(including ``scatter``, which deliberately destroys affinity), and forced
chunk sizes — and demands bit-identity with the serial reference.

A separate deterministic case forces idle stealing (more workers than one
key's fair share leaves a worker with an empty queue, so its first
dispatch must steal) and checks the steal is observable in the counters
while the results stay untouched.
"""

from __future__ import annotations

import functools
from typing import List, Tuple

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.runner import SweepRunner, WarmOptions
from repro.sim.system import SystemConfig, run_simulation

from ..conftest import fast_config


def _cfg(**overrides) -> SystemConfig:
    overrides.setdefault("duration_us", 25_000.0)
    overrides.setdefault("warmup_us", 5_000.0)
    return fast_config(**overrides)


#: Two workload families (distinct affinity keys) interleaved, so routing
#: has real grouping decisions to make.
@functools.lru_cache(maxsize=1)
def _grid() -> Tuple[SystemConfig, ...]:
    out: List[SystemConfig] = []
    for seed in (1, 2, 3):
        out.append(_cfg(seed=seed))
        out.append(_cfg(seed=seed, paradigm="ips", policy="ips-mru"))
    return tuple(out)


@functools.lru_cache(maxsize=1)
def _reference() -> Tuple[object, ...]:
    return tuple(run_simulation(c) for c in _grid())


@pytest.mark.slow
class TestBackendBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        order=st.permutations(range(6)),
        backend=st.sampled_from(["pool", "warm"]),
        route=st.sampled_from(["affinity", "scatter"]),
        chunk=st.sampled_from([None, 1, 3]),
    )
    def test_order_backend_routing_chunking_invisible(
            self, order, backend, route, chunk):
        grid, ref = _grid(), _reference()
        runner = SweepRunner(
            jobs=2, backend=backend,
            warm_options=WarmOptions(route=route, chunk_tasks=chunk))
        try:
            got = runner.run_many([grid[i] for i in order])
        finally:
            runner.close()
        assert got == [ref[i] for i in order]

    def test_forced_steal_is_counted_and_invisible(self):
        # One affinity key, 5 tasks, 4 workers: fair share is 2, so at
        # least one worker starts with an empty queue and its first
        # dispatch must steal from a peer's tail.
        configs = [_cfg(seed=s) for s in (1, 2, 3, 4, 5)]
        serial = SweepRunner(jobs=0).run_many(configs)
        runner = SweepRunner(jobs=4, backend="warm",
                             warm_options=WarmOptions(chunk_tasks=1))
        try:
            assert runner.run_many(configs) == serial
            assert runner.stats.steals >= 1
        finally:
            runner.close()

    def test_serial_backend_is_the_reference(self):
        # jobs<=1 always routes through the serial backend, whatever the
        # configured backend name says.
        grid, ref = _grid(), _reference()
        runner = SweepRunner(jobs=1, backend="warm")
        assert runner.run_many(list(grid)) == list(ref)
        assert runner.stats.chunks == 0
