"""Property-based tests (Hypothesis) for the cache/execution-time models.

These pin down the *shape* guarantees the analytic models must satisfy for
every input, not just the grid points the experiments visit:

- flush fractions are probabilities and displacement only grows with more
  intervening work (survival ``1 - F`` only shrinks);
- the footprint ``u(R; L)`` is monotone in ``R`` and grows sub-linearly
  (never faster than the reference count itself);
- packet execution times always land in ``[t_warm, t_cold]``.

Note the paper's ``F(x)`` is the fraction *flushed*: it is non-decreasing
in intervening time/references, equivalently the surviving fraction is
non-increasing.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.flush import flushed_fraction, survival_fraction
from repro.cache.footprint import mvs_footprint
from repro.cache.hierarchy import sgi_challenge_hierarchy
from repro.core.exec_model import ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS

MODEL = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION,
                           sgi_challenge_hierarchy())
FOOTPRINT = mvs_footprint()

lines = st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)
refs = st.floats(min_value=0.0, max_value=1e10,
                 allow_nan=False, allow_infinity=False)
idle = st.floats(min_value=0.0, max_value=1e9,
                 allow_nan=False, allow_infinity=False)
geometry = st.tuples(st.sampled_from([64, 512, 4096, 16384]),  # sets
                     st.sampled_from([1, 2, 4]))               # associativity


@settings(max_examples=100, deadline=None)
@given(lines, lines, geometry)
def test_flushed_fraction_is_probability_and_monotone(n1, n2, geo):
    n_sets, assoc = geo
    lo, hi = sorted((n1, n2))
    f_lo = float(flushed_fraction(lo, n_sets, assoc))
    f_hi = float(flushed_fraction(hi, n_sets, assoc))
    for f in (f_lo, f_hi):
        assert 0.0 <= f <= 1.0
    assert f_lo <= f_hi + 1e-12           # flushed fraction non-decreasing
    s_lo = float(survival_fraction(lo, n_sets, assoc))
    s_hi = float(survival_fraction(hi, n_sets, assoc))
    assert s_hi <= s_lo + 1e-12           # survival non-increasing
    assert abs((f_lo + s_lo) - 1.0) <= 1e-9


@settings(max_examples=100, deadline=None)
@given(refs, refs, st.sampled_from([16.0, 32.0, 64.0, 128.0]))
def test_model_flush_fractions_monotone_in_intervening_refs(r1, r2, _L):
    lo, hi = sorted((r1, r2))
    f1_lo, f2_lo = MODEL.flush_fractions(float(lo))
    f1_hi, f2_hi = MODEL.flush_fractions(float(hi))
    for f in (f1_lo, f2_lo, f1_hi, f2_hi):
        assert 0.0 <= f <= 1.0
    assert f1_lo <= f1_hi + 1e-12
    assert f2_lo <= f2_hi + 1e-12


@settings(max_examples=100, deadline=None)
@given(refs, refs, st.sampled_from([16.0, 32.0, 64.0, 128.0]))
def test_footprint_monotone_with_sublinear_growth(r1, r2, L):
    lo, hi = sorted((r1, r2))
    u_lo = FOOTPRINT.unique_lines(lo, L)
    u_hi = FOOTPRINT.unique_lines(hi, L)
    assert 0.0 <= u_lo <= lo * (1 + 1e-12)   # a footprint never exceeds R
    assert u_lo <= u_hi * (1 + 1e-12)        # monotone in R
    if u_lo > 0.0:
        # Sub-linear growth: u grows no faster than R itself (power law
        # with exponent <= 1, linear below one reference).
        assert u_hi / u_lo <= hi / lo * (1 + 1e-9)


@settings(max_examples=100, deadline=None)
@given(idle, idle, st.sampled_from([0.25, 1.0, 2.0]))
def test_execution_time_bounded_and_monotone_in_idle(x1, x2, intensity):
    lo, hi = sorted((x1, x2))
    t_lo = float(MODEL.execution_time_after_idle(lo, intensity))
    t_hi = float(MODEL.execution_time_after_idle(hi, intensity))
    eps = 1e-9 * PAPER_COSTS.t_cold_us
    for t in (t_lo, t_hi):
        assert PAPER_COSTS.t_warm_us - eps <= t <= PAPER_COSTS.t_cold_us + eps
    assert t_lo <= t_hi + eps               # more displacement, never faster
    assert float(MODEL.execution_time_after_idle(0.0, intensity)) == \
        PAPER_COSTS.t_warm_us               # t(0) = t_warm exactly


def test_execution_time_limits_vectorized():
    x = np.logspace(-1, 9, 200)
    t = MODEL.execution_time_after_idle(x, 1.0)
    assert np.all(np.diff(t) >= -1e-9)
    assert np.all(t >= PAPER_COSTS.t_warm_us - 1e-9)
    assert np.all(t <= PAPER_COSTS.t_cold_us + 1e-9)
    # full displacement approaches t_cold
    assert t[-1] > PAPER_COSTS.t_cold_us - 1.0
