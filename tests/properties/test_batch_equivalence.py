"""Property tests: the batched execution paths equal the scalar ones.

Three layers, matching the batching architecture (``docs/PERFORMANCE.md``):

- model: ``component_penalty_us_batch`` vs per-state scalar calls,
- engine: ``run_until_batched`` vs ``run_until`` (including
  same-timestamp runs and callbacks that schedule at the current time),
- system: full runs under ``REPRO_ENGINE=batched`` vs ``scalar``,
  compared on summaries, metrics columns, queue/backlog state and model
  counters — over randomized workloads and over an adversarial
  all-streams-tied deterministic workload that forces the exact
  cross-stream-tie merge fallback (``_merge_with_push_order``).

Equality is asserted exactly (``==``, no tolerance): the batched engine's
contract is bit-identity, not approximation.
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cache.hierarchy import sgi_challenge_hierarchy
from repro.core.exec_model import COLD, ComponentState, ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS
from repro.sim import batch
from repro.sim.engine import Simulator
from repro.sim.system import NetworkProcessingSystem, SystemConfig
from repro.workloads.arrivals import DeterministicSpec, PoissonSpec
from repro.workloads.traffic import FixedSize, TrafficSpec

# ----------------------------------------------------------------------
# Model layer
# ----------------------------------------------------------------------

#: Module-level model (function-scoped fixtures are not reset between
#: hypothesis examples; the model's caches are part of the contract).
_MODEL = ExecutionTimeModel(
    PAPER_COSTS, PAPER_COMPOSITION, sgi_challenge_hierarchy()
)

_refs = st.one_of(
    st.just(0.0),
    st.just(COLD),
    st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
)

_states = st.builds(
    ComponentState,
    code_refs=_refs,
    stream_refs=_refs,
    thread_refs=_refs,
    shared_invalidated=st.booleans(),
)


class TestPenaltyBatchEqualsScalar:
    @given(states=st.lists(_states, min_size=1, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_batch_matches_scalar_bitwise(self, states):
        scalar = [_MODEL.component_penalty_us(s) for s in states]
        batched = _MODEL.component_penalty_us_batch(states)
        assert batched.shape == (len(states),)
        for got, want in zip(batched.tolist(), scalar):
            assert got == want  # exact: no tolerance

    @given(states=st.lists(_states, min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_exec_times_batch_matches_scalar(self, states):
        code = np.array([s.code_refs for s in states])
        stream = np.array([s.stream_refs for s in states])
        thread = np.array([s.thread_refs for s in states])
        shared = np.array([s.shared_invalidated for s in states])
        batched = _MODEL.exec_times_batch(
            code, stream, thread, shared, locking=True, extra_us=1.5,
        )
        for i, s in enumerate(states):
            want = _MODEL.execution_time_us(s, locking=True, extra_us=1.5)
            assert batched[i] == want


# ----------------------------------------------------------------------
# Engine layer
# ----------------------------------------------------------------------

_times = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=40,
)


def _run_logged(method_name, times, horizon, chain_at_same_time):
    """Schedule one logging callback per time; run; return observables.

    When ``chain_at_same_time`` is set, every fired event schedules one
    follow-up at the *current* timestamp (delay 0) the first time it
    fires, exercising the batched loop's same-timestamp peek pickup.
    """
    sim = Simulator()
    log = []

    def make_cb(tag):
        fired = [False]

        def cb():
            log.append((sim.now, tag))
            if chain_at_same_time and not fired[0]:
                fired[0] = True
                sim.schedule(0.0, lambda: log.append((sim.now, tag, "chain")))

        return cb

    for i, t in enumerate(times):
        sim.at(t, make_cb(i))
    getattr(sim, method_name)(horizon)
    return log, sim.now, sim.events_processed, sim.pending


class TestRunUntilBatchedEqualsRunUntil:
    @given(times=_times, chain=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_same_order_clock_and_counts(self, times, chain):
        horizon = 50.0
        scalar = _run_logged("run_until", times, horizon, chain)
        batched = _run_logged("run_until_batched", times, horizon, chain)
        assert scalar == batched

    @given(
        base=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        dup=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_timestamp_ties_fire_in_schedule_order(self, base, dup):
        # All events share one exact float timestamp: the batched loop
        # must drain them as one run, in scheduling (seq) order.
        times = [base] * dup
        scalar = _run_logged("run_until", times, base + 1.0, False)
        batched = _run_logged("run_until_batched", times, base + 1.0, False)
        assert scalar == batched
        log = batched[0]
        assert [tag for (_t, tag) in log] == list(range(dup))


# ----------------------------------------------------------------------
# System layer
# ----------------------------------------------------------------------

def _system_state(system, summary):
    """Deep observable state of a finished run (exact-comparable)."""
    m = system.metrics
    m._flush_block()
    d = system.dispatcher
    state = {
        "summary": summary,
        "cols": (
            list(m._col_stream), list(m._col_arrival), list(m._col_start),
            list(m._col_completion), list(m._col_exec),
            list(m._col_lock_wait), list(m._col_proc),
        ),
        "counts": (m.arrivals, m.completions, m.backlog, m.max_backlog),
        "heap": sorted((t, q) for (t, q, _r) in system.sim._heap),
        "events": system.sim._events_processed,
        "now": system.sim._now,
        "packet_counter": system._packet_counter,
        "idle": list(d._idle),
        "model": (
            system.model._n_fast_calls, system.model._n_analytic_hits,
            system.model._n_cache_hits, system.model._n_flush_computes,
        ),
        "procs": [
            (p.busy, p._ref_clock, p.nonprotocol_us, p.protocol_busy_us,
             dict(p._last_touch))
            for p in system.processors
        ],
    }
    if hasattr(d, "threads"):
        pol = d.policy
        # MRU-family policies keep one shared queue; the zoo policies
        # keep per-processor (dict) or per-group (list) queues.
        if hasattr(pol, "_queue"):
            queues = {"shared": pol._queue}
        elif isinstance(pol._queues, dict):
            queues = pol._queues
        else:
            queues = dict(enumerate(pol._queues))
        state["queue"] = {
            key: [(p.packet_id, p.stream_id, p.arrival_us) for p in q]
            for key, q in queues.items()
        }
        state["free_threads"] = list(d.threads._free)
        state["thread_last_proc"] = dict(d.threads._last_proc)
        state["migrations"] = d.migrations
        state["stream_last_proc"] = dict(d._stream_last_proc)
        for counter in ("resteers", "steals"):
            if hasattr(pol, counter):
                state[counter] = getattr(pol, counter)
        if hasattr(pol, "_steer"):
            state["steer"] = dict(pol._steer)
    else:
        state["queues"] = [
            [(p.packet_id, p.stream_id, p.arrival_us) for p in q]
            for q in d._queues
        ]
        state["migrations"] = d.migrations
    return state


def _run_both(config_kwargs, monkeypatch_env):
    states = {}
    for mode in ("scalar", "batched"):
        monkeypatch_env.setenv(batch.ENGINE_ENV, mode)
        system = NetworkProcessingSystem(SystemConfig(**config_kwargs))
        summary = system.run()
        states[mode] = _system_state(system, summary)
    return states


_CASES = [
    ("locking", "mru"),
    ("locking", "fcfs"),
    ("locking", "stream-mru"),
    ("locking", "flow-steer"),
    ("locking", "grouped"),
    ("ips", "ips-mru"),
    ("ips", "ips-wired"),
]


@pytest.mark.parametrize("paradigm,policy", _CASES)
def test_full_system_batched_equals_scalar(paradigm, policy, monkeypatch):
    """Poisson workload, both engines, deep state equality."""
    traffic = TrafficSpec(
        stream_specs=tuple(PoissonSpec(2_500.0) for _ in range(4)),
        size_model=FixedSize(1024),
    )
    states = _run_both(
        dict(paradigm=paradigm, policy=policy, traffic=traffic,
             duration_us=120_000.0, warmup_us=20_000.0, seed=3),
        monkeypatch,
    )
    assert states["scalar"] == states["batched"]


@pytest.mark.parametrize("paradigm,policy", [
    ("locking", "mru"), ("locking", "flow-steer"), ("locking", "grouped"),
    ("ips", "ips-mru"),
])
def test_saturated_batched_equals_scalar(paradigm, policy, monkeypatch):
    """Deep-overload deterministic workload (the benchmark's regime):
    exercises the bulk-arrival sweep and the end-of-run queue fold."""
    traffic = TrafficSpec(
        stream_specs=tuple(
            DeterministicSpec(12_500.0, phase_us=7.0 * i) for i in range(8)
        ),
        size_model=FixedSize(1024),
    )
    states = _run_both(
        dict(paradigm=paradigm, policy=policy, traffic=traffic,
             duration_us=100_000.0, warmup_us=40_000.0, seed=2),
        monkeypatch,
    )
    assert states["scalar"] == states["batched"]


@pytest.mark.parametrize("paradigm,policy", [
    ("locking", "mru"), ("locking", "fcfs"), ("locking", "flow-steer"),
    ("locking", "grouped"), ("ips", "ips-wired"),
])
def test_exact_cross_stream_ties_batched_equals_scalar(
    paradigm, policy, monkeypatch,
):
    """Every stream arrives at identical float timestamps (equal rate,
    equal phase): the stable-argsort merge cannot order these, so the
    pregenerator must fall back to ``_merge_with_push_order`` — the
    per-event engine's push order — to stay bit-identical."""
    traffic = TrafficSpec(
        stream_specs=tuple(
            DeterministicSpec(1_000.0, phase_us=5.0) for _ in range(6)
        ),
        size_model=FixedSize(1024),
    )
    states = _run_both(
        dict(paradigm=paradigm, policy=policy, traffic=traffic,
             duration_us=80_000.0, warmup_us=10_000.0, seed=4),
        monkeypatch,
    )
    assert states["scalar"] == states["batched"]
    # The workload genuinely produced cross-stream ties (6 streams share
    # every timestamp), so the fallback path was the one under test.
    arrivals = states["batched"]["cols"][1]
    assert len(arrivals) != len(set(arrivals))


@given(
    paradigm_policy=st.sampled_from(_CASES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_streams=st.integers(min_value=1, max_value=6),
    rate=st.floats(min_value=200.0, max_value=12_000.0),
    deterministic=st.booleans(),
    data_touching=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_randomized_workloads_batched_equals_scalar(
    paradigm_policy, seed, n_streams, rate, deterministic, data_touching,
):
    """Randomized short workloads across the supported config space."""
    paradigm, policy = paradigm_policy
    per_stream = rate / n_streams
    if deterministic:
        specs = tuple(
            DeterministicSpec(per_stream, phase_us=3.0 * i)
            for i in range(n_streams)
        )
    else:
        specs = tuple(PoissonSpec(per_stream) for _ in range(n_streams))
    traffic = TrafficSpec(stream_specs=specs, size_model=FixedSize(512))
    kwargs = dict(
        paradigm=paradigm, policy=policy, traffic=traffic,
        duration_us=60_000.0, warmup_us=5_000.0, seed=seed,
        data_touching=data_touching,
    )
    states = {}
    import os
    old = os.environ.get(batch.ENGINE_ENV)
    try:
        for mode in ("scalar", "batched"):
            os.environ[batch.ENGINE_ENV] = mode
            system = NetworkProcessingSystem(SystemConfig(**kwargs))
            summary = system.run()
            states[mode] = _system_state(system, summary)
    finally:
        if old is None:
            os.environ.pop(batch.ENGINE_ENV, None)
        else:
            os.environ[batch.ENGINE_ENV] = old
    assert states["scalar"] == states["batched"]


def test_unsupported_config_falls_back_to_scalar(monkeypatch):
    """Configs outside the fused core's support matrix run scalar under
    auto mode and raise under forced batched mode."""
    traffic = TrafficSpec(
        stream_specs=(PoissonSpec(1_000.0),), size_model=FixedSize(1024),
    )
    kwargs = dict(paradigm="locking", policy="mru", traffic=traffic,
                  duration_us=20_000.0, warmup_us=1_000.0, seed=1,
                  check_invariants=True)
    monkeypatch.setenv(batch.ENGINE_ENV, "auto")
    system = NetworkProcessingSystem(SystemConfig(**kwargs))
    assert batch.unsupported_reason(system) is not None
    system.run()  # scalar fallback, no error
    monkeypatch.setenv(batch.ENGINE_ENV, "batched")
    system = NetworkProcessingSystem(SystemConfig(**kwargs))
    with pytest.raises(RuntimeError, match="not supported by the fused core"):
        system.run()


def test_work_steal_falls_back_to_scalar(monkeypatch):
    """Work stealing is deliberately not fused (its RNG-visible victim
    scan depends on global queue state): auto mode silently runs the
    scalar engine, forced batched mode refuses."""
    traffic = TrafficSpec(
        stream_specs=tuple(PoissonSpec(4_000.0) for _ in range(2)),
        size_model=FixedSize(1024),
    )
    kwargs = dict(paradigm="locking", policy="work-steal", traffic=traffic,
                  duration_us=20_000.0, warmup_us=1_000.0, seed=1)
    monkeypatch.setenv(batch.ENGINE_ENV, "auto")
    system = NetworkProcessingSystem(SystemConfig(**kwargs))
    assert "not fused" in batch.unsupported_reason(system)
    summary = system.run()
    assert summary.n_packets > 0
    monkeypatch.setenv(batch.ENGINE_ENV, "batched")
    system = NetworkProcessingSystem(SystemConfig(**kwargs))
    with pytest.raises(RuntimeError, match="not supported by the fused core"):
        system.run()
