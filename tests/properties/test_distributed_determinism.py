"""Exactly-once under chaos — property-based contract for `distributed`.

The distributed backend promises that *any* interleaving of duplicate
delivery, dropped frames (→ lease expiry → re-execution), and worker
death converges to results bit-identical to ``--backend serial``, with
every task committed exactly once.  Hypothesis drives the fault mix and
the fault plan's seed (each seed is a different deterministic
interleaving of the same fault kinds), and demands bit-identity plus
clean commit accounting.

Fault rates are bounded by ``max_faulty_attempts`` so every drawn plan
is guaranteed to converge: the adversary gets the first messages of
every stream and the first leases of every agent, then the machinery
must recover.  Worker death may exhaust the fleet budget and fall back
to the local warm backend — that path must be just as invisible.
"""

from __future__ import annotations

import functools
from typing import List, Tuple

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.runner import DistributedOptions, FaultPlan, SweepRunner
from repro.runner.faults import _scenario_grid
from repro.sim.system import SystemConfig, run_simulation


@functools.lru_cache(maxsize=1)
def _grid() -> Tuple[SystemConfig, ...]:
    return tuple(_scenario_grid(4, seed=7))


@functools.lru_cache(maxsize=1)
def _reference() -> Tuple[object, ...]:
    return tuple(run_simulation(c) for c in _grid())


@pytest.mark.slow
class TestDistributedChaosBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        duplicate=st.sampled_from([0.0, 1.0]),
        drop=st.sampled_from([0.0, 0.5]),
        kill=st.sampled_from([0.0, 0.4]),
    )
    def test_chaos_interleavings_converge_to_serial(
            self, seed, duplicate, drop, kill):
        grid, ref = _grid(), _reference()
        plan = FaultPlan(seed=seed, duplicate=duplicate, drop=drop,
                         kill=kill, max_faulty_attempts=2)
        runner = SweepRunner(
            jobs=2, backend="distributed", retries=5, backoff_base_s=0.0,
            fault_plan=plan,
            distributed_options=DistributedOptions(
                lease_timeout_s=0.6, idle_poll_s=0.1, tick_s=0.02))
        try:
            results = runner.run_many(list(grid))
        finally:
            runner.close()
        assert results == list(ref)
        # Exactly-once commit accounting: every task committed once, no
        # failures, and nothing double-counted however many duplicates,
        # expiries, or respawns the interleaving produced.
        assert runner.stats.failures == 0
        assert runner.stats.executed == len(grid)

    def test_drop_everything_once_still_converges(self):
        # The deterministic worst case of the drop dimension: the FIRST
        # message of every (worker, type) stream vanishes — every hello,
        # every grant, every result.  Recovery must come from idle
        # re-hellos and lease expiry alone.
        grid, ref = _grid(), _reference()
        plan = FaultPlan(seed=3, drop=1.0, max_faulty_attempts=1)
        runner = SweepRunner(
            jobs=2, backend="distributed", retries=5, backoff_base_s=0.0,
            fault_plan=plan,
            distributed_options=DistributedOptions(
                lease_timeout_s=0.5, idle_poll_s=0.1, tick_s=0.02))
        try:
            results = runner.run_many(list(grid))
        finally:
            runner.close()
        assert results == list(ref)
        assert runner.stats.lease_expiries >= 1
        assert runner.stats.failures == 0
        assert runner.stats.executed == len(grid)
