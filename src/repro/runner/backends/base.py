"""The pluggable execution layer under :class:`~repro.runner.SweepRunner`.

The runner owns everything *around* execution — content keys, cache and
journal folding, dedup, retry accounting, failure reports — and delegates
the actual running of a batch to an :class:`ExecutionBackend`:

``serial``
    In-process, one task at a time (the deterministic reference path).
``pool``
    One :class:`~concurrent.futures.ProcessPoolExecutor` submit per task
    attempt (the pre-warm behaviour, kept verbatim as a fallback and as
    the comparison baseline for ``BENCH_sweep.json``).
``warm``
    Long-lived worker processes with affinity-aware routing, chunked
    dispatch, and columnar result transport (``docs/PERFORMANCE.md``).

Every backend honours the same contract: *scheduling can never affect
results*.  Each config carries its own seed, so outputs are bit-identical
no matter which backend, worker, or dispatch order executed them — the
property ``tests/properties/test_backend_determinism.py`` enforces.

This module also hosts the worker-side plumbing shared by all backends
(:func:`_execute_task` and friends), kept at module level so it stays
pickle-safe for process pools (lint rule RPR006).
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Iterator,
    List,
    Optional,
    Sequence,
)

from ...core.exec_model import ExecutionTimeModel
from ...sim.metrics import SimulationSummary
from ...sim.system import SystemConfig, run_simulation
from ..checkpoint import CheckpointJournal
from ..faults import FaultPlan, InjectedFault, TaskTimeout

if TYPE_CHECKING:  # runner imports backends at runtime, not vice versa
    from ..runner import FailureReport, SweepRunner

__all__ = [
    "BatchState",
    "ExecutionBackend",
]

#: Exit code used by injected worker crashes (visible in pool diagnostics).
_CRASH_EXIT_CODE = 73


# ----------------------------------------------------------------------
# Worker plumbing (module-level => pickle-safe; see lint rule RPR006)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerTask:
    """Everything one attempt needs, shippable to a worker process."""

    config: SystemConfig
    fault_key: str           # stable task identity for fault decisions
    attempt: int             # 1-based
    timeout_s: Optional[float]
    plan: Optional[FaultPlan]
    inline: bool = False     # executing in the parent process (serial path)


@dataclass(frozen=True)
class _WorkerOutcome:
    """Result of one attempt; failures travel as data, not exceptions."""

    ok: bool
    summary: Optional[SimulationSummary]
    kind: str                # "" | "timeout" | "error"
    error: str
    elapsed_s: float


@contextmanager
def _deadline(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`TaskTimeout` when the block exceeds ``timeout_s``.

    Uses a SIGALRM interval timer, which requires the main thread of a
    POSIX process — exactly what a pool worker, a warm worker, and the
    CLI's serial path all are.  Anywhere else the guard degrades to *no*
    in-band timeout; the parent-side hard watchdog still bounds parallel
    execution.
    """
    usable = (
        timeout_s is not None and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise TaskTimeout(f"exceeded the {timeout_s:.3g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))  # type: ignore[arg-type]
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _format_chain(exc: BaseException) -> str:
    """One-line ``repr`` chain of an exception and its cause/context."""
    parts = []
    seen: set = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.append("".join(
            traceback.format_exception_only(type(current), current)).strip())
        current = current.__cause__ or current.__context__
    return " <- ".join(parts)


def _execute_task(task: _WorkerTask,
                  model: Optional[ExecutionTimeModel] = None) -> _WorkerOutcome:
    """Worker entrypoint: run one attempt, honouring the fault plan and
    the task deadline.  Must stay a module-level function (pickled by
    the process pool — RPR006).

    ``model`` is an optional pre-built :class:`ExecutionTimeModel` for
    the task's exec-model parameters — the warm backend's affinity
    payoff.  Injection is validated against the config and is purely a
    memoization transplant, so it can never change results (the penalty
    cache memoizes a pure function; see ``docs/PERFORMANCE.md``).
    """
    t0 = time.perf_counter()
    plan = task.plan
    try:
        if plan is not None:
            if plan.decide("crash", task.fault_key, task.attempt):
                if task.inline:
                    # A real crash would kill the caller; simulate it.
                    raise InjectedFault("injected worker crash (inline mode)")
                os._exit(_CRASH_EXIT_CODE)
            if plan.decide("interrupt", task.fault_key, task.attempt):
                raise KeyboardInterrupt("injected interrupt")
        with _deadline(task.timeout_s):
            if plan is not None and \
                    plan.decide("hang", task.fault_key, task.attempt):
                time.sleep(plan.hang_s)
            if plan is not None and \
                    plan.decide("error", task.fault_key, task.attempt):
                raise InjectedFault(
                    f"injected failure for task {task.fault_key[:12]}")
            summary = run_simulation(task.config, model=model)
        return _WorkerOutcome(True, summary, "", "", time.perf_counter() - t0)
    except TaskTimeout as exc:
        return _WorkerOutcome(False, None, "timeout", str(exc),
                              time.perf_counter() - t0)
    except KeyboardInterrupt:
        raise  # graceful-shutdown path, handled by the backends
    except Exception as exc:
        return _WorkerOutcome(False, None, "error", _format_chain(exc),
                              time.perf_counter() - t0)


def _worker_init() -> None:
    """Worker initializer: restore default SIGTERM disposition so a
    forked worker does not inherit the parent's graceful-shutdown handler
    (which would turn pool teardown into spurious tracebacks)."""
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)


# ----------------------------------------------------------------------
# The backend seam
# ----------------------------------------------------------------------
@dataclass
class BatchState:
    """One ``run_many`` batch, as seen by a backend.

    ``work`` lists the indices still needing execution (cache/journal
    hits and dedup followers are already folded by the runner);
    ``results``/``failures`` are filled in place; completions flow
    through :meth:`SweepRunner._complete` so cache and journal stay in
    the loop regardless of backend.
    """

    work: Sequence[int]
    configs: Sequence[SystemConfig]
    keys: Sequence[Optional[str]]
    fault_keys: Sequence[str]
    results: List[Optional[SimulationSummary]]
    journal: Optional[CheckpointJournal]
    failures: "List[FailureReport]"


class ExecutionBackend(ABC):
    """Strategy interface for executing one batch of independent tasks.

    Backends may keep expensive state (worker processes, schedulers)
    alive *across* batches — the runner calls :meth:`close` when it is
    retired.  The hard contract: for a given batch, the set of completed
    results and their values must be independent of scheduling; only
    wall-clock and the runner's operational stats may differ.
    """

    #: Registry name (``--backend`` value) of this backend.
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def run_batch(self, runner: "SweepRunner", batch: BatchState) -> None:
        """Execute every index in ``batch.work``, folding completions
        through ``runner._complete`` and permanent failures into
        ``batch.failures``."""

    def close(self) -> None:
        """Release any long-lived resources (idempotent)."""
