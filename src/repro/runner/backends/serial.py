"""In-process serial execution: the deterministic reference backend."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import BatchState, ExecutionBackend

if TYPE_CHECKING:
    from ..runner import SweepRunner

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every task in the parent process, one attempt loop at a time.

    This is the reference every other backend is measured against for
    bit-identity, and the path ``jobs<=1`` (or a single-task batch)
    always takes regardless of the configured backend.
    """

    name = "serial"

    def run_batch(self, runner: "SweepRunner", batch: BatchState) -> None:
        for i in batch.work:
            if runner.fail_fast and batch.failures:
                return
            runner._run_inline(i, 1, batch.configs, batch.keys,
                               batch.fault_keys, batch.results,
                               batch.journal, batch.failures)
