"""Message transports for the distributed backend, plus the chaos wrapper.

One small message-passing interface, two implementations:

``tcp``
    The coordinator binds a localhost (or ``--bind`` address) socket and
    workers connect out — the multi-host path.  Messages travel as
    length-prefixed, versioned frames (:data:`_HEADER`), so a torn read
    or a protocol-drifted peer fails loudly as a
    :class:`TransportError`, never as silent corruption.
``file``
    A shared-filesystem spool: each peer has an inbox directory, a send
    is a write to a staging file followed by an atomic ``os.replace``
    into the inbox, a receive is a sorted directory listing.  No server,
    no ports — any filesystem both sides can see (NFS, a shared volume)
    is a transport.

Both sides are deliberately dumb pipes: delivery order is per-sender
FIFO, delivery itself is at-least-once *at best* — the lease/commit
machinery in :mod:`.distributed` owns correctness, the transport owns
only bytes.  That split is what makes the chaos wrapper honest:
:class:`ChaosCoordinatorTransport` sits where every message already
passes (the coordinator's edge) and drops, delays, duplicates, or
partitions traffic under the same sha256-pure
:class:`~repro.runner.faults.FaultPlan` that drives task faults, so a
chaos run replays bit-identically from its seed.

RPR013 applies here: transport code never reads the wall clock.  The
file spool waits by counted ``time.sleep`` slices and the chaos wrapper
holds delayed messages for a counted number of polls — both pure
functions of call counts, not of time.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

from ..faults import FaultPlan

__all__ = [
    "ChaosCoordinatorTransport",
    "CoordinatorTransport",
    "FileCoordinator",
    "FileWorker",
    "TcpCoordinator",
    "TcpWorker",
    "TransportError",
    "decode_frames",
    "encode_frame",
]

#: A protocol message: ``(type, sender_worker_id, ...)`` from workers,
#: ``(type, ...)`` from the coordinator (the recipient is the address).
Message = Tuple[Any, ...]

_MAGIC = b"RPRD"
_VERSION = 1
#: Frame header: magic, protocol version, payload length (big-endian).
_HEADER = struct.Struct(">4sBI")
#: Refuse absurd frames before allocating for them.
_MAX_FRAME = 64 * 1024 * 1024

#: One slice of a file-spool wait (counted, never clock-measured).
_SPOOL_POLL_S = 0.02


class TransportError(RuntimeError):
    """The peer is gone or speaking a different protocol."""


# ----------------------------------------------------------------------
# Frame codec (shared by both transports)
# ----------------------------------------------------------------------
def encode_frame(message: Message) -> bytes:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > _MAX_FRAME:  # pragma: no cover - absurd message
        raise TransportError(f"frame too large: {len(payload)} bytes")
    return _HEADER.pack(_MAGIC, _VERSION, len(payload)) + payload


def decode_frames(buffer: bytearray) -> List[Message]:
    """Consume every complete frame at the head of ``buffer``.

    Partial trailing bytes stay in the buffer for the next read; a bad
    magic or version is unrecoverable (the stream cannot be resynced)
    and raises :class:`TransportError`.
    """
    out: List[Message] = []
    while len(buffer) >= _HEADER.size:
        magic, version, length = _HEADER.unpack_from(buffer)
        if magic != _MAGIC:
            raise TransportError(f"bad frame magic {magic!r}")
        if version != _VERSION:
            raise TransportError(
                f"peer speaks frame version {version}, expected {_VERSION}")
        if length > _MAX_FRAME:
            raise TransportError(f"frame too large: {length} bytes")
        if len(buffer) < _HEADER.size + length:
            break
        payload = bytes(buffer[_HEADER.size:_HEADER.size + length])
        del buffer[:_HEADER.size + length]
        message = pickle.loads(payload)
        if not isinstance(message, tuple) or not message:
            raise TransportError("frame payload is not a message tuple")
        out.append(message)
    return out


def _sender_of(message: Message) -> Optional[str]:
    """The worker id a message came from (worker messages carry it in
    slot 1), or None for malformed/coordinator frames."""
    if len(message) >= 2 and isinstance(message[1], str):
        return message[1]
    return None


# ----------------------------------------------------------------------
# The transport seam
# ----------------------------------------------------------------------
class CoordinatorTransport(ABC):
    """Coordinator side: receive from any worker, send to a known one."""

    @abstractmethod
    def poll(self, timeout_s: float) -> List[Message]:
        """Every message that arrived, waiting up to ``timeout_s``."""

    @abstractmethod
    def send(self, worker_id: str, message: Message) -> bool:
        """Send to ``worker_id``; False when no route exists or the send
        visibly failed (the message never left the coordinator)."""

    @abstractmethod
    def address(self) -> str:
        """The address workers connect/spool to."""

    def pending(self) -> int:
        """Messages held inside the transport (chaos delays); the
        completion check drains these before declaring a batch done."""
        return 0

    @abstractmethod
    def close(self) -> None:
        """Release sockets/spool state (idempotent)."""


class WorkerTransport(ABC):
    """Worker side: one coordinator peer."""

    @abstractmethod
    def send(self, message: Message) -> None:
        """Send to the coordinator; :class:`TransportError` if it is gone."""

    @abstractmethod
    def recv(self, timeout_s: float) -> Optional[Message]:
        """Next message, or None after ``timeout_s`` of quiet."""

    @abstractmethod
    def close(self) -> None:
        """Release resources (idempotent)."""


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------
class TcpCoordinator(CoordinatorTransport):
    """Listening socket + one connection per worker.

    Sockets stay blocking; a selector supplies readiness, so ``recv``
    only runs on sockets with bytes (or EOF) waiting.  Routes are
    learned, not configured: the first frame carrying a worker id binds
    that id to its connection, which is what lets externally launched
    ``repro sweep worker`` processes join by just saying hello.
    """

    def __init__(self, bind: str = "127.0.0.1:0") -> None:
        host, _, port = bind.rpartition(":")
        self._server = socket.create_server((host or "127.0.0.1",
                                             int(port or 0)))
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._server, selectors.EVENT_READ)
        self._buffers: Dict[socket.socket, bytearray] = {}
        self._routes: Dict[str, socket.socket] = {}

    def address(self) -> str:
        host, port = self._server.getsockname()[:2]
        return f"{host}:{port}"

    def _drop_conn(self, conn: socket.socket) -> None:
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        self._buffers.pop(conn, None)
        for worker_id, sock in list(self._routes.items()):
            if sock is conn:
                del self._routes[worker_id]
        try:
            conn.close()
        except OSError:
            pass

    def poll(self, timeout_s: float) -> List[Message]:
        out: List[Message] = []
        for key, _ in self._selector.select(timeout_s):
            sock = key.fileobj
            assert isinstance(sock, socket.socket)
            if sock is self._server:
                conn, _addr = self._server.accept()
                self._selector.register(conn, selectors.EVENT_READ)
                self._buffers[conn] = bytearray()
                continue
            try:
                data = sock.recv(65536)
            except OSError:
                data = b""
            if not data:
                self._drop_conn(sock)
                continue
            buffer = self._buffers[sock]
            buffer += data
            for message in decode_frames(buffer):
                sender = _sender_of(message)
                if sender is not None:
                    self._routes[sender] = sock
                out.append(message)
        return out

    def send(self, worker_id: str, message: Message) -> bool:
        sock = self._routes.get(worker_id)
        if sock is None:
            return False
        try:
            sock.sendall(encode_frame(message))
            return True
        except OSError:
            self._drop_conn(sock)
            return False

    def close(self) -> None:
        for conn in list(self._buffers):
            self._drop_conn(conn)
        try:
            self._selector.unregister(self._server)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        try:
            self._server.close()
        except OSError:
            pass


class TcpWorker(WorkerTransport):
    """Worker side of :class:`TcpCoordinator`: one blocking connection."""

    def __init__(self, address: str) -> None:
        host, _, port = address.rpartition(":")
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, int(port)), timeout=10.0)
        except OSError as exc:
            raise TransportError(
                f"cannot reach coordinator at {address}: {exc}") from exc
        self._buffer = bytearray()
        self._queue: Deque[Message] = deque()

    def send(self, message: Message) -> None:
        if self._sock is None:
            raise TransportError("transport closed")
        try:
            self._sock.sendall(encode_frame(message))
        except OSError as exc:
            raise TransportError(f"coordinator unreachable: {exc}") from exc

    def recv(self, timeout_s: float) -> Optional[Message]:
        if self._queue:
            return self._queue.popleft()
        if self._sock is None:
            raise TransportError("transport closed")
        self._sock.settimeout(max(timeout_s, 1e-3))
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            return None
        except OSError as exc:
            raise TransportError(f"coordinator unreachable: {exc}") from exc
        if not data:
            raise TransportError("coordinator closed the connection")
        self._buffer += data
        self._queue.extend(decode_frames(self._buffer))
        return self._queue.popleft() if self._queue else None

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


# ----------------------------------------------------------------------
# Shared-filesystem spool
# ----------------------------------------------------------------------
def _spool_send(root: Path, inbox: str, sender: str, seq: int,
                message: Message) -> None:
    """Write one frame into ``inbox`` atomically (stage + rename).

    The staged file lives on the same filesystem, so ``os.replace`` is
    atomic: a reader can never observe a torn message, only its absence.
    Names sort by sender-local sequence, preserving per-sender FIFO.
    """
    inbox_dir = root / inbox
    stage_dir = root / "stage"
    inbox_dir.mkdir(parents=True, exist_ok=True)
    stage_dir.mkdir(parents=True, exist_ok=True)
    name = f"{seq:010d}.{sender}.msg"
    staged = stage_dir / f"{os.getpid()}.{sender}.{seq}.tmp"
    staged.write_bytes(encode_frame(message))
    os.replace(staged, inbox_dir / name)


def _spool_read(inbox_dir: Path) -> List[Message]:
    """Drain every message file from ``inbox_dir`` in name order."""
    out: List[Message] = []
    try:
        names = sorted(p for p in inbox_dir.iterdir()
                       if p.name.endswith(".msg"))
    except OSError:
        return out
    for path in names:
        try:
            buffer = bytearray(path.read_bytes())
        except OSError:
            continue  # a concurrent reader won the race; not ours anymore
        try:
            path.unlink()
        except OSError:
            pass
        out.extend(decode_frames(buffer))
    return out


class FileCoordinator(CoordinatorTransport):
    """Coordinator side of the spool: inbox ``to-coord/``, outboxes
    ``to-<worker>/``."""

    def __init__(self, root: Path) -> None:
        self._root = Path(root)
        (self._root / "to-coord").mkdir(parents=True, exist_ok=True)
        self._seq = 0

    def address(self) -> str:
        return str(self._root)

    def poll(self, timeout_s: float) -> List[Message]:
        # Counted wait: check, sleep a fixed slice, repeat — bounded by
        # slice count rather than a clock read (RPR013).
        slices = max(1, int(timeout_s / _SPOOL_POLL_S))
        for i in range(slices):
            messages = _spool_read(self._root / "to-coord")
            if messages:
                return messages
            if i + 1 < slices or slices == 1:
                time.sleep(_SPOOL_POLL_S)
        return _spool_read(self._root / "to-coord")

    def send(self, worker_id: str, message: Message) -> bool:
        self._seq += 1
        try:
            _spool_send(self._root, f"to-{worker_id}", "coord", self._seq,
                        message)
            return True
        except OSError:
            return False

    def close(self) -> None:
        pass  # the spool directory belongs to the backend, not the transport


class FileWorker(WorkerTransport):
    """Worker side of the spool: inbox ``to-<worker_id>/``."""

    def __init__(self, root: Path, worker_id: str) -> None:
        self._root = Path(root)
        self._worker_id = worker_id
        self._inbox = self._root / f"to-{worker_id}"
        self._inbox.mkdir(parents=True, exist_ok=True)
        self._queue: Deque[Message] = deque()
        self._seq = 0

    def send(self, message: Message) -> None:
        self._seq += 1
        try:
            _spool_send(self._root, "to-coord", self._worker_id, self._seq,
                        message)
        except OSError as exc:
            raise TransportError(f"spool unwritable: {exc}") from exc

    def recv(self, timeout_s: float) -> Optional[Message]:
        if self._queue:
            return self._queue.popleft()
        slices = max(1, int(timeout_s / _SPOOL_POLL_S))
        for _ in range(slices):
            self._queue.extend(_spool_read(self._inbox))
            if self._queue:
                return self._queue.popleft()
            time.sleep(_SPOOL_POLL_S)
        return None

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Deterministic network chaos
# ----------------------------------------------------------------------
class ChaosCoordinatorTransport(CoordinatorTransport):
    """Inject network faults at the coordinator's edge, deterministically.

    Every message (both directions) passes through here, keyed for the
    fault plan as ``"<worker>|<msg-type>"`` with a per-key sequence
    number as the attempt — so ``only_keys=("w0.1|result",)`` with
    ``max_faulty_attempts=1`` targets exactly worker ``w0.1``'s first
    result message, on any machine, under any timing.

    - **drop**: the message vanishes (sends still report success — a
      silent network loses bytes without telling the sender).
    - **delay**: the message is held for ``plan.delay_polls`` calls to
      :meth:`poll` before delivery (counted, not timed — RPR013).
    - **duplicate**: the message is delivered twice back-to-back.
    - **partition**: keyed per worker on a *window* counter that
      advances every ``plan.partition_window`` messages the worker is
      involved in, so a partition isolates all of a worker's traffic for
      whole windows and heals as traffic (e.g. its idle re-hellos) keeps
      flowing.
    """

    def __init__(self, inner: CoordinatorTransport, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._key_seq: Dict[str, int] = {}
        self._traffic: Dict[str, int] = {}
        #: Held deliveries: [polls_left, worker_id, message, outbound].
        self._held: List[List[Any]] = []
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.partitioned = 0

    # -- fault decisions ----------------------------------------------
    def _partitioned(self, worker_id: str) -> bool:
        count = self._traffic.get(worker_id, 0) + 1
        self._traffic[worker_id] = count
        window = (count - 1) // max(1, self._plan.partition_window) + 1
        if self._plan.decide("partition", worker_id, window):
            self.partitioned += 1
            return True
        return False

    def _decide(self, kind: str, worker_id: str, msg_type: str) -> bool:
        key = f"{worker_id}|{msg_type}"
        seq_key = f"{kind}|{key}"
        seq = self._key_seq.get(seq_key, 0) + 1
        self._key_seq[seq_key] = seq
        return self._plan.decide(kind, key, seq)

    # -- the wrapped interface ----------------------------------------
    def address(self) -> str:
        return self._inner.address()

    def pending(self) -> int:
        return len(self._held) + self._inner.pending()

    def poll(self, timeout_s: float) -> List[Message]:
        out: List[Message] = []
        # Release held messages whose delay ran out.
        still_held: List[List[Any]] = []
        for entry in self._held:
            entry[0] -= 1
            if entry[0] > 0:
                still_held.append(entry)
            elif entry[3]:
                self._inner.send(entry[1], entry[2])
            else:
                out.append(entry[2])
        self._held = still_held

        for message in self._inner.poll(timeout_s):
            worker_id = _sender_of(message)
            if worker_id is None:
                out.append(message)
                continue
            msg_type = str(message[0])
            if self._partitioned(worker_id):
                continue
            if self._decide("drop", worker_id, msg_type):
                self.dropped += 1
                continue
            if self._decide("delay", worker_id, msg_type):
                self.delayed += 1
                self._held.append(
                    [max(1, self._plan.delay_polls), worker_id, message,
                     False])
                continue
            out.append(message)
            if self._decide("duplicate", worker_id, msg_type):
                self.duplicated += 1
                out.append(message)
        return out

    def send(self, worker_id: str, message: Message) -> bool:
        msg_type = str(message[0]) if message else ""
        if self._partitioned(worker_id):
            return True  # silently lost: the sender cannot tell
        if self._decide("drop", worker_id, msg_type):
            self.dropped += 1
            return True
        if self._decide("delay", worker_id, msg_type):
            self.delayed += 1
            self._held.append(
                [max(1, self._plan.delay_polls), worker_id, message, True])
            return True
        sent = self._inner.send(worker_id, message)
        if sent and self._decide("duplicate", worker_id, msg_type):
            self.duplicated += 1
            self._inner.send(worker_id, message)
        return sent

    def close(self) -> None:
        self._held.clear()
        self._inner.close()
