"""Lease bookkeeping for the distributed backend.

A *lease* is the unit of at-least-once dispatch: the coordinator grants a
worker a chunk of tasks for a bounded time, the worker heartbeats while
executing, and a lease whose heartbeats stop arriving is *expired* — its
tasks are requeued (consuming an attempt from the retry budget, exactly
like a crashed warm worker) and the worker is presumed lost until it
speaks again.  A worker that was merely slow or partitioned may later
deliver a result for an expired lease; the :class:`LeaseTable` keeps
retired leases addressable so the coordinator can still interpret (and
byte-compare) those stale deliveries instead of dropping data it cannot
attribute.

Time never comes from the wall clock directly: every decision reads the
injectable ``clock`` callable handed to the table (lint rule RPR013).
Tests drive expiry with a fake clock; production passes
``time.monotonic`` *by reference*.  This is what keeps lease semantics
unit-testable and chaos runs replayable — the fault plan decides *what*
fails, and no hidden clock read can smuggle in wall-time dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..affinity import QueuedTask

__all__ = ["Clock", "Lease", "LeaseTable"]

#: The injectable time source (RPR013): monotonic seconds.  Production
#: passes ``time.monotonic`` by reference; tests pass a fake.
Clock = Callable[[], float]


@dataclass
class Lease:
    """One granted chunk: who holds it, what it covers, when it last spoke."""

    lease_id: int
    worker_id: str
    tasks: Tuple[QueuedTask, ...]
    granted_at_s: float
    last_beat_s: float


class LeaseTable:
    """Active and retired leases of one batch, with heartbeat expiry.

    ``timeout_s`` is the heartbeat budget: a lease whose ``last_beat_s``
    is older than this (by the injected clock) is expired by the next
    :meth:`expired` sweep.  Retired leases (expired, released, or
    completed) stay addressable so late results can be matched to their
    tasks and routed through the idempotent commit gate.
    """

    def __init__(self, timeout_s: float, clock: Clock) -> None:
        if timeout_s <= 0:
            raise ValueError("lease timeout_s must be positive")
        self.timeout_s = timeout_s
        self._clock = clock
        self._active: Dict[int, Lease] = {}
        self._retired: Dict[int, Lease] = {}

    # -- granting / liveness -----------------------------------------
    def grant(self, lease_id: int, worker_id: str,
              tasks: Sequence[QueuedTask]) -> Lease:
        if lease_id in self._active or lease_id in self._retired:
            raise ValueError(f"lease id {lease_id} already used")
        now = self._clock()
        lease = Lease(lease_id, worker_id, tuple(tasks), now, now)
        self._active[lease_id] = lease
        return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Refresh a lease's heartbeat; False if it is no longer active
        (the beat arrived after expiry — the worker is stale)."""
        lease = self._active.get(lease_id)
        if lease is None:
            return False
        lease.last_beat_s = self._clock()
        return True

    # -- retirement ---------------------------------------------------
    def complete(self, lease_id: int) -> Tuple[Optional[Lease], bool]:
        """Look up a result's lease: ``(lease, was_active)``.

        An active lease is retired (normal completion).  A retired lease
        is returned with ``was_active=False`` — the stale-delivery path.
        Unknown ids (e.g. leftovers from a previous batch) return
        ``(None, False)``.
        """
        lease = self._active.pop(lease_id, None)
        if lease is not None:
            self._retired[lease_id] = lease
            return lease, True
        return self._retired.get(lease_id), False

    def expired(self) -> List[Lease]:
        """Pop every active lease whose heartbeat budget ran out."""
        now = self._clock()
        out = [lease for lease in self._active.values()
               if now - lease.last_beat_s > self.timeout_s]
        for lease in out:
            self._retired[lease.lease_id] = self._active.pop(lease.lease_id)
        return out

    def release_worker(self, worker_id: str) -> List[Lease]:
        """Pop every active lease held by ``worker_id`` (it died)."""
        out = [lease for lease in self._active.values()
               if lease.worker_id == worker_id]
        for lease in out:
            self._retired[lease.lease_id] = self._active.pop(lease.lease_id)
        return out

    def release_all(self) -> List[Lease]:
        """Pop every active lease (fleet retirement / fallback path)."""
        out = list(self._active.values())
        for lease in out:
            self._retired[lease.lease_id] = lease
        self._active.clear()
        return out

    # -- inspection ---------------------------------------------------
    def active(self) -> int:
        return len(self._active)

    def lease_of(self, worker_id: str) -> Optional[Lease]:
        for lease in self._active.values():
            if lease.worker_id == worker_id:
                return lease
        return None

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready view of the active leases (``repro sweep status``)."""
        now = self._clock()
        return [
            {
                "lease": lease.lease_id,
                "worker": lease.worker_id,
                "tasks": [t.index for t in lease.tasks],
                "age_s": round(now - lease.granted_at_s, 3),
                "beat_age_s": round(now - lease.last_beat_s, 3),
            }
            for lease in sorted(self._active.values(),
                                key=lambda lease: lease.lease_id)
        ]
