"""Coordinator + stateless worker agents: the ``distributed`` backend.

The warm backend's fleet lives behind OS pipes in one process tree; this
backend puts the same affinity-routed dispatch behind a *network* seam
(:mod:`.transport`) so the fleet can be separate processes on this host
(the default: the coordinator spawns its own agents), or externally
launched ``repro sweep worker`` processes on any host that can reach the
coordinator's ``tcp`` address or ``file`` spool.

Once work leaves the process tree, every comfortable assumption breaks:
messages drop, arrive twice, arrive late, workers die silently or hang
behind a partition.  The design answers with three mechanisms:

**Leases** (:mod:`.lease`)
    A dispatch is a *lease* of a task chunk with a heartbeat deadline.
    Agents beat before each task; a lease that misses its budget is
    expired — its tasks requeue, consuming an attempt from the retry
    budget exactly like a crashed warm worker.  Liveness needs no
    cooperation from the dead.
**Idempotent commit** (first write wins)
    Delivery is at-least-once, so the same task can complete twice (a
    duplicated result frame, or a re-execution racing a stale worker
    behind a healed partition).  Every completion passes a per-task
    commit gate: the first result is committed through
    :meth:`SweepRunner._complete` (cache + journal), any later result is
    byte-compared against it — identical duplicates are counted and
    discarded, a mismatch is quarantined next to the result cache and
    aborts the sweep loudly, because a nondeterministic task invalidates
    the repo's core bit-identity contract.
**Graceful degradation**
    A fleet that keeps dying (``max_fleet_failures`` exceeded) is
    retired and the remainder of the batch runs on the local ``warm``
    backend / inline, preserving attempt accounting.  SIGINT/SIGTERM
    take the runner's normal drain path: folded results are journaled
    and the resume hint prints.

Affinity routing reuses :class:`~repro.runner.affinity.AffinityScheduler`
unchanged — a lease is a same-key run, so an agent rides one warm
:class:`~repro.core.exec_model.ExecutionTimeModel` per lease and keeps
it across leases of the same family (the paper's thesis, one network hop
further out).  Scheduling still cannot affect results: every config
carries its own seed, and the chaos suite (``repro faults --backend
distributed``) proves bit-identity under every fault kind.

RPR013 applies to this module: wall-clock reads go through the
injectable clock seam (``DistributedOptions.clock``, defaulting to
``time.monotonic`` *by reference*), so lease expiry is unit-testable
with a fake clock and chaos runs replay deterministically.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import tempfile
import time
import weakref
from dataclasses import dataclass
from multiprocessing.process import BaseProcess
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ...core.policies import dynamic_policy_entries, merge_policy_entries
from ...sim.metrics import SimulationSummary
from ..affinity import AffinityScheduler, QueuedTask, affinity_key
from ..cache import summary_to_dict
from ..columnar import pack_block, unpack_block
from ..faults import NETWORK_FAULT_KINDS
from .base import (
    _CRASH_EXIT_CODE,
    BatchState,
    ExecutionBackend,
    _execute_task,
    _worker_init,
    _WorkerOutcome,
    _WorkerTask,
)
from .lease import Clock, Lease, LeaseTable
from .transport import (
    ChaosCoordinatorTransport,
    CoordinatorTransport,
    FileCoordinator,
    FileWorker,
    TcpCoordinator,
    TcpWorker,
    TransportError,
    WorkerTransport,
)
from .warm import (
    _ChunkSizer,
    _model_for,
    _model_matches,
    _mp_context,
    _TaskMeta,
    _terminate_processes,
    reset_warm_state,
)

if TYPE_CHECKING:
    from ..runner import SweepRunner

__all__ = [
    "DistributedBackend",
    "DistributedOptions",
    "run_worker_agent",
]

#: Valid ``--transport`` choices.
TRANSPORT_NAMES = ("tcp", "file")


@dataclass(frozen=True)
class DistributedOptions:
    """Tuning and test levers for the distributed backend.

    Like :class:`~repro.runner.backends.WarmOptions`, none of these can
    affect results — only wall-clock, routing, and recovery counters.
    """

    #: Message transport: "tcp" (sockets) or "file" (shared-fs spool).
    transport: str = "tcp"
    #: TCP listen address, ``host:port`` (port 0 = ephemeral).
    bind: str = "127.0.0.1:0"
    #: File-transport spool root (None = private temp dir, local only).
    spool_dir: Optional[str] = None
    #: Spawn local agent processes (False = wait for external
    #: ``repro sweep worker`` processes to join).
    spawn_agents: bool = True
    #: Heartbeat budget: a lease silent for longer is expired and its
    #: tasks requeued (consuming an attempt each).
    lease_timeout_s: float = 60.0
    #: Fixed tasks per lease (None = auto-size from measured task cost).
    lease_tasks: Optional[int] = None
    #: Auto-sizing target: one lease ≈ this much simulation wall-clock.
    target_lease_s: float = 0.2
    #: Upper bound on auto-sized leases.
    max_lease_tasks: int = 32
    #: Agent deaths tolerated per batch before the coordinator retires
    #: the fleet and finishes on the local warm backend.
    max_fleet_failures: int = 3
    #: Coordinator poll cadence (also the chaos delay quantum).
    tick_s: float = 0.05
    #: Idle agents re-hello at this cadence (liveness + late joins).
    idle_poll_s: float = 0.5
    #: Injectable time source for lease bookkeeping (RPR013); None means
    #: ``time.monotonic``, passed by reference, never called here.
    clock: Optional[Clock] = None

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORT_NAMES:
            raise ValueError(f"transport must be one of {TRANSPORT_NAMES}, "
                             f"got {self.transport!r}")
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if self.lease_tasks is not None and self.lease_tasks < 1:
            raise ValueError("lease_tasks must be >= 1 (or None = auto)")
        if self.target_lease_s <= 0:
            raise ValueError("target_lease_s must be positive")
        if self.max_lease_tasks < 1:
            raise ValueError("max_lease_tasks must be >= 1")
        if self.max_fleet_failures < 0:
            raise ValueError("max_fleet_failures must be >= 0")
        if self.tick_s <= 0 or self.idle_poll_s <= 0:
            raise ValueError("tick_s and idle_poll_s must be positive")


# ----------------------------------------------------------------------
# Agent side (worker process / `repro sweep worker`)
# ----------------------------------------------------------------------
def _make_worker_transport(transport: str, address: str,
                           worker_id: str) -> WorkerTransport:
    if transport == "tcp":
        return TcpWorker(address)
    if transport == "file":
        return FileWorker(Path(address), worker_id)
    raise ValueError(f"unknown transport {transport!r}")


def _execute_lease(akey: str, tasks: Sequence[_WorkerTask],
                   beat: Callable[[], None],
                   ) -> Tuple[Tuple[_TaskMeta, ...], Dict[str, Any], bool]:
    """Execute one leased chunk, calling ``beat()`` between tasks so the
    coordinator sees liveness at task granularity — a hung task stops
    the beats and the lease expires, no cooperation needed."""
    model = _model_for(akey, tasks[0].config)
    outcomes: List[_WorkerOutcome] = []
    interrupted = False
    for i, task in enumerate(tasks):
        if i:
            beat()
        use = model if _model_matches(model, task.config) else None
        try:
            outcomes.append(_execute_task(task, model=use))
        except KeyboardInterrupt:
            interrupted = True
            break
    summaries = [o.summary for o in outcomes
                 if o.ok and o.summary is not None]
    meta = tuple((o.ok, o.kind, o.error, o.elapsed_s) for o in outcomes)
    return meta, pack_block(summaries), interrupted


def _agent_loop(link: WorkerTransport, worker_id: str,
                idle_poll_s: float) -> None:
    """Serve leases until told to stop.

    The agent is *stateless by design*: everything a lease needs (tasks,
    fault plan, late policy registrations) ships inside the lease
    message, so a fresh agent — respawned, or on another host — is
    interchangeable with the one that died.  The only carried state is
    the warm model cache, a pure accelerator (RPR012 ledger).
    """
    leases_seen = 0
    link.send(("hello", worker_id))
    while True:
        message = link.recv(idle_poll_s)
        if message is None:
            # Idle re-hello: idempotent registration that doubles as a
            # liveness signal (it re-establishes dropped registrations
            # and advances chaos partition windows so partitions heal).
            link.send(("hello", worker_id))
            continue
        mtype = message[0]
        if mtype == "stop":
            link.send(("bye", worker_id))
            return
        if mtype != "lease":
            raise TransportError(
                f"unexpected coordinator message {mtype!r}")
        _, lease_id, akey, tasks, policy_entries = message
        leases_seen += 1
        plan = tasks[0].plan if tasks else None
        if plan is not None and plan.decide(
                "kill", f"agent|{worker_id}", leases_seen):
            os._exit(_CRASH_EXIT_CODE)
        merge_policy_entries(policy_entries)
        link.send(("beat", worker_id, lease_id))

        def _beat(lease_id: int = lease_id) -> None:
            link.send(("beat", worker_id, lease_id))

        meta, block, interrupted = _execute_lease(akey, tasks, _beat)
        link.send(("result", worker_id, lease_id, meta, block, interrupted))


def _agent_main(transport: str, address: str, worker_id: str,
                idle_poll_s: float) -> None:
    """Local agent process entrypoint (module-level: RPR006).

    SIGINT is ignored so a Ctrl-C in the coordinator's terminal takes
    the coordinator's graceful-drain path (journal flush + resume hint)
    instead of racing agent deaths against it; the coordinator stops
    agents explicitly.
    """
    _worker_init()
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    reset_warm_state()
    try:
        link = _make_worker_transport(transport, address, worker_id)
    except TransportError:
        return
    try:
        _agent_loop(link, worker_id, idle_poll_s)
    except TransportError:
        return  # coordinator gone; nothing to clean up but the socket
    finally:
        link.close()


def run_worker_agent(transport: str, address: str, worker_id: str,
                     idle_poll_s: float = 0.5) -> None:
    """Run one worker agent in this process until the coordinator says
    stop (the ``repro sweep worker`` entrypoint for joining a sweep from
    another shell or host)."""
    reset_warm_state()
    link = _make_worker_transport(transport, address, worker_id)
    try:
        _agent_loop(link, worker_id, idle_poll_s)
    except (KeyboardInterrupt, TransportError):
        pass
    finally:
        link.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
@dataclass
class _AgentSlot:
    """Coordinator-side view of one fleet position.

    Worker ids are ``w<slot>.<generation>``: a respawn bumps the
    generation, so a late message from a dead agent can never be
    mistaken for its replacement (and, on the file transport, the
    replacement gets a fresh inbox).
    """

    idx: int
    generation: int = 0
    worker_id: str = ""
    process: Optional[BaseProcess] = None
    registered: bool = False
    lease_id: Optional[int] = None


class DistributedBackend(ExecutionBackend):
    """Lease-based coordinator over a worker-agent fleet (module docstring)."""

    name = "distributed"

    def __init__(self, options: Optional[DistributedOptions] = None) -> None:
        self.options = options if options is not None else DistributedOptions()
        clock = self.options.clock
        # The only wall-clock reference in the coordinator: taken by
        # reference, called only through the seam (RPR013).
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._ctx = _mp_context()
        self._transport: Optional[CoordinatorTransport] = None
        self._chaos: Optional[ChaosCoordinatorTransport] = None
        self._spec: Tuple[str, str] = ("", "")
        self._spool_tmp: Optional[Path] = None
        self._slots: List[_AgentSlot] = []
        self._procs: List[BaseProcess] = []      # shared with the finalizer
        self._sched: Optional[AffinityScheduler] = None
        self._sizer = _ChunkSizer(self.options.target_lease_s,
                                  self.options.max_lease_tasks)
        self._lease_counter = 0
        self._committed: Dict[int, bytes] = {}
        self._status_tick = 0
        self._finalizer = weakref.finalize(
            self, _terminate_processes, self._procs)

    # ------------------------------------------------------------------
    # transport / fleet lifecycle
    # ------------------------------------------------------------------
    def _ensure_transport(self, runner: "SweepRunner") -> CoordinatorTransport:
        if self._transport is not None:
            return self._transport
        opts = self.options
        inner: CoordinatorTransport
        if opts.transport == "tcp":
            inner = TcpCoordinator(opts.bind)
            self._spec = ("tcp", inner.address())
        else:
            if opts.spool_dir is not None:
                root = Path(opts.spool_dir)
            else:
                root = Path(tempfile.mkdtemp(prefix="repro-spool-"))
                self._spool_tmp = root
            inner = FileCoordinator(root)
            self._spec = ("file", str(root))
        plan = runner.fault_plan
        if plan is not None and any(plan.rate(kind) > 0.0
                                    for kind in NETWORK_FAULT_KINDS):
            self._chaos = ChaosCoordinatorTransport(inner, plan)
            self._transport = self._chaos
        else:
            self._transport = inner
        return self._transport

    def _ensure_slots(self, n: int) -> None:
        while len(self._slots) < n:
            self._slots.append(_AgentSlot(idx=len(self._slots)))

    def _spawn_agent(self, slot: _AgentSlot) -> None:
        slot.generation += 1
        slot.worker_id = f"w{slot.idx}.{slot.generation}"
        slot.registered = False
        slot.lease_id = None
        transport, address = self._spec
        process = self._ctx.Process(
            target=_agent_main,
            args=(transport, address, slot.worker_id,
                  self.options.idle_poll_s),
            daemon=True, name=f"repro-dist-{slot.worker_id}")
        process.start()
        slot.process = process
        self._procs.append(process)

    def _ensure_agents(self, n: int) -> None:
        self._ensure_slots(n)
        for slot in self._slots:
            if slot.process is None:
                self._spawn_agent(slot)

    def _retire_process(self, slot: _AgentSlot) -> None:
        process = slot.process
        slot.process = None
        slot.registered = False
        slot.lease_id = None
        if process is None:
            return
        try:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():  # wedged past SIGTERM
                    process.kill()
                    process.join(timeout=1.0)
        except Exception:
            pass
        if process in self._procs:
            self._procs.remove(process)

    def _shutdown(self) -> None:
        """Retire the whole fleet and the transport (idempotent)."""
        transport = self._transport
        for slot in self._slots:
            if transport is not None and slot.registered:
                try:
                    transport.send(slot.worker_id, ("stop",))
                except Exception:
                    pass
            self._retire_process(slot)
        self._slots.clear()
        self._sched = None
        if transport is not None:
            transport.close()
        self._transport = None
        self._chaos = None
        if self._spool_tmp is not None:
            shutil.rmtree(self._spool_tmp, ignore_errors=True)
            self._spool_tmp = None

    def close(self) -> None:
        self._shutdown()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _ensure_sched(self, n_workers: int) -> AffinityScheduler:
        if self._sched is None or self._sched.n_workers != n_workers:
            self._sched = AffinityScheduler(n_workers)
        return self._sched

    def run_batch(self, runner: "SweepRunner", batch: BatchState) -> None:
        opts = self.options
        sched = self._ensure_sched(runner.jobs)
        stats0 = (sched.stats.routed_affine, sched.stats.steals)
        sched.assign([
            QueuedTask(i, 1, affinity_key(batch.configs[i]))
            for i in batch.work
        ])
        transport = self._ensure_transport(runner)
        # Fault plans force single-task leases so failure attribution
        # stays per-task, matching the pool/warm backends.
        fixed_chunk = 1 if runner.fault_plan is not None else opts.lease_tasks
        table = LeaseTable(opts.lease_timeout_s, self._clock)
        self._committed = {}
        self._status_tick = 0
        fleet_failures = 0
        try:
            if opts.spawn_agents:
                self._ensure_agents(runner.jobs)
            else:
                self._ensure_slots(runner.jobs)
            while True:
                if runner.fail_fast and batch.failures:
                    # In-flight leases are abandoned with their fleet: a
                    # stale result landing in the next batch could never
                    # commit (fresh lease table), but the fleet is torn
                    # down anyway to stop the work promptly.
                    self._shutdown()
                    return
                if fleet_failures > opts.max_fleet_failures:
                    self._fall_back(runner, batch, sched, table)
                    return

                # Local-agent liveness: a dead process forfeits its
                # lease immediately (no need to wait out the heartbeat
                # budget when the OS already told us).
                for slot in self._slots:
                    process = slot.process
                    if process is not None and not process.is_alive():
                        fleet_failures += 1
                        self._agent_died(slot, runner, batch, sched, table)
                        if (opts.spawn_agents and
                                fleet_failures <= opts.max_fleet_failures):
                            self._spawn_agent(slot)
                            runner.stats.pool_respawns += 1

                # Heartbeat expiry: remote/hung workers forfeit theirs.
                for lease in table.expired():
                    runner.stats.lease_expiries += 1
                    slot = self._slot_by_id(lease.worker_id)
                    if slot is not None and slot.lease_id == lease.lease_id:
                        slot.lease_id = None
                        # A worker that missed its heartbeat budget is
                        # suspect: require a fresh hello (the idle loop
                        # re-hellos) before granting it anything again —
                        # otherwise the requeued task routes straight
                        # back to the very worker that just went dark.
                        slot.registered = False
                    self._requeue_lease(
                        lease, "timeout",
                        "lease expired: worker missed its heartbeat "
                        "budget; tasks requeued",
                        runner, batch, sched)
                    self._write_status(batch, sched, table, force=True)

                for slot in self._slots:
                    if (slot.registered and slot.lease_id is None
                            and sched.pending() > 0
                            and not (runner.fail_fast and batch.failures)):
                        self._grant(slot, runner, batch, sched, table,
                                    fixed_chunk, transport)

                if (sched.pending() == 0 and table.active() == 0
                        and transport.pending() == 0):
                    self._clear_status(batch)
                    return

                for message in transport.poll(opts.tick_s):
                    self._handle(message, runner, batch, sched, table,
                                 transport)
        except BaseException:
            # Interrupt or internal error: persist the lease state for
            # `repro sweep status`, then retire the fleet so no stale
            # result can ever land after this frame unwinds.
            self._write_status(batch, sched, table, force=True)
            self._shutdown()
            raise
        finally:
            runner.stats.affinity_hits += \
                sched.stats.routed_affine - stats0[0]
            runner.stats.steals += sched.stats.steals - stats0[1]

    # ------------------------------------------------------------------
    # dispatch / message handling
    # ------------------------------------------------------------------
    def _slot_by_id(self, worker_id: str) -> Optional[_AgentSlot]:
        for slot in self._slots:
            if slot.worker_id == worker_id:
                return slot
        return None

    def _grant(self, slot: _AgentSlot, runner: "SweepRunner",
               batch: BatchState, sched: AffinityScheduler,
               table: LeaseTable, fixed_chunk: Optional[int],
               transport: CoordinatorTransport) -> None:
        size = fixed_chunk if fixed_chunk is not None else self._sizer.size()
        chunk = sched.next_chunk(slot.idx, max(1, size))
        # Tasks committed since they were (re)queued — e.g. a stale
        # result arrived for a task a lease expiry had requeued — are
        # already done; dispatching them again would only burn work.
        chunk = [t for t in chunk if t.index not in self._committed]
        if not chunk:
            return
        self._lease_counter += 1
        lease = table.grant(self._lease_counter, slot.worker_id, chunk)
        tasks = tuple(
            _WorkerTask(batch.configs[t.index], batch.fault_keys[t.index],
                        t.attempt, runner.timeout_s, runner.fault_plan)
            for t in chunk
        )
        sent = transport.send(
            slot.worker_id,
            ("lease", lease.lease_id, chunk[0].key, tasks,
             dynamic_policy_entries()))
        if not sent:
            # The message never left the coordinator: retract the lease
            # and requeue without consuming an attempt (the path that
            # does consume one is a worker dying *with* its lease).
            table.complete(lease.lease_id)
            for t in chunk:
                sched.push(t)
            slot.registered = False
            return
        slot.lease_id = lease.lease_id
        runner.stats.leases += 1
        runner.stats.chunks += 1
        self._write_status(batch, sched, table)

    def _handle(self, message: Tuple[Any, ...], runner: "SweepRunner",
                batch: BatchState, sched: AffinityScheduler,
                table: LeaseTable,
                transport: CoordinatorTransport) -> None:
        mtype = message[0]
        if mtype == "hello":
            worker_id = str(message[1])
            slot = self._slot_by_id(worker_id)
            if slot is None:
                slot = self._bind_external(worker_id)
            if slot is not None:
                slot.registered = True
            else:
                # No fleet position for this id (a superseded generation
                # or an over-provisioned joiner): turn it away politely.
                transport.send(worker_id, ("stop",))
            return
        if mtype == "beat":
            table.heartbeat(int(message[2]))
            return
        if mtype == "bye":
            slot = self._slot_by_id(str(message[1]))
            if slot is not None:
                slot.registered = False
            return
        if mtype == "result":
            self._fold(message, runner, batch, sched, table)
            return
        raise RuntimeError(
            f"distributed protocol violation: unknown message type "
            f"{mtype!r} from a worker")

    def _bind_external(self, worker_id: str) -> Optional[_AgentSlot]:
        """Attach an externally launched worker to a free fleet slot."""
        for slot in self._slots:
            if slot.process is None and not slot.worker_id:
                slot.worker_id = worker_id
                return slot
        return None

    # ------------------------------------------------------------------
    # failure / retry accounting
    # ------------------------------------------------------------------
    def _retry_task(self, t: QueuedTask, kind: str, error: str,
                    elapsed_s: float, runner: "SweepRunner",
                    batch: BatchState, sched: AffinityScheduler) -> None:
        """Distributed mirror of ``SweepRunner._retry_or_fail``."""
        if t.attempt <= runner.retries:
            runner.stats.retries += 1
            runner._backoff(t.attempt)
            sched.push(QueuedTask(t.index, t.attempt + 1, t.key))
        else:
            runner._fail(t.index, batch.keys[t.index], kind, error,
                         t.attempt, elapsed_s, batch.failures)

    def _requeue_lease(self, lease: Lease, kind: str, error: str,
                       runner: "SweepRunner", batch: BatchState,
                       sched: AffinityScheduler) -> None:
        """Charge an attempt to every task of a forfeited lease.

        The coordinator cannot know how far into the chunk the worker
        got, so the conservative accounting treats all of it as a failed
        attempt — results stay correct either way (a re-run is
        bit-identical, and a late duplicate is absorbed by the commit
        gate)."""
        elapsed_s = max(0.0, self._clock() - lease.granted_at_s)
        for t in lease.tasks:
            if t.index in self._committed:
                continue  # a (stale) result already landed for it
            if kind == "timeout":
                runner.stats.timeouts += 1
            self._retry_task(t, kind, error, elapsed_s, runner, batch, sched)

    def _agent_died(self, slot: _AgentSlot, runner: "SweepRunner",
                    batch: BatchState, sched: AffinityScheduler,
                    table: LeaseTable) -> None:
        for lease in table.release_worker(slot.worker_id):
            self._requeue_lease(
                lease, "crash",
                "worker agent process died holding this lease",
                runner, batch, sched)
        self._retire_process(slot)
        if self._sched is not None and slot.idx < len(self._sched.mru):
            self._sched.mru[slot.idx] = None  # its warm caches died with it
        self._write_status(batch, sched, table, force=True)

    def _fall_back(self, runner: "SweepRunner", batch: BatchState,
                   sched: AffinityScheduler, table: LeaseTable) -> None:
        """The fleet keeps dying: retire it and finish locally.

        First-attempt tasks go through the local ``warm`` backend (it
        assigns attempt 1 itself); tasks mid-retry run inline so their
        attempt accounting carries over exactly."""
        runner.stats.fleet_fallbacks += 1
        for lease in table.release_all():
            for t in lease.tasks:
                if t.index not in self._committed:
                    # The fleet is being retired — no attempt consumed.
                    sched.push(t)
        remaining = [t for t in sched.drain()
                     if t.index not in self._committed]
        self._shutdown()
        fresh = [t for t in remaining if t.attempt == 1]
        seasoned = [t for t in remaining if t.attempt > 1]
        if fresh and not (runner.fail_fast and batch.failures):
            sub = BatchState([t.index for t in fresh], batch.configs,
                             batch.keys, batch.fault_keys, batch.results,
                             batch.journal, batch.failures)
            runner._get_backend("warm").run_batch(runner, sub)
        for t in seasoned:
            if runner.fail_fast and batch.failures:
                return
            runner._run_inline(t.index, t.attempt, batch.configs,
                               batch.keys, batch.fault_keys, batch.results,
                               batch.journal, batch.failures)
        self._clear_status(batch)

    # ------------------------------------------------------------------
    # result folding: the idempotent commit gate
    # ------------------------------------------------------------------
    def _fold(self, message: Tuple[Any, ...], runner: "SweepRunner",
              batch: BatchState, sched: AffinityScheduler,
              table: LeaseTable) -> None:
        _, worker_id, lease_id, meta, block, interrupted = message
        lease, was_active = table.complete(int(lease_id))
        if lease is None:
            # A lease this table never issued (previous batch leftovers
            # after a drain): nothing it reports can be attributed.
            runner.stats.stale_results += 1
            return
        slot = self._slot_by_id(lease.worker_id)
        if slot is not None and slot.lease_id == int(lease_id):
            slot.lease_id = None
        if not was_active:
            runner.stats.stale_results += 1
        summaries = unpack_block(block)
        cursor = 0
        samples: List[float] = []
        for t, (ok, kind, error, elapsed_s) in zip(lease.tasks, meta):
            if ok:
                summary = summaries[cursor]
                cursor += 1
                if self._commit(t.index, summary, runner, batch):
                    samples.append(elapsed_s)
            elif was_active:
                if kind == "timeout":
                    runner.stats.timeouts += 1
                self._retry_task(t, kind, error, elapsed_s, runner, batch,
                                 sched)
            # Stale failures need no action: the expiry that retired the
            # lease already charged the attempt and requeued the task.
        self._sizer.observe(samples)
        self._write_status(batch, sched, table)
        if interrupted and was_active:
            # Completed prefix above is already committed/journaled —
            # propagate the graceful-shutdown path like a serial Ctrl-C.
            raise KeyboardInterrupt("sweep interrupted in a worker agent")

    def _commit(self, index: int, summary: SimulationSummary,
                runner: "SweepRunner", batch: BatchState) -> bool:
        """First write wins; duplicates byte-compared; mismatch aborts."""
        blob = json.dumps(summary_to_dict(summary), sort_keys=True,
                          separators=(",", ":")).encode()
        prior = self._committed.get(index)
        if prior is None:
            self._committed[index] = blob
            runner._complete(index, summary, batch.keys[index],
                             batch.results, batch.journal)
            return True
        if prior == blob:
            runner.stats.dup_results += 1
            return False
        self._quarantine_mismatch(index, batch.keys[index], prior, blob,
                                  runner)
        return False  # unreachable: _quarantine_mismatch raises

    def _quarantine_mismatch(self, index: int, key: Optional[str],
                             committed: bytes, duplicate: bytes,
                             runner: "SweepRunner") -> None:
        quarantine_dir: Optional[Path] = None
        if runner.cache is not None:
            quarantine_dir = runner.cache.quarantine_dir
        else:
            root = runner._checkpoint_root()
            if root is not None:
                quarantine_dir = root / "quarantine"
        where = ""
        if quarantine_dir is not None:
            name = f"mismatch-{(key or f'task{index}')[:16]}.json"
            try:
                quarantine_dir.mkdir(parents=True, exist_ok=True)
                (quarantine_dir / name).write_text(json.dumps({
                    "task_index": index,
                    "key": key,
                    "committed": json.loads(committed.decode()),
                    "duplicate": json.loads(duplicate.decode()),
                }, indent=2, sort_keys=True))
                where = f"; divergent payloads quarantined at " \
                        f"{quarantine_dir / name}"
            except OSError:
                where = "; quarantine write failed"
        raise RuntimeError(
            f"distributed result mismatch for task #{index} "
            f"(key {(key or 'uncacheable')[:12]}): a re-executed attempt "
            f"returned a different result than the one already committed "
            f"— the determinism contract is violated, aborting the sweep"
            + where)

    # ------------------------------------------------------------------
    # `repro sweep status` state file
    # ------------------------------------------------------------------
    def _status_path(self, batch: BatchState) -> Optional[Path]:
        if batch.journal is None:
            return None
        path = batch.journal.path
        return path.with_name(path.stem + ".state.json")

    def _write_status(self, batch: BatchState, sched: AffinityScheduler,
                      table: LeaseTable, force: bool = False) -> None:
        path = self._status_path(batch)
        if path is None:
            return
        self._status_tick += 1
        if not force and self._status_tick % 16 != 1:
            return
        journal = batch.journal
        assert journal is not None
        payload: Dict[str, object] = {
            "format": 1,
            "backend": "distributed",
            "sweep": journal.sweep,
            "label": journal.label,
            "total": journal.total,
            "done": journal.recorded,
            "pending": sched.pending(),
            "failed": len(batch.failures),
            "workers": sorted(slot.worker_id for slot in self._slots
                              if slot.registered),
            "leases": table.snapshot(),
        }
        try:
            staged = path.with_name(path.name + ".tmp")
            staged.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(staged, path)
        except OSError:
            pass  # status is advisory; never fail the sweep over it

    def _clear_status(self, batch: BatchState) -> None:
        path = self._status_path(batch)
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass
