"""Process-pool execution: one executor submit per task attempt.

This is the pre-warm behaviour, preserved verbatim: a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per batch, one pickled
config out and one pickled summary back per task, a parent-side hard
watchdog for wedged workers, broken-pool respawn with lost-task requeue,
and serial degradation after ``max_pool_failures`` respawns.  It remains
selectable (``--backend pool``) as the conservative fallback and as the
baseline the warm backend's ``BENCH_sweep.json`` speedup is measured
against.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from .base import (
    BatchState,
    ExecutionBackend,
    _execute_task,
    _format_chain,
    _worker_init,
    _WorkerOutcome,
    _WorkerTask,
)

if TYPE_CHECKING:
    from ..runner import SweepRunner

__all__ = ["PoolBackend"]


class PoolBackend(ExecutionBackend):
    """Fan tasks out over a per-batch ``ProcessPoolExecutor``."""

    name = "pool"

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly retire a pool (used for wedged/broken pools and
        interrupt cleanup; hung workers cannot be joined)."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        except Exception:
            pass

    def run_batch(self, runner: "SweepRunner", batch: BatchState) -> None:
        configs, keys = batch.configs, batch.keys
        fault_keys, results = batch.fault_keys, batch.results
        journal, failures = batch.journal, batch.failures
        pending: Deque[Tuple[int, int]] = deque((i, 1) for i in batch.work)
        workers = min(runner.jobs, len(batch.work))
        hard_s = runner._hard_timeout_s()
        tick_s = None if hard_s is None else max(0.05, min(0.5, hard_s / 4.0))
        pool: Optional[ProcessPoolExecutor] = None
        #: future -> (batch index, attempt, submission monotonic time)
        in_flight: Dict["Future[_WorkerOutcome]", Tuple[int, int, float]] = {}
        pool_failures = 0

        def _abandon_pool() -> None:
            nonlocal pool, pool_failures
            if pool is not None:
                self._terminate_pool(pool)
                pool = None
            pool_failures += 1
            runner.stats.pool_respawns += 1

        try:
            while pending or in_flight:
                if runner.fail_fast and failures:
                    return
                if pool_failures > runner.max_pool_failures:
                    # Graceful degradation: the pool keeps dying — finish
                    # the remainder serially in-process.
                    for future in in_flight:
                        future.cancel()
                    in_flight.clear()
                    while pending:
                        if runner.fail_fast and failures:
                            return
                        i, attempt = pending.popleft()
                        runner._run_inline(i, attempt, configs, keys,
                                           fault_keys, results, journal,
                                           failures)
                    return
                if pool is None and pending:
                    pool = ProcessPoolExecutor(max_workers=workers,
                                               initializer=_worker_init)
                while pool is not None and pending and len(in_flight) < workers:
                    i, attempt = pending.popleft()
                    task = _WorkerTask(configs[i], fault_keys[i], attempt,
                                       runner.timeout_s, runner.fault_plan)
                    future = pool.submit(_execute_task, task)
                    in_flight[future] = (i, attempt, time.monotonic())
                if not in_flight:
                    continue

                done, _ = wait(set(in_flight), timeout=tick_s,
                               return_when=FIRST_COMPLETED)
                if not done:
                    # Watchdog: a worker past the hard deadline is wedged
                    # beyond its own SIGALRM guard — replace the pool.
                    if hard_s is None:
                        continue
                    now = time.monotonic()
                    wedged = {f for f, (_, _, t_sub) in in_flight.items()
                              if now - t_sub > hard_s}
                    if not wedged:
                        continue
                    _abandon_pool()
                    for future, (i, attempt, t_sub) in list(in_flight.items()):
                        if future in wedged:
                            runner.stats.timeouts += 1
                            runner._retry_or_fail(
                                i, attempt, "timeout",
                                "worker unresponsive past the hard deadline; "
                                "pool replaced", now - t_sub, pending, keys,
                                failures)
                        else:
                            runner._retry_or_fail(
                                i, attempt, "crash",
                                "task lost when an unresponsive pool was "
                                "replaced", now - t_sub, pending, keys,
                                failures)
                    in_flight.clear()
                    continue

                broken = False
                for future in done:
                    i, attempt, t_sub = in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        runner._retry_or_fail(
                            i, attempt, "crash",
                            "worker process exited abnormally "
                            "(BrokenProcessPool)",
                            time.monotonic() - t_sub, pending, keys, failures)
                        continue
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        runner._retry_or_fail(i, attempt, "error",
                                              _format_chain(exc),
                                              time.monotonic() - t_sub,
                                              pending, keys, failures)
                        continue
                    if outcome.ok:
                        assert outcome.summary is not None
                        runner._complete(i, outcome.summary, keys[i], results,
                                         journal)
                    else:
                        if outcome.kind == "timeout":
                            runner.stats.timeouts += 1
                        runner._retry_or_fail(i, attempt, outcome.kind,
                                              outcome.error, outcome.elapsed_s,
                                              pending, keys, failures)
                if broken:
                    # The pool is dead: every other in-flight task is lost
                    # with it.  Requeue only those (completed results are
                    # already recorded), then respawn.
                    for future, (i, attempt, t_sub) in list(in_flight.items()):
                        runner._retry_or_fail(
                            i, attempt, "crash",
                            "task lost when the process pool broke",
                            time.monotonic() - t_sub, pending, keys, failures)
                    in_flight.clear()
                    _abandon_pool()
        except BaseException:
            if pool is not None:
                self._terminate_pool(pool)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
