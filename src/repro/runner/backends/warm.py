"""Persistent warm workers with affinity routing and chunked dispatch.

The ``warm`` backend is the paper's affinity argument applied to the
sweep runner itself.  The ``pool`` backend treats every task like a cold
cache: each submit pickles a config into whichever worker is free, the
worker rebuilds the :class:`~repro.core.exec_model.ExecutionTimeModel`
(penalty caches empty, optional ``REPRO_KERNEL`` JIT recompiled), runs,
and pickles a ~20-field summary back.  The warm backend instead:

- keeps ``jobs`` worker processes alive for the runner's whole lifetime
  (state survives *across* ``run_many`` batches);
- routes tasks to the worker whose process-level caches are already warm
  for their :func:`~repro.runner.affinity.affinity_key` (MRU routing
  with fair-share splitting and idle stealing — see
  :class:`~repro.runner.affinity.AffinityScheduler`);
- dispatches **chunks** of tasks per IPC round-trip — auto-sized so one
  chunk costs roughly :attr:`WarmOptions.target_chunk_s` of simulation
  (measured, not guessed), double-buffered (:data:`_PREFETCH`) so the
  parent's fold-and-refill never idles a worker — and returns each
  chunk's results as one packed block (:mod:`repro.runner.columnar`:
  row layout at dispatcher chunk sizes, columnar numpy matrices for
  oversized blocks; the crossover is measured, see that module);
- on the worker, reuses one memoized model per affinity key
  (:data:`_MODEL_CACHE`) — injection is validated per task and is a pure
  memoization transplant, so results are bit-identical to cold
  execution;
- ships runtime policy registrations with every chunk
  (:func:`~repro.core.policies.dynamic_policy_entries`): a per-batch
  pool inherits late registrations (e.g. E11's reference policy) by
  forking after them, a persistent worker has to be told.

Fault tolerance mirrors the pool backend: per-task SIGALRM deadlines
inside workers, a parent-side hard watchdog that replaces wedged
workers, crash detection via pipe EOF with chunk requeue, serial
degradation after ``max_pool_failures`` respawns, and graceful
interrupt propagation (a worker-side injected interrupt folds its
completed prefix into the journal before the parent re-raises).  When a
:class:`~repro.runner.faults.FaultPlan` is armed, chunks are forced to
one task so failure attribution stays per-task, exactly matching the
pool backend's per-future semantics.

Worker-held mutable caches in this package must be registered in
:data:`_WARM_LEDGER` and cleared by :func:`reset_warm_state` — enforced
by lint rule RPR012, so no future cache can silently leak state across
affinity keys.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import weakref
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _conn_wait
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ...core.exec_model import ExecutionTimeModel
from ...core.policies import dynamic_policy_entries, merge_policy_entries
from ...sim.system import SystemConfig
from ..affinity import AffinityScheduler, QueuedTask, affinity_key
from ..columnar import pack_block, unpack_block
from .base import (
    BatchState,
    ExecutionBackend,
    _execute_task,
    _worker_init,
    _WorkerOutcome,
    _WorkerTask,
)

if TYPE_CHECKING:
    from ..runner import SweepRunner

__all__ = ["WarmBackend", "WarmOptions", "reset_warm_state"]


# ----------------------------------------------------------------------
# Worker-side warm state (lives in the worker process, module level so it
# survives across chunks; every entry here is governed by RPR012)
# ----------------------------------------------------------------------

#: Memoized execution-time models, one per affinity key.  Reuse is safe
#: because a model's only mutable state is a bounded memo table of a
#: pure function plus observability counters — bit-identical results are
#: guaranteed by construction and enforced by the determinism suite.
_MODEL_CACHE: Dict[str, ExecutionTimeModel] = {}

#: Bound on :data:`_MODEL_CACHE` (FIFO eviction): a sweep rarely carries
#: more than a handful of exec-model parameterizations at once.
_MODEL_CACHE_MAX = 8

#: Ledger of worker-held mutable caches: global name -> why it is safe
#: to hold across tasks.  Lint rule RPR012 cross-checks that every
#: module-level mutable container in ``runner/backends/`` appears here
#: *and* is cleared by :func:`reset_warm_state`.
_WARM_LEDGER: Dict[str, str] = {
    "_MODEL_CACHE": (
        "per-affinity-key ExecutionTimeModel: penalty memo of a pure "
        "function + compiled kernel; validated against each task's "
        "config before use, so reuse can never change results"
    ),
}


def reset_warm_state() -> None:
    """Drop every worker-held cache (fresh-process semantics).

    Called on worker start; also the RPR012 anchor: every ledger entry
    must be cleared here so 'what state can a warm worker carry?' has
    exactly one auditable answer.
    """
    _MODEL_CACHE.clear()


def _model_matches(model: ExecutionTimeModel, config: SystemConfig) -> bool:
    """Whether ``model`` was built from exactly this config's exec-model
    parameters (defensive per-task check — routing bugs degrade to a
    cold build, never to wrong results)."""
    return bool(
        model.costs == config.costs
        and model.composition == config.composition
        and model.hierarchy == config.platform.hierarchy
    )


def _model_for(akey: str, config: SystemConfig) -> ExecutionTimeModel:
    """The warm model for ``akey``, built (and cached) on first use."""
    model = _MODEL_CACHE.get(akey)
    if model is not None and _model_matches(model, config):
        return model
    model = ExecutionTimeModel(
        config.costs, config.composition, config.platform.hierarchy)
    if len(_MODEL_CACHE) >= _MODEL_CACHE_MAX:
        _MODEL_CACHE.pop(next(iter(_MODEL_CACHE)))
    _MODEL_CACHE[akey] = model
    return model


#: meta entry per executed task: (ok, kind, error, elapsed_s)
_TaskMeta = Tuple[bool, str, str, float]


def _run_chunk(akey: str, tasks: Sequence[_WorkerTask],
               ) -> Tuple[Tuple[_TaskMeta, ...], Dict[str, Any], bool]:
    """Execute one chunk in this process; returns (meta, block, interrupted).

    Separated from the worker loop so tests can drive the exact
    chunk-execution path in-process and inspect :data:`_MODEL_CACHE`.
    """
    model = _model_for(akey, tasks[0].config)
    outcomes: List[_WorkerOutcome] = []
    interrupted = False
    for task in tasks:
        use = model if _model_matches(model, task.config) else None
        try:
            outcomes.append(_execute_task(task, model=use))
        except KeyboardInterrupt:
            interrupted = True
            break
    summaries = [o.summary for o in outcomes
                 if o.ok and o.summary is not None]
    block = pack_block(summaries)
    meta = tuple((o.ok, o.kind, o.error, o.elapsed_s) for o in outcomes)
    return meta, block, interrupted


def _warm_worker_main(conn: Connection) -> None:
    """Worker process entrypoint: serve chunks until 'stop' or EOF.

    Module-level for pickle-safety under spawn contexts (RPR006).
    SIGINT is ignored so a Ctrl-C in the parent's terminal takes the
    parent's graceful-shutdown path (checkpoint flush + resume hint)
    instead of racing worker deaths against it; the parent terminates
    workers explicitly.
    """
    _worker_init()
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    reset_warm_state()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            conn.close()
            return
        _, chunk_id, akey, tasks, policy_entries = msg
        # Registry entries the parent gained after this worker spawned
        # (e.g. E11's runtime-registered ips-random reference policy): a
        # per-batch pool inherits them by forking late, a persistent
        # worker must be told or it cannot resolve the policy by name.
        merge_policy_entries(policy_entries)
        meta, block, interrupted = _run_chunk(akey, tasks)
        try:
            conn.send(("done", chunk_id, meta, block, interrupted))
        except (BrokenPipeError, OSError):
            return


def _terminate_processes(procs: List[BaseProcess]) -> None:
    """Finalizer/cleanup helper: hard-stop every listed worker."""
    for proc in list(procs):
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:
            pass
    procs.clear()


def _mp_context() -> BaseContext:
    """Fork where available (fast, inherits imports); default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WarmOptions:
    """Tuning and test levers for the warm backend.

    None of these can affect results — only wall-clock and routing
    counters (the determinism suite runs adversarial combinations).
    """

    #: Fixed tasks per chunk (None = auto-size from measured task cost).
    chunk_tasks: Optional[int] = None
    #: Routing mode: "affinity" (MRU + fair share + stealing) or
    #: "scatter" (adversarial round-robin, for determinism tests).
    route: str = "affinity"
    #: Auto-sizing target: one chunk should cost about this much wall-clock.
    target_chunk_s: float = 0.2
    #: Upper bound on auto-sized chunks.
    max_chunk_tasks: int = 64

    def __post_init__(self) -> None:
        if self.chunk_tasks is not None and self.chunk_tasks < 1:
            raise ValueError("chunk_tasks must be >= 1 (or None = auto)")
        if self.route not in ("affinity", "scatter"):
            raise ValueError(f"route must be 'affinity' or 'scatter', "
                             f"got {self.route!r}")
        if self.target_chunk_s <= 0:
            raise ValueError("target_chunk_s must be positive")
        if self.max_chunk_tasks < 1:
            raise ValueError("max_chunk_tasks must be >= 1")


class _ChunkSizer:
    """Auto-size chunks from an EMA of measured per-task cost.

    Starts at 1 (a probe), then targets ``target_s`` of work per chunk
    so IPC overhead amortizes without head-of-line blocking.  The EMA
    survives across batches — a runner's second sweep starts warm here
    too.
    """

    def __init__(self, target_s: float, max_tasks: int) -> None:
        self._target_s = target_s
        self._max_tasks = max_tasks
        self._ema_s: Optional[float] = None

    def observe(self, elapsed_s: Sequence[float]) -> None:
        for sample in elapsed_s:
            if self._ema_s is None:
                self._ema_s = sample
            else:
                self._ema_s = 0.5 * self._ema_s + 0.5 * sample

    def size(self) -> int:
        if self._ema_s is None:
            return 1
        per_task = max(self._ema_s, 1e-6)
        return max(1, min(self._max_tasks, int(self._target_s / per_task)))


#: Chunks in flight per worker: one running plus one queued behind it in
#: the worker's pipe, so finishing a chunk never leaves the worker idle
#: while the parent wakes up, folds results, and refills — with ~1 ms
#: tasks that gap is the dominant dispatch overhead.
_PREFETCH = 2


class _WarmWorker:
    """Parent-side handle of one worker process.

    ``chunks`` is the in-flight queue, oldest first: the worker executes
    pipe messages in order, so the head entry is the chunk whose results
    arrive next.
    """

    __slots__ = ("idx", "process", "conn", "chunks", "t_sub")

    def __init__(self, idx: int, process: BaseProcess, conn: Connection) -> None:
        self.idx = idx
        self.process = process
        self.conn = conn
        self.chunks: Deque[Tuple[int, List[QueuedTask]]] = deque()
        self.t_sub = 0.0  # when the worker last became busy / was folded

    def inflight(self) -> int:
        return sum(len(tasks) for _, tasks in self.chunks)


class WarmBackend(ExecutionBackend):
    """Long-lived affinity-routed workers (see module docstring)."""

    name = "warm"

    def __init__(self, options: Optional[WarmOptions] = None) -> None:
        self.options = options if options is not None else WarmOptions()
        self._ctx = _mp_context()
        self._workers: List[_WarmWorker] = []
        self._procs: List[BaseProcess] = []      # shared with the finalizer
        self._sched: Optional[AffinityScheduler] = None
        self._sizer = _ChunkSizer(self.options.target_chunk_s,
                                  self.options.max_chunk_tasks)
        self._chunk_counter = 0
        self._finalizer = weakref.finalize(
            self, _terminate_processes, self._procs)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, idx: int) -> _WarmWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_warm_worker_main, args=(child_conn,),
            daemon=True, name=f"repro-warm-{idx}")
        process.start()
        child_conn.close()
        self._procs.append(process)
        return _WarmWorker(idx, process, parent_conn)

    def _ensure_workers(self, n: int) -> None:
        while len(self._workers) < n:
            self._workers.append(self._spawn(len(self._workers)))

    def _kill_worker(self, worker: _WarmWorker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        try:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # wedged past SIGTERM
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
        except Exception:
            pass
        if worker.process in self._procs:
            self._procs.remove(worker.process)

    def _respawn(self, worker: _WarmWorker, runner: "SweepRunner") -> None:
        """Replace a dead/wedged worker with a cold one."""
        self._kill_worker(worker)
        fresh = self._spawn(worker.idx)
        self._workers[worker.idx] = fresh
        if self._sched is not None:
            self._sched.mru[worker.idx] = None  # its caches died with it
        runner.stats.pool_respawns += 1

    def _shutdown(self, graceful: bool) -> None:
        """Stop every worker (``graceful`` asks idle workers to exit
        cleanly first; abnormal paths go straight to terminate)."""
        for worker in self._workers:
            if graceful and not worker.chunks:
                try:
                    worker.conn.send(("stop",))
                    worker.process.join(timeout=1.0)
                except (OSError, ValueError):
                    pass
            self._kill_worker(worker)
        self._workers.clear()

    def close(self) -> None:
        self._shutdown(graceful=True)

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _ensure_sched(self, n_workers: int) -> AffinityScheduler:
        if self._sched is None or self._sched.n_workers != n_workers:
            self._sched = AffinityScheduler(n_workers,
                                            route=self.options.route)
        return self._sched

    def _chunk_cap(self, runner: "SweepRunner") -> Optional[int]:
        """Fixed chunk size, if any: fault injection forces single-task
        chunks so failure attribution stays per-task (matching the pool
        backend's per-future semantics); otherwise the explicit option."""
        if runner.fault_plan is not None:
            return 1
        return self.options.chunk_tasks

    def run_batch(self, runner: "SweepRunner", batch: BatchState) -> None:
        sched = self._ensure_sched(runner.jobs)
        stats0 = (sched.stats.routed_affine, sched.stats.steals)
        sched.assign([
            QueuedTask(i, 1, affinity_key(batch.configs[i]))
            for i in batch.work
        ])
        fixed_chunk = self._chunk_cap(runner)
        # Double-buffer dispatch: keep one chunk queued behind the one a
        # worker is running, so the parent's fold-and-refill latency never
        # leaves the worker idle.  Fault plans drop to one in flight so a
        # failure is always attributable to the chunk the parent knows is
        # running (matching the pool backend's per-future semantics).
        prefetch = 1 if runner.fault_plan is not None else _PREFETCH
        hard_s = runner._hard_timeout_s()
        tick_s = None if hard_s is None else max(0.05, min(0.5, hard_s / 4.0))
        respawns = 0
        try:
            self._ensure_workers(runner.jobs)
            while True:
                if runner.fail_fast and batch.failures:
                    # In-flight chunks are abandoned with their workers:
                    # a stale result arriving later could corrupt the
                    # next batch, so failing fast retires the fleet.
                    self._shutdown(graceful=False)
                    return
                if respawns > runner.max_pool_failures:
                    # Graceful degradation: workers keep dying — finish
                    # the remainder serially in-process.  Surviving
                    # workers' in-flight chunks are requeued first (no
                    # attempt consumed: the parent is killing them, they
                    # did nothing wrong).
                    for worker in self._workers:
                        while worker.chunks:
                            _, tasks = worker.chunks.popleft()
                            for t in tasks:
                                sched.push(t)
                    self._shutdown(graceful=False)
                    for t in sched.drain():
                        if runner.fail_fast and batch.failures:
                            return
                        runner._run_inline(t.index, t.attempt, batch.configs,
                                           batch.keys, batch.fault_keys,
                                           batch.results, batch.journal,
                                           batch.failures)
                    return

                # Breadth-first fill: every worker gets its first chunk
                # before anyone gets a prefetch top-up, so an idle worker
                # still sees steal-able work on its peers' queues.  The
                # spread cap is computed once per pass over pending work
                # divided across every in-flight slot — recomputing it per
                # dispatch lets the early workers swallow the whole batch
                # at level 0, leaving nothing to double-buffer.
                spread = max(1, -(-sched.pending()
                                  // (len(self._workers) * prefetch)))
                for level in range(prefetch):
                    for worker in self._workers:
                        if (len(worker.chunks) <= level and sched.pending()
                                and not (runner.fail_fast
                                         and batch.failures)):
                            if not self._dispatch(worker, runner, batch,
                                                  sched, fixed_chunk,
                                                  spread):
                                respawns += 1
                busy = [w for w in self._workers if w.chunks]
                if not busy:
                    if sched.pending() == 0:
                        return  # batch complete; workers stay warm
                    continue    # all dispatches failed; respawn path above

                ready = _conn_wait([w.conn for w in busy], timeout=tick_s)
                now = time.monotonic()
                if not ready:
                    if hard_s is None:
                        continue
                    for worker in busy:
                        budget_s = hard_s * worker.inflight() + 1.0
                        if now - worker.t_sub > budget_s:
                            # Wedged beyond its own SIGALRM guard.
                            self._requeue_chunk(
                                worker, "timeout",
                                "warm worker unresponsive past the hard "
                                "deadline; worker replaced",
                                now, runner, batch, sched)
                            self._respawn(worker, runner)
                            respawns += 1
                    continue

                by_conn = {id(w.conn): w for w in busy}
                for conn in ready:
                    worker = by_conn[id(conn)]
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-chunk (crash/OOM-kill): its
                        # caches and any unsent results are gone; requeue
                        # the whole chunk and respawn cold.
                        self._requeue_chunk(
                            worker, "crash",
                            "warm worker process died mid-chunk",
                            now, runner, batch, sched)
                        self._respawn(worker, runner)
                        respawns += 1
                        continue
                    self._fold(worker, msg, runner, batch, sched)
        except BaseException:
            # Interrupt/unexpected error: in-flight workers may still be
            # computing — retire them so no stale result can ever land.
            self._shutdown(graceful=False)
            raise
        finally:
            runner.stats.affinity_hits += \
                sched.stats.routed_affine - stats0[0]
            runner.stats.steals += sched.stats.steals - stats0[1]

    # ------------------------------------------------------------------
    def _dispatch(self, worker: _WarmWorker, runner: "SweepRunner",
                  batch: BatchState, sched: AffinityScheduler,
                  fixed_chunk: Optional[int], spread: int) -> bool:
        """Send the worker its next chunk.  Returns False when the worker
        turned out to be dead (tasks go back to the queues unconsumed)."""
        size = fixed_chunk if fixed_chunk is not None else self._sizer.size()
        size = max(1, min(size, spread))
        chunk = sched.next_chunk(worker.idx, size)
        if not chunk:
            return True
        tasks = tuple(
            _WorkerTask(batch.configs[t.index], batch.fault_keys[t.index],
                        t.attempt, runner.timeout_s, runner.fault_plan)
            for t in chunk
        )
        self._chunk_counter += 1
        try:
            worker.conn.send(("run", self._chunk_counter, chunk[0].key,
                              tasks, dynamic_policy_entries()))
        except (BrokenPipeError, OSError):
            # Dead before dispatch: this chunk never left the parent and
            # any chunks already queued in the pipe died unexecuted with
            # the worker, so all of them re-queue without consuming an
            # attempt (the crash path that *does* consume one is a worker
            # dying mid-chunk, detected at recv).
            for t in chunk:
                sched.push(t)
            while worker.chunks:
                _, queued = worker.chunks.popleft()
                for t in queued:
                    sched.push(t)
            self._respawn(worker, runner)
            return False
        if not worker.chunks:
            worker.t_sub = time.monotonic()
        worker.chunks.append((self._chunk_counter, list(chunk)))
        runner.stats.chunks += 1
        return True

    def _retry_task(self, t: QueuedTask, kind: str, error: str,
                    elapsed_s: float, runner: "SweepRunner",
                    batch: BatchState, sched: AffinityScheduler) -> None:
        """Warm-side mirror of ``SweepRunner._retry_or_fail``."""
        if t.attempt <= runner.retries:
            runner.stats.retries += 1
            runner._backoff(t.attempt)
            sched.push(QueuedTask(t.index, t.attempt + 1, t.key))
        else:
            runner._fail(t.index, batch.keys[t.index], kind, error,
                         t.attempt, elapsed_s, batch.failures)

    def _requeue_chunk(self, worker: _WarmWorker, kind: str, error: str,
                       now: float, runner: "SweepRunner", batch: BatchState,
                       sched: AffinityScheduler) -> None:
        """Retire a lost/wedged worker's in-flight chunks into retries.

        Everything queued in the pipe is charged an attempt: the parent
        cannot know how far into the queue the worker got before it died
        or wedged, so the conservative accounting treats all of it as a
        failed attempt (results stay correct either way — a re-run is
        bit-identical)."""
        elapsed_s = now - worker.t_sub
        while worker.chunks:
            _, chunk = worker.chunks.popleft()
            for t in chunk:
                if kind == "timeout":
                    runner.stats.timeouts += 1
                self._retry_task(t, kind, error, elapsed_s, runner, batch,
                                 sched)

    def _fold(self, worker: _WarmWorker, msg: Tuple[Any, ...],
              runner: "SweepRunner", batch: BatchState,
              sched: AffinityScheduler) -> None:
        """Fold one chunk response into results/journal/retries."""
        tag, chunk_id, meta, block, interrupted = msg
        if not worker.chunks:
            raise RuntimeError(
                f"warm worker protocol violation: unsolicited {tag!r} for "
                f"chunk {chunk_id}")
        expected_id, chunk = worker.chunks.popleft()
        if tag != "done" or chunk_id != expected_id:
            raise RuntimeError(
                f"warm worker protocol violation: got {tag!r} for chunk "
                f"{chunk_id} while expecting {expected_id}")
        summaries = unpack_block(block)
        cursor = 0
        samples: List[float] = []
        for t, (ok, kind, error, elapsed_s) in zip(chunk, meta):
            if ok:
                runner._complete(t.index, summaries[cursor],
                                 batch.keys[t.index], batch.results,
                                 batch.journal)
                cursor += 1
                samples.append(elapsed_s)
            else:
                if kind == "timeout":
                    runner.stats.timeouts += 1
                self._retry_task(t, kind, error, elapsed_s, runner, batch,
                                 sched)
        self._sizer.observe(samples)
        if worker.chunks:
            # The prefetched chunk started the moment the worker sent this
            # response; restart its watchdog clock from the fold.
            worker.t_sub = time.monotonic()
        if interrupted:
            # The worker stopped at an (injected or delivered) interrupt;
            # completed work above is already journaled — propagate the
            # graceful-shutdown path exactly like a serial interrupt.
            raise KeyboardInterrupt("sweep interrupted in a warm worker")
