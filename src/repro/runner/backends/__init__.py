"""Pluggable sweep-execution backends.

``serial`` runs in-process (the bit-identity reference), ``pool`` is the
per-batch ``ProcessPoolExecutor`` fan-out, ``warm`` keeps persistent
affinity-routed workers alive across batches, and ``distributed`` puts
the same affinity-routed dispatch behind a network transport — a
coordinator leasing task chunks to stateless worker agents with
heartbeat expiry and idempotent commit (``docs/DISTRIBUTED.md``).  All
four fold results through the same
:class:`~repro.runner.runner.SweepRunner` machinery (cache, checkpoint
journal, retries), so backend choice can never change results — only
wall-clock.
"""

from __future__ import annotations

from typing import Optional

from .base import BatchState, ExecutionBackend
from .distributed import DistributedBackend, DistributedOptions
from .pool import PoolBackend
from .serial import SerialBackend
from .warm import WarmBackend, WarmOptions, reset_warm_state

__all__ = [
    "BACKEND_NAMES",
    "BatchState",
    "DistributedBackend",
    "DistributedOptions",
    "ExecutionBackend",
    "PoolBackend",
    "SerialBackend",
    "WarmBackend",
    "WarmOptions",
    "make_backend",
    "reset_warm_state",
]

#: Valid ``--backend`` choices (immutable on purpose: a registry dict
#: here would itself be module-level mutable state under RPR012).
BACKEND_NAMES = ("serial", "pool", "warm", "distributed")


def make_backend(name: str,
                 warm_options: Optional[WarmOptions] = None,
                 distributed_options: Optional[DistributedOptions] = None,
                 ) -> ExecutionBackend:
    """Instantiate the named backend (``warm_options`` applies to warm,
    ``distributed_options`` to distributed)."""
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return PoolBackend()
    if name == "warm":
        return WarmBackend(warm_options)
    if name == "distributed":
        return DistributedBackend(distributed_options)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
