"""Pluggable sweep-execution backends.

``serial`` runs in-process (the bit-identity reference), ``pool`` is the
per-batch ``ProcessPoolExecutor`` fan-out, and ``warm`` keeps persistent
affinity-routed workers alive across batches.  All three fold results
through the same :class:`~repro.runner.runner.SweepRunner` machinery
(cache, checkpoint journal, retries), so backend choice can never change
results — only wall-clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .base import BatchState, ExecutionBackend
from .pool import PoolBackend
from .serial import SerialBackend
from .warm import WarmBackend, WarmOptions, reset_warm_state

if TYPE_CHECKING:
    pass

__all__ = [
    "BACKEND_NAMES",
    "BatchState",
    "ExecutionBackend",
    "PoolBackend",
    "SerialBackend",
    "WarmBackend",
    "WarmOptions",
    "make_backend",
    "reset_warm_state",
]

#: Valid ``--backend`` choices (immutable on purpose: a registry dict
#: here would itself be module-level mutable state under RPR012).
BACKEND_NAMES = ("serial", "pool", "warm")


def make_backend(name: str,
                 warm_options: Optional[WarmOptions] = None,
                 ) -> ExecutionBackend:
    """Instantiate the named backend (``warm_options`` applies to warm)."""
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return PoolBackend()
    if name == "warm":
        return WarmBackend(warm_options)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
