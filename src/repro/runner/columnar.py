"""Block transport of simulation summaries between processes.

The warm backend returns each chunk's results as one **block** — a
single pickled payload per chunk instead of one per task.  Blocks have
two layouts, chosen by measured crossover:

``rows``
    The summaries travel as a plain tuple.  For the ~20-field
    :class:`~repro.sim.metrics.SimulationSummary`, pickle's C-level
    dataclass walk is *faster than any columnar repack at every chunk
    size the dispatcher emits* (measured on the benchmark box: 6 µs/task
    for rows vs 19-61 µs/task for per-field numpy arrays at chunks of
    2-32 — array-construction fixed costs never amortize over so few
    rows).  Local pipes are CPU-bound, not bandwidth-bound, so the row
    layout is the default.

``columnar``
    Scalar fields travel as two dense numpy matrices (``int64`` /
    ``float64``, one column per field) and ragged tuple/dict fields as
    row tuples.  This is ~20%% more byte-compact than rows and its fixed
    costs amortize over large blocks, so it engages at
    :data:`_COLUMNAR_MIN_ROWS` — beyond the dispatcher's default chunk
    cap, i.e. only for oversized blocks (bulk result shipping, future
    network transports) where compactness beats the repack cost.

Either way the packing is *exact*, not approximate: scalars round-trip
as ``int64`` / IEEE-double ``float64``, and :func:`unpack_block`
restores the pure-Python types (`int`, `float`, `tuple`, `dict`) the
rest of the machinery — dataclass equality, the JSON result cache, the
checkpoint journal — expects.  ``unpack_block(pack_block(xs)) == xs``
holds field for field in both layouts;
``tests/runner/test_backends.py`` pins it.

Every :class:`SimulationSummary` field must be classified below; a
schema drift (new field, changed shape) fails loudly at import time
rather than silently truncating transported results.
"""

from __future__ import annotations

import dataclasses
import operator
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..sim.metrics import SimulationSummary

__all__ = ["pack_block", "unpack_block"]

#: Scalar int fields -> one int64 matrix column each (columnar layout).
_INT_FIELDS: Tuple[str, ...] = (
    "n_packets",
    "max_backlog",
    "final_backlog",
    "out_of_order_total",
    "migrations_total",
)

#: Scalar float fields -> one float64 matrix column each (columnar layout).
_FLOAT_FIELDS: Tuple[str, ...] = (
    "duration_us",
    "mean_delay_us",
    "mean_queueing_us",
    "mean_exec_us",
    "mean_lock_wait_us",
    "p50_delay_us",
    "p95_delay_us",
    "p99_delay_us",
    "throughput_pps",
    "offered_rate_pps",
)

#: Ragged tuples of floats -> shipped as row tuples.
_FLOAT_TUPLE_FIELDS: Tuple[str, ...] = ("delay_ci_us", "utilization_per_proc")

#: Ragged ``Dict[int, float]`` -> shipped as row tuples.
_INT_FLOAT_DICT_FIELDS: Tuple[str, ...] = ("per_stream_mean_delay_us",)

#: Ragged ``Dict[int, int]`` -> shipped as row tuples.
_INT_INT_DICT_FIELDS: Tuple[str, ...] = (
    "ooo_depth_counts",
    "per_stream_out_of_order",
    "per_stream_migrations",
)

_RAGGED_FIELDS: Tuple[str, ...] = (
    _FLOAT_TUPLE_FIELDS + _INT_FLOAT_DICT_FIELDS + _INT_INT_DICT_FIELDS
)

#: Blocks smaller than this ship as rows (see module docstring: the row
#: layout is measurably faster at every dispatcher-emitted chunk size,
#: so this sits just past :attr:`WarmOptions.max_chunk_tasks`).
_COLUMNAR_MIN_ROWS = 128


def _check_schema() -> None:
    """Fail at import if the summary schema and this classification drift."""
    declared = (set(_INT_FIELDS) | set(_FLOAT_FIELDS) | set(_RAGGED_FIELDS))
    actual = {f.name for f in dataclasses.fields(SimulationSummary)}
    if declared != actual:
        missing = sorted(actual - declared)
        stale = sorted(declared - actual)
        raise TypeError(
            "columnar transport schema drifted from SimulationSummary: "
            f"unclassified fields {missing}, stale entries {stale}; "
            "classify every field in repro/runner/columnar.py"
        )


_check_schema()

# attrgetter pulls a whole row of fields in one C call; with >= 2 names
# it returns a tuple, so each helper yields ready-made matrix rows.
_GET_INTS = operator.attrgetter(*_INT_FIELDS)
_GET_FLOATS = operator.attrgetter(*_FLOAT_FIELDS)
_GET_RAGGED = operator.attrgetter(*_RAGGED_FIELDS)


def pack_block(summaries: Sequence[SimulationSummary]) -> Dict[str, Any]:
    """Pack summaries into one transportable block (layout per size)."""
    n = len(summaries)
    if n < _COLUMNAR_MIN_ROWS:
        return {"n": n, "rows": tuple(summaries)}
    return {
        "n": n,
        "ints": np.array([_GET_INTS(s) for s in summaries], dtype=np.int64),
        "floats": np.array([_GET_FLOATS(s) for s in summaries],
                           dtype=np.float64),
        "ragged": tuple(_GET_RAGGED(s) for s in summaries),
    }


def unpack_block(block: Dict[str, Any]) -> List[SimulationSummary]:
    """Rebuild the summaries with exact pure-Python field types."""
    rows = block.get("rows")
    if rows is not None:
        return list(rows)
    n = int(block["n"])
    int_rows = block["ints"].tolist()
    float_rows = block["floats"].tolist()
    ragged_rows = block["ragged"]
    out: List[SimulationSummary] = []
    for i in range(n):
        kwargs: Dict[str, Any] = dict(zip(_INT_FIELDS, int_rows[i]))
        kwargs.update(zip(_FLOAT_FIELDS, float_rows[i]))
        kwargs.update(zip(_RAGGED_FIELDS, ragged_rows[i]))
        out.append(SimulationSummary(**kwargs))
    return out
