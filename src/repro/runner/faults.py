"""Deterministic fault injection for the sweep runner.

Resilience must be *tested*, not assumed: the related work this repo
draws on (Flow Director's reordering pathology, work-stealing's cache
misbehaviour) only surfaced failure modes under adversarial conditions.
This module provides the adversary — a :class:`FaultPlan` that injects
worker crashes, hangs, raised exceptions, cache corruption, and
interrupts into the *real* execution paths of
:class:`~repro.runner.runner.SweepRunner` and
:class:`~repro.runner.cache.ResultCache` — plus a scenario harness
(:func:`run_fault_suite`, CLI ``repro faults``) that proves each failure
path behaves as specified.

Every injection decision is a pure function of ``(plan seed, fault kind,
task key, attempt number)`` — a SHA-256 threshold test, no RNG object,
no wall clock — so a fault run replays bit-identically: the same tasks
crash, hang, or corrupt on the same attempts, on any machine, under any
worker count.  With ``plan=None`` (the default everywhere) the injection
hooks are inert and the happy path is untouched.

Fault kinds
-----------
``crash``
    The worker process exits abnormally (``os._exit``), breaking the
    process pool mid-task.  In inline/serial execution (where a real
    crash would kill the caller) it degrades to a raised
    :class:`InjectedFault` tagged as a simulated crash.
``hang``
    The worker sleeps for ``hang_s`` before simulating — long enough to
    trip any configured task timeout.
``error``
    The worker raises :class:`InjectedFault` instead of returning.
``corrupt``
    :meth:`ResultCache.put` writes a torn (truncated) entry, exercising
    the quarantine-and-recompute path on the next read.
``interrupt``
    The task raises :class:`KeyboardInterrupt`, exercising the graceful
    shutdown + checkpoint-flush path exactly as a user Ctrl-C would.

Network fault kinds (distributed backend only)
----------------------------------------------
These are decided at the coordinator's transport edge by
:class:`~repro.runner.backends.transport.ChaosCoordinatorTransport`,
keyed per ``"<worker>|<message-type>"`` with a per-key sequence number
as the attempt — same sha256 threshold test, so a chaos run replays
bit-identically from its seed (``repro faults --backend distributed``).

``drop``
    The message silently vanishes (the sender believes it was sent).
``delay``
    The message is held for ``delay_polls`` coordinator polls before
    delivery (counted, never timed), arriving late and out of order
    relative to other workers.
``duplicate``
    The message is delivered twice — the at-least-once adversary the
    idempotent commit gate must absorb.
``partition``
    All of one worker's traffic (both directions) vanishes for whole
    windows of ``partition_window`` messages; the partition heals as
    the worker's traffic (e.g. idle re-hellos) advances the window.
``kill``
    The worker agent process exits abnormally on receipt of its Nth
    lease — the fleet-loss adversary behind ``max_fleet_failures``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from ..sim.system import SystemConfig
    from .backends.distributed import DistributedOptions

__all__ = [
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "ScenarioResult",
    "TaskTimeout",
    "run_fault_suite",
]

#: Every fault kind a plan can inject (see module docstring).
FAULT_KINDS: Tuple[str, ...] = (
    "crash", "hang", "error", "corrupt", "interrupt",
    "drop", "delay", "duplicate", "partition", "kill",
)

#: The kinds decided at the transport edge (message-level); any nonzero
#: rate among these makes the distributed backend wrap its transport in
#: the chaos layer.
NETWORK_FAULT_KINDS: Tuple[str, ...] = (
    "drop", "delay", "duplicate", "partition")


class InjectedFault(RuntimeError):
    """An artificial failure raised by an active :class:`FaultPlan`."""


class TaskTimeout(RuntimeError):
    """A task exceeded its wall-clock budget (raised by the runner's
    deadline guard, and reported as a ``timeout`` failure)."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, reproducible fault-injection schedule.

    Each per-kind field is an injection probability in ``[0, 1]``
    evaluated *deterministically* per ``(key, attempt)`` — see
    :meth:`decide`.  ``max_faulty_attempts`` bounds injection to the
    first N attempts of a task (the default ``1`` makes every fault
    transient, so a single retry succeeds); ``None`` injects on every
    attempt (permanent faults, for exercising retry exhaustion).
    ``only_keys`` restricts injection to an explicit set of task keys.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    error: float = 0.0
    corrupt: float = 0.0
    interrupt: float = 0.0
    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    partition: float = 0.0
    kill: float = 0.0
    #: Inject only while ``attempt <= max_faulty_attempts`` (None = always).
    max_faulty_attempts: Optional[int] = 1
    #: How long a ``hang`` injection sleeps before (never) completing.
    hang_s: float = 30.0
    #: Restrict injection to these task keys (None = any key).
    only_keys: Optional[Tuple[str, ...]] = None
    #: Messages per partition window: a partitioned worker loses whole
    #: windows of traffic and heals as its traffic advances the window.
    partition_window: int = 8
    #: Coordinator polls a delayed message is held for.
    delay_polls: int = 3

    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
        return float(getattr(self, "error" if kind == "error" else kind))

    def decide(self, kind: str, key: str, attempt: int = 1) -> bool:
        """Whether to inject ``kind`` into attempt ``attempt`` of task
        ``key`` — a pure function of the plan and its arguments."""
        probability = self.rate(kind)
        if probability <= 0.0:
            return False
        if self.only_keys is not None and key not in self.only_keys:
            return False
        if self.max_faulty_attempts is not None and attempt > self.max_faulty_attempts:
            return False
        blob = f"{self.seed}|{kind}|{key}|{attempt}".encode()
        digest = hashlib.sha256(blob).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < probability

    def affected(self, kind: str, keys: List[str], attempt: int = 1) -> List[str]:
        """The subset of ``keys`` this plan injects ``kind`` into at
        ``attempt`` (harness/test helper)."""
        return [k for k in keys if self.decide(kind, k, attempt)]


# ----------------------------------------------------------------------
# Scenario harness: prove each failure path against the real runner.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fault-injection scenario."""

    name: str
    ok: bool
    detail: str


def _scenario_grid(n: int, seed: int) -> "List[SystemConfig]":
    """``n`` tiny, fast, independent simulation configs."""
    from ..sim.system import SystemConfig
    from ..workloads.traffic import TrafficSpec

    return [
        SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(2, 6_000.0),
            paradigm="locking",
            policy="mru",
            duration_us=30_000.0,
            warmup_us=5_000.0,
            seed=seed * 100 + i,
        )
        for i in range(n)
    ]


def _grid_keys(configs: "List[SystemConfig]") -> List[str]:
    from .keys import config_key

    return [config_key(cfg) for cfg in configs]


def _dist_opts(backend: str, transport: str, *,
               lease_timeout_s: float = 60.0,
               idle_poll_s: float = 0.5,
               max_fleet_failures: int = 3,
               spool_dir: Optional[str] = None,
               ) -> "Optional[DistributedOptions]":
    """Transport/tuning selection for scenarios parameterized over
    backends (None for every backend that takes no transport).  Keyword
    defaults mirror :class:`DistributedOptions`."""
    if backend != "distributed":
        return None
    from .backends.distributed import DistributedOptions

    return DistributedOptions(transport=transport,
                              lease_timeout_s=lease_timeout_s,
                              idle_poll_s=idle_poll_s,
                              max_fleet_failures=max_fleet_failures,
                              spool_dir=spool_dir)


def _scenario_crash_retry(workdir: Path, jobs: int, seed: int,
                          backend: str, transport: str) -> ScenarioResult:
    """A crashed worker breaks the pool; the runner respawns it, requeues
    the lost tasks, retries the crasher, and the sweep completes with
    results identical to a fault-free serial run."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, crash=0.5, max_faulty_attempts=1)
    runner = SweepRunner(jobs=max(2, jobs), backend=backend, retries=2,
                         backoff_base_s=0.0, timeout_s=60.0, fault_plan=plan,
                         distributed_options=_dist_opts(backend, transport))
    results = runner.run_many(configs)
    runner.close()
    crashed = len(plan.affected("crash", _grid_keys(configs)))
    ok = (results == reference and crashed > 0
          and runner.stats.pool_respawns >= 1 and runner.stats.retries >= crashed)
    return ScenarioResult(
        "crash-retry-completes", ok,
        f"{crashed} injected crash(es), {runner.stats.pool_respawns} pool "
        f"respawn(s), {runner.stats.retries} retries; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_hang_timeout(workdir: Path, jobs: int, seed: int,
                           backend: str, transport: str) -> ScenarioResult:
    """A permanently hung task times out on every attempt and is reported
    in a FailureReport; the rest of the sweep still completes — no
    deadlock."""
    import time

    from .runner import SweepExecutionError, SweepRunner

    configs = _scenario_grid(5, seed)
    keys = _grid_keys(configs)
    plan = FaultPlan(seed=seed, hang=1.0, max_faulty_attempts=None,
                     hang_s=30.0, only_keys=(keys[2],))
    runner = SweepRunner(jobs=jobs, backend=backend, retries=1,
                         backoff_base_s=0.0, timeout_s=0.5, fault_plan=plan,
                         distributed_options=_dist_opts(backend, transport))
    t0 = time.perf_counter()
    try:
        runner.run_many(configs)
    except SweepExecutionError as exc:
        runner.close()
        elapsed_s = time.perf_counter() - t0
        reports = exc.failures
        completed = sum(1 for r in exc.results if r is not None)
        ok = (len(reports) == 1 and reports[0].kind == "timeout"
              and reports[0].key == keys[2] and reports[0].attempts == 2
              and completed == len(configs) - 1 and elapsed_s < 25.0)
        return ScenarioResult(
            "hang-times-out-not-deadlocked", ok,
            f"hung task reported as {reports[0].kind!r} after "
            f"{reports[0].attempts} attempts, {completed}/{len(configs)} "
            f"others completed in {elapsed_s:.1f}s")
    runner.close()
    return ScenarioResult("hang-times-out-not-deadlocked", False,
                          "sweep completed despite a permanently hung task")


def _scenario_corrupt_quarantine(workdir: Path, jobs: int, seed: int,
                                 backend: str, transport: str) -> ScenarioResult:
    """Corrupted cache entries are quarantined (moved, never deleted) and
    transparently recomputed; results stay identical."""
    from .cache import ResultCache
    from .runner import SweepRunner

    configs = _scenario_grid(4, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    cache_dir = workdir / "corrupt-cache"
    writer_plan = FaultPlan(seed=seed, corrupt=1.0, max_faulty_attempts=None)
    SweepRunner(jobs=0, cache=ResultCache(cache_dir, fault_plan=writer_plan)
                ).run_many(configs)
    clean_cache = ResultCache(cache_dir)
    runner = SweepRunner(jobs=0, cache=clean_cache)
    results = runner.run_many(configs)
    n = len(configs)
    ok = (results == reference
          and clean_cache.stats.quarantined == n
          and clean_cache.stats.errors == n
          and clean_cache.quarantined_entries() == n
          and runner.stats.executed == n
          and clean_cache.get(_grid_keys(configs)[0]) == reference[0])
    return ScenarioResult(
        "corrupt-entry-quarantined-and-recomputed", ok,
        f"{clean_cache.stats.quarantined} corrupted entries quarantined to "
        f"{clean_cache.quarantine_dir.name}/, {runner.stats.executed} "
        f"recomputed, clean entries re-cached")


def _scenario_interrupt_resume(workdir: Path, jobs: int, seed: int,
                               backend: str, transport: str) -> ScenarioResult:
    """An interrupted sweep leaves a checkpoint journal; ``resume=True``
    replays completed tasks from it and recomputes nothing already done."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    cut = len(configs) // 2  # interrupt while executing this task
    checkpoint_dir = workdir / "checkpoints"
    plan = FaultPlan(seed=seed, interrupt=1.0, max_faulty_attempts=None,
                     only_keys=(keys[cut],))
    interrupted = SweepRunner(jobs=0, checkpoint_dir=checkpoint_dir,
                              fault_plan=plan)
    try:
        interrupted.run_many(configs)
        return ScenarioResult("interrupt-checkpoint-resume", False,
                              "injected interrupt did not propagate")
    except KeyboardInterrupt:
        pass
    resumed = SweepRunner(jobs=0, checkpoint_dir=checkpoint_dir, resume=True)
    results = resumed.run_many(configs)
    ok = (results == reference
          and resumed.stats.resumed == cut
          and resumed.stats.executed == len(configs) - cut)
    return ScenarioResult(
        "interrupt-checkpoint-resume", ok,
        f"{interrupted.stats.executed} tasks checkpointed before interrupt; "
        f"resume served {resumed.stats.resumed} from the journal and "
        f"re-executed {resumed.stats.executed} "
        f"({0 if ok else 'some'} completed work recomputed)")


def _scenario_happy_path_identity(workdir: Path, jobs: int, seed: int,
                                  backend: str, transport: str) -> ScenarioResult:
    """With injection disabled, the fully hardened runner (timeouts,
    retries, checkpointing, parallel pool) is bit-identical to the plain
    serial reference."""
    from .cache import ResultCache
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    hardened = SweepRunner(jobs=jobs, backend=backend,
                           cache=ResultCache(workdir / "happy-cache"),
                           timeout_s=120.0, retries=2,
                           checkpoint_dir=workdir / "happy-checkpoints",
                           distributed_options=_dist_opts(backend, transport))
    results = hardened.run_many(configs)
    hardened.close()
    ok = (results == reference and hardened.stats.failures == 0
          and hardened.stats.retries == 0)
    return ScenarioResult(
        "happy-path-bit-identical", ok,
        f"hardened runner (timeout+retry+checkpoint, jobs={jobs}, "
        f"backend={backend}) "
        f"{'matches' if ok else 'DIVERGED from'} the serial reference "
        f"with zero retries/failures")


def _scenario_warm_crash_cache_loss(workdir: Path, jobs: int, seed: int,
                                    backend: str, transport: str) -> ScenarioResult:
    """A crashed warm worker loses its warm caches; the requeued tasks
    re-run on a cold respawned worker and stay bit-identical — warm
    state is a pure accelerator, never load-bearing."""
    from .runner import SweepRunner

    configs = _scenario_grid(8, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    crash_keys = (keys[1], keys[5])
    plan = FaultPlan(seed=seed, crash=1.0, max_faulty_attempts=1,
                     only_keys=crash_keys)
    runner = SweepRunner(jobs=max(2, jobs), backend="warm", retries=2,
                         backoff_base_s=0.0, timeout_s=60.0,
                         fault_plan=plan, max_pool_failures=4)
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference
          and runner.stats.pool_respawns >= len(crash_keys)
          and runner.stats.retries >= len(crash_keys)
          and runner.stats.failures == 0)
    return ScenarioResult(
        "warm-crash-cold-respawn-bit-identical", ok,
        f"{len(crash_keys)} warm worker crash(es), "
        f"{runner.stats.pool_respawns} cold respawn(s), "
        f"{runner.stats.retries} retries; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_warm_hung_queue_stolen(workdir: Path, jobs: int, seed: int,
                                     backend: str, transport: str) -> ScenarioResult:
    """A hung warm worker's queued tasks are stolen by idle peers before
    any watchdog fires: affinity routing never serializes behind one
    slow worker, and the slow task itself still completes in place."""
    from .runner import SweepRunner

    configs = _scenario_grid(8, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    # Stall only the task at the head of one worker's queue; no timeout
    # configured, so recovery must come from stealing, not the watchdog.
    plan = FaultPlan(seed=seed, hang=1.0, max_faulty_attempts=1,
                     hang_s=2.0, only_keys=(keys[0],))
    runner = SweepRunner(jobs=max(2, jobs), backend="warm", retries=0,
                         fault_plan=plan)
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference
          and runner.stats.steals >= 1
          and runner.stats.timeouts == 0
          and runner.stats.failures == 0)
    return ScenarioResult(
        "warm-hung-worker-queue-stolen", ok,
        f"peers stole {runner.stats.steals} queued task(s) from the hung "
        f"worker ({runner.stats.timeouts} timeouts, "
        f"{runner.stats.failures} failures); results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_duplicate_delivery(workdir: Path, jobs: int, seed: int,
                                      backend: str, transport: str,
                                      ) -> ScenarioResult:
    """Every message on the wire is delivered twice; the idempotent
    commit gate absorbs every duplicate (byte-compared, discarded) and
    results stay bit-identical — at-least-once delivery, exactly-once
    commit."""
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, duplicate=1.0, max_faulty_attempts=None)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=2,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts("distributed", transport))
    results = runner.run_many(configs)
    runner.close()
    n = len(configs)
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.dup_results >= 1 and runner.stats.executed == n)
    return ScenarioResult(
        "dist-duplicate-delivery-committed-once", ok,
        f"every frame duplicated: {runner.stats.dup_results} duplicate "
        f"result(s) discarded at the commit gate, {runner.stats.executed}/{n} "
        f"committed once; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_drop_lease_recovery(workdir: Path, jobs: int, seed: int,
                                       backend: str, transport: str,
                                       ) -> ScenarioResult:
    """The first frame of every (worker, message-type) stream silently
    vanishes — first leases and first results included.  Lease expiry
    detects the loss, requeues the work (charging an attempt), and the
    sweep converges bit-identically."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, drop=1.0, max_faulty_attempts=1)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=4,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts(
                             "distributed", transport, lease_timeout_s=0.5))
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.lease_expiries >= 1
          and runner.stats.retries >= runner.stats.lease_expiries)
    return ScenarioResult(
        "dist-dropped-frames-lease-expiry-requeues", ok,
        f"dropped first lease/result per worker: {runner.stats.lease_expiries} "
        f"lease(s) expired, {runner.stats.retries} retries charged; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_lease_expiry_no_timeout(workdir: Path, jobs: int, seed: int,
                                           backend: str, transport: str,
                                           ) -> ScenarioResult:
    """A worker hangs mid-task with *no* task timeout configured: missed
    heartbeats alone expire the lease, the task is requeued (consuming an
    attempt) and re-executed elsewhere, and the late completion from the
    recovered worker is discarded as stale."""
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    keys = _grid_keys(configs)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, hang=1.0, max_faulty_attempts=1,
                     hang_s=2.5, only_keys=(keys[1],))
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=3,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts(
                             "distributed", transport, lease_timeout_s=0.6))
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.lease_expiries >= 1
          and runner.stats.timeouts >= 1)
    return ScenarioResult(
        "dist-hung-worker-lease-expires", ok,
        f"hung worker's lease expired via missed heartbeats "
        f"({runner.stats.lease_expiries} expiries, {runner.stats.timeouts} "
        f"timeout attempts charged, {runner.stats.stale_results} stale "
        f"result(s) discarded) with no task timeout configured; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_partition_heal(workdir: Path, jobs: int, seed: int,
                                  backend: str, transport: str,
                                  ) -> ScenarioResult:
    """One worker is fully partitioned (both directions) for its first
    traffic window, then the partition heals; the worker's idle re-hello
    re-registers it and the sweep completes bit-identically with no
    failed tasks."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, partition=1.0, max_faulty_attempts=1,
                     only_keys=("w0.1",), partition_window=4)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=2,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts(
                             "distributed", transport, lease_timeout_s=1.0,
                             idle_poll_s=0.1))
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference and runner.stats.failures == 0)
    return ScenarioResult(
        "dist-partitioned-worker-heals-and-rejoins", ok,
        f"worker w0.1 partitioned for its first {plan.partition_window}"
        f"-message window, healed by idle re-hello; "
        f"{runner.stats.lease_expiries} lease expiries, "
        f"{runner.stats.failures} failed tasks; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_stale_result_discarded(workdir: Path, jobs: int, seed: int,
                                          backend: str, transport: str,
                                          ) -> ScenarioResult:
    """The regression scenario from the issue: a worker's result is
    delayed past its lease expiry (a partition that heals after the
    coordinator gave up), the task is re-executed and committed, and the
    worker's late result for the already-committed task is discarded —
    never double-counted."""
    from .runner import SweepRunner

    configs = _scenario_grid(4, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, delay=1.0, max_faulty_attempts=1,
                     only_keys=("w0.1|result",), delay_polls=40)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=2,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts(
                             "distributed", transport, lease_timeout_s=0.5))
    results = runner.run_many(configs)
    runner.close()
    n = len(configs)
    discarded = runner.stats.dup_results + runner.stats.stale_results
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.lease_expiries >= 1 and discarded >= 1
          and runner.stats.executed == n)
    return ScenarioResult(
        "dist-stale-result-discarded-not-double-counted", ok,
        f"w0.1's first result held past lease expiry: task re-executed, "
        f"{discarded} late/duplicate delivery(ies) discarded, "
        f"{runner.stats.executed}/{n} tasks committed exactly once; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_fleet_loss_fallback(workdir: Path, jobs: int, seed: int,
                                       backend: str, transport: str,
                                       ) -> ScenarioResult:
    """Every worker agent dies on receipt of every lease: after
    ``max_fleet_failures`` the coordinator stops burning respawns and
    degrades gracefully to the local warm backend, completing the sweep
    bit-identically with zero failed tasks."""
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, kill=1.0, max_faulty_attempts=None)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed", retries=4,
                         backoff_base_s=0.0, fault_plan=plan,
                         distributed_options=_dist_opts(
                             "distributed", transport, max_fleet_failures=2))
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.fleet_fallbacks == 1
          and runner.stats.pool_respawns >= 1)
    return ScenarioResult(
        "dist-fleet-loss-falls-back-to-warm", ok,
        f"agents killed on every lease: {runner.stats.pool_respawns} "
        f"respawn(s) before giving up, {runner.stats.fleet_fallbacks} "
        f"fallback to the local warm backend, {runner.stats.failures} "
        f"failed tasks; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_dist_file_transport(workdir: Path, jobs: int, seed: int,
                                  backend: str, transport: str,
                                  ) -> ScenarioResult:
    """The shared-filesystem spool transport (atomic-rename message
    files) completes a sweep bit-identically — the transport matrix's
    second column, exercised regardless of the suite's ``--transport``."""
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    runner = SweepRunner(jobs=max(2, jobs), backend="distributed",
                         backoff_base_s=0.0,
                         distributed_options=_dist_opts(
                             "distributed", "file",
                             spool_dir=str(workdir / "spool")))
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference and runner.stats.failures == 0
          and runner.stats.leases >= 1)
    return ScenarioResult(
        "dist-file-spool-transport-bit-identical", ok,
        f"file-spool transport granted {runner.stats.leases} lease(s), "
        f"{runner.stats.failures} failures; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


_SCENARIOS = (
    _scenario_crash_retry,
    _scenario_hang_timeout,
    _scenario_corrupt_quarantine,
    _scenario_interrupt_resume,
    _scenario_happy_path_identity,
)

#: Extra scenarios exercising warm-backend-specific machinery
#: (persistent caches, affinity queues); appended when the suite runs
#: against the warm backend.
_WARM_SCENARIOS = (
    _scenario_warm_crash_cache_loss,
    _scenario_warm_hung_queue_stolen,
)

#: Network-chaos scenarios exercising the distributed backend's lease,
#: commit-gate, and degradation machinery; appended when the suite runs
#: against the distributed backend.
_DISTRIBUTED_SCENARIOS = (
    _scenario_dist_duplicate_delivery,
    _scenario_dist_drop_lease_recovery,
    _scenario_dist_lease_expiry_no_timeout,
    _scenario_dist_partition_heal,
    _scenario_dist_stale_result_discarded,
    _scenario_dist_fleet_loss_fallback,
    _scenario_dist_file_transport,
)


def run_fault_suite(workdir: Path, jobs: int = 2, seed: int = 1,
                    backend: str = "warm",
                    transport: str = "tcp") -> List[ScenarioResult]:
    """Run every fault-injection scenario against the real runner.

    ``workdir`` holds the scratch caches/journals the scenarios create;
    the suite is deterministic in ``(jobs, seed, backend, transport)``
    and is the CI ``faults`` gate (CLI: ``repro faults``).  ``backend``
    selects the execution engine for the parallel scenarios; ``"warm"``
    additionally runs the warm-specific scenarios (worker-cache loss,
    queue stealing), and ``"distributed"`` the network-chaos scenarios
    (duplicate delivery, dropped frames, lease expiry, partitions, stale
    results, fleet loss, file spool).  ``transport`` selects the wire
    (``tcp`` or ``file``) for every distributed scenario except the
    file-spool one, which always runs on ``file``.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    scenarios = _SCENARIOS
    if backend == "warm":
        scenarios = scenarios + _WARM_SCENARIOS
    if backend == "distributed":
        scenarios = scenarios + _DISTRIBUTED_SCENARIOS
    return [scenario(workdir, jobs, seed, backend, transport)
            for scenario in scenarios]


def plan_with(plan: FaultPlan, **overrides: object) -> FaultPlan:
    """A copy of ``plan`` with fields replaced (test helper)."""
    return replace(plan, **overrides)  # type: ignore[arg-type]
