"""Deterministic fault injection for the sweep runner.

Resilience must be *tested*, not assumed: the related work this repo
draws on (Flow Director's reordering pathology, work-stealing's cache
misbehaviour) only surfaced failure modes under adversarial conditions.
This module provides the adversary — a :class:`FaultPlan` that injects
worker crashes, hangs, raised exceptions, cache corruption, and
interrupts into the *real* execution paths of
:class:`~repro.runner.runner.SweepRunner` and
:class:`~repro.runner.cache.ResultCache` — plus a scenario harness
(:func:`run_fault_suite`, CLI ``repro faults``) that proves each failure
path behaves as specified.

Every injection decision is a pure function of ``(plan seed, fault kind,
task key, attempt number)`` — a SHA-256 threshold test, no RNG object,
no wall clock — so a fault run replays bit-identically: the same tasks
crash, hang, or corrupt on the same attempts, on any machine, under any
worker count.  With ``plan=None`` (the default everywhere) the injection
hooks are inert and the happy path is untouched.

Fault kinds
-----------
``crash``
    The worker process exits abnormally (``os._exit``), breaking the
    process pool mid-task.  In inline/serial execution (where a real
    crash would kill the caller) it degrades to a raised
    :class:`InjectedFault` tagged as a simulated crash.
``hang``
    The worker sleeps for ``hang_s`` before simulating — long enough to
    trip any configured task timeout.
``error``
    The worker raises :class:`InjectedFault` instead of returning.
``corrupt``
    :meth:`ResultCache.put` writes a torn (truncated) entry, exercising
    the quarantine-and-recompute path on the next read.
``interrupt``
    The task raises :class:`KeyboardInterrupt`, exercising the graceful
    shutdown + checkpoint-flush path exactly as a user Ctrl-C would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from ..sim.system import SystemConfig

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "ScenarioResult",
    "TaskTimeout",
    "run_fault_suite",
]

#: Every fault kind a plan can inject (see module docstring).
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "error", "corrupt", "interrupt")


class InjectedFault(RuntimeError):
    """An artificial failure raised by an active :class:`FaultPlan`."""


class TaskTimeout(RuntimeError):
    """A task exceeded its wall-clock budget (raised by the runner's
    deadline guard, and reported as a ``timeout`` failure)."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, reproducible fault-injection schedule.

    Each per-kind field is an injection probability in ``[0, 1]``
    evaluated *deterministically* per ``(key, attempt)`` — see
    :meth:`decide`.  ``max_faulty_attempts`` bounds injection to the
    first N attempts of a task (the default ``1`` makes every fault
    transient, so a single retry succeeds); ``None`` injects on every
    attempt (permanent faults, for exercising retry exhaustion).
    ``only_keys`` restricts injection to an explicit set of task keys.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    error: float = 0.0
    corrupt: float = 0.0
    interrupt: float = 0.0
    #: Inject only while ``attempt <= max_faulty_attempts`` (None = always).
    max_faulty_attempts: Optional[int] = 1
    #: How long a ``hang`` injection sleeps before (never) completing.
    hang_s: float = 30.0
    #: Restrict injection to these task keys (None = any key).
    only_keys: Optional[Tuple[str, ...]] = None

    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
        return float(getattr(self, "error" if kind == "error" else kind))

    def decide(self, kind: str, key: str, attempt: int = 1) -> bool:
        """Whether to inject ``kind`` into attempt ``attempt`` of task
        ``key`` — a pure function of the plan and its arguments."""
        probability = self.rate(kind)
        if probability <= 0.0:
            return False
        if self.only_keys is not None and key not in self.only_keys:
            return False
        if self.max_faulty_attempts is not None and attempt > self.max_faulty_attempts:
            return False
        blob = f"{self.seed}|{kind}|{key}|{attempt}".encode()
        digest = hashlib.sha256(blob).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < probability

    def affected(self, kind: str, keys: List[str], attempt: int = 1) -> List[str]:
        """The subset of ``keys`` this plan injects ``kind`` into at
        ``attempt`` (harness/test helper)."""
        return [k for k in keys if self.decide(kind, k, attempt)]


# ----------------------------------------------------------------------
# Scenario harness: prove each failure path against the real runner.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fault-injection scenario."""

    name: str
    ok: bool
    detail: str


def _scenario_grid(n: int, seed: int) -> "List[SystemConfig]":
    """``n`` tiny, fast, independent simulation configs."""
    from ..sim.system import SystemConfig
    from ..workloads.traffic import TrafficSpec

    return [
        SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(2, 6_000.0),
            paradigm="locking",
            policy="mru",
            duration_us=30_000.0,
            warmup_us=5_000.0,
            seed=seed * 100 + i,
        )
        for i in range(n)
    ]


def _grid_keys(configs: "List[SystemConfig]") -> List[str]:
    from .keys import config_key

    return [config_key(cfg) for cfg in configs]


def _scenario_crash_retry(workdir: Path, jobs: int, seed: int,
                          backend: str) -> ScenarioResult:
    """A crashed worker breaks the pool; the runner respawns it, requeues
    the lost tasks, retries the crasher, and the sweep completes with
    results identical to a fault-free serial run."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    plan = FaultPlan(seed=seed, crash=0.5, max_faulty_attempts=1)
    runner = SweepRunner(jobs=max(2, jobs), backend=backend, retries=2,
                         backoff_base_s=0.0, timeout_s=60.0, fault_plan=plan)
    results = runner.run_many(configs)
    crashed = len(plan.affected("crash", _grid_keys(configs)))
    ok = (results == reference and crashed > 0
          and runner.stats.pool_respawns >= 1 and runner.stats.retries >= crashed)
    return ScenarioResult(
        "crash-retry-completes", ok,
        f"{crashed} injected crash(es), {runner.stats.pool_respawns} pool "
        f"respawn(s), {runner.stats.retries} retries; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_hang_timeout(workdir: Path, jobs: int, seed: int,
                           backend: str) -> ScenarioResult:
    """A permanently hung task times out on every attempt and is reported
    in a FailureReport; the rest of the sweep still completes — no
    deadlock."""
    import time

    from .runner import SweepExecutionError, SweepRunner

    configs = _scenario_grid(5, seed)
    keys = _grid_keys(configs)
    plan = FaultPlan(seed=seed, hang=1.0, max_faulty_attempts=None,
                     hang_s=30.0, only_keys=(keys[2],))
    runner = SweepRunner(jobs=jobs, backend=backend, retries=1,
                         backoff_base_s=0.0, timeout_s=0.5, fault_plan=plan)
    t0 = time.perf_counter()
    try:
        runner.run_many(configs)
    except SweepExecutionError as exc:
        elapsed_s = time.perf_counter() - t0
        reports = exc.failures
        completed = sum(1 for r in exc.results if r is not None)
        ok = (len(reports) == 1 and reports[0].kind == "timeout"
              and reports[0].key == keys[2] and reports[0].attempts == 2
              and completed == len(configs) - 1 and elapsed_s < 25.0)
        return ScenarioResult(
            "hang-times-out-not-deadlocked", ok,
            f"hung task reported as {reports[0].kind!r} after "
            f"{reports[0].attempts} attempts, {completed}/{len(configs)} "
            f"others completed in {elapsed_s:.1f}s")
    return ScenarioResult("hang-times-out-not-deadlocked", False,
                          "sweep completed despite a permanently hung task")


def _scenario_corrupt_quarantine(workdir: Path, jobs: int, seed: int,
                                 backend: str) -> ScenarioResult:
    """Corrupted cache entries are quarantined (moved, never deleted) and
    transparently recomputed; results stay identical."""
    from .cache import ResultCache
    from .runner import SweepRunner

    configs = _scenario_grid(4, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    cache_dir = workdir / "corrupt-cache"
    writer_plan = FaultPlan(seed=seed, corrupt=1.0, max_faulty_attempts=None)
    SweepRunner(jobs=0, cache=ResultCache(cache_dir, fault_plan=writer_plan)
                ).run_many(configs)
    clean_cache = ResultCache(cache_dir)
    runner = SweepRunner(jobs=0, cache=clean_cache)
    results = runner.run_many(configs)
    n = len(configs)
    ok = (results == reference
          and clean_cache.stats.quarantined == n
          and clean_cache.stats.errors == n
          and clean_cache.quarantined_entries() == n
          and runner.stats.executed == n
          and clean_cache.get(_grid_keys(configs)[0]) == reference[0])
    return ScenarioResult(
        "corrupt-entry-quarantined-and-recomputed", ok,
        f"{clean_cache.stats.quarantined} corrupted entries quarantined to "
        f"{clean_cache.quarantine_dir.name}/, {runner.stats.executed} "
        f"recomputed, clean entries re-cached")


def _scenario_interrupt_resume(workdir: Path, jobs: int, seed: int,
                               backend: str) -> ScenarioResult:
    """An interrupted sweep leaves a checkpoint journal; ``resume=True``
    replays completed tasks from it and recomputes nothing already done."""
    from .runner import SweepRunner

    configs = _scenario_grid(6, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    cut = len(configs) // 2  # interrupt while executing this task
    checkpoint_dir = workdir / "checkpoints"
    plan = FaultPlan(seed=seed, interrupt=1.0, max_faulty_attempts=None,
                     only_keys=(keys[cut],))
    interrupted = SweepRunner(jobs=0, checkpoint_dir=checkpoint_dir,
                              fault_plan=plan)
    try:
        interrupted.run_many(configs)
        return ScenarioResult("interrupt-checkpoint-resume", False,
                              "injected interrupt did not propagate")
    except KeyboardInterrupt:
        pass
    resumed = SweepRunner(jobs=0, checkpoint_dir=checkpoint_dir, resume=True)
    results = resumed.run_many(configs)
    ok = (results == reference
          and resumed.stats.resumed == cut
          and resumed.stats.executed == len(configs) - cut)
    return ScenarioResult(
        "interrupt-checkpoint-resume", ok,
        f"{interrupted.stats.executed} tasks checkpointed before interrupt; "
        f"resume served {resumed.stats.resumed} from the journal and "
        f"re-executed {resumed.stats.executed} "
        f"({0 if ok else 'some'} completed work recomputed)")


def _scenario_happy_path_identity(workdir: Path, jobs: int, seed: int,
                                  backend: str) -> ScenarioResult:
    """With injection disabled, the fully hardened runner (timeouts,
    retries, checkpointing, parallel pool) is bit-identical to the plain
    serial reference."""
    from .cache import ResultCache
    from .runner import SweepRunner

    configs = _scenario_grid(5, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    hardened = SweepRunner(jobs=jobs, backend=backend,
                           cache=ResultCache(workdir / "happy-cache"),
                           timeout_s=120.0, retries=2,
                           checkpoint_dir=workdir / "happy-checkpoints")
    results = hardened.run_many(configs)
    ok = (results == reference and hardened.stats.failures == 0
          and hardened.stats.retries == 0)
    return ScenarioResult(
        "happy-path-bit-identical", ok,
        f"hardened runner (timeout+retry+checkpoint, jobs={jobs}, "
        f"backend={backend}) "
        f"{'matches' if ok else 'DIVERGED from'} the serial reference "
        f"with zero retries/failures")


def _scenario_warm_crash_cache_loss(workdir: Path, jobs: int, seed: int,
                                    backend: str) -> ScenarioResult:
    """A crashed warm worker loses its warm caches; the requeued tasks
    re-run on a cold respawned worker and stay bit-identical — warm
    state is a pure accelerator, never load-bearing."""
    from .runner import SweepRunner

    configs = _scenario_grid(8, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    crash_keys = (keys[1], keys[5])
    plan = FaultPlan(seed=seed, crash=1.0, max_faulty_attempts=1,
                     only_keys=crash_keys)
    runner = SweepRunner(jobs=max(2, jobs), backend="warm", retries=2,
                         backoff_base_s=0.0, timeout_s=60.0,
                         fault_plan=plan, max_pool_failures=4)
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference
          and runner.stats.pool_respawns >= len(crash_keys)
          and runner.stats.retries >= len(crash_keys)
          and runner.stats.failures == 0)
    return ScenarioResult(
        "warm-crash-cold-respawn-bit-identical", ok,
        f"{len(crash_keys)} warm worker crash(es), "
        f"{runner.stats.pool_respawns} cold respawn(s), "
        f"{runner.stats.retries} retries; results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


def _scenario_warm_hung_queue_stolen(workdir: Path, jobs: int, seed: int,
                                     backend: str) -> ScenarioResult:
    """A hung warm worker's queued tasks are stolen by idle peers before
    any watchdog fires: affinity routing never serializes behind one
    slow worker, and the slow task itself still completes in place."""
    from .runner import SweepRunner

    configs = _scenario_grid(8, seed)
    reference = SweepRunner(jobs=0).run_many(configs)
    keys = _grid_keys(configs)
    # Stall only the task at the head of one worker's queue; no timeout
    # configured, so recovery must come from stealing, not the watchdog.
    plan = FaultPlan(seed=seed, hang=1.0, max_faulty_attempts=1,
                     hang_s=2.0, only_keys=(keys[0],))
    runner = SweepRunner(jobs=max(2, jobs), backend="warm", retries=0,
                         fault_plan=plan)
    results = runner.run_many(configs)
    runner.close()
    ok = (results == reference
          and runner.stats.steals >= 1
          and runner.stats.timeouts == 0
          and runner.stats.failures == 0)
    return ScenarioResult(
        "warm-hung-worker-queue-stolen", ok,
        f"peers stole {runner.stats.steals} queued task(s) from the hung "
        f"worker ({runner.stats.timeouts} timeouts, "
        f"{runner.stats.failures} failures); results "
        f"{'bit-identical to' if results == reference else 'DIVERGED from'} "
        f"serial reference")


_SCENARIOS = (
    _scenario_crash_retry,
    _scenario_hang_timeout,
    _scenario_corrupt_quarantine,
    _scenario_interrupt_resume,
    _scenario_happy_path_identity,
)

#: Extra scenarios exercising warm-backend-specific machinery
#: (persistent caches, affinity queues); appended when the suite runs
#: against the warm backend.
_WARM_SCENARIOS = (
    _scenario_warm_crash_cache_loss,
    _scenario_warm_hung_queue_stolen,
)


def run_fault_suite(workdir: Path, jobs: int = 2, seed: int = 1,
                    backend: str = "warm") -> List[ScenarioResult]:
    """Run every fault-injection scenario against the real runner.

    ``workdir`` holds the scratch caches/journals the scenarios create;
    the suite is deterministic in ``(jobs, seed, backend)`` and is the CI
    ``faults`` gate (CLI: ``repro faults``).  ``backend`` selects the
    execution engine for the parallel scenarios; ``"warm"`` additionally
    runs the warm-specific scenarios (worker-cache loss, queue stealing).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    scenarios = _SCENARIOS + (_WARM_SCENARIOS if backend == "warm" else ())
    return [scenario(workdir, jobs, seed, backend) for scenario in scenarios]


def plan_with(plan: FaultPlan, **overrides: object) -> FaultPlan:
    """A copy of ``plan`` with fields replaced (test helper)."""
    return replace(plan, **overrides)  # type: ignore[arg-type]
