"""Parallel sweep execution with transparent result caching.

Every paper artifact is a sweep of *independent* ``run_simulation`` calls
(one per rate/policy/knob grid point).  :class:`SweepRunner` fans those
runs out over a process pool while guaranteeing the output is
**bit-identical** to serial execution:

- each run carries its own seed inside its :class:`SystemConfig` (the
  common-random-numbers semantics of the sweeps), so results do not depend
  on which worker executes them or in what order;
- results are returned in the exact order the configs were submitted.

``jobs=0`` (or 1) is a strict serial fallback executing in-process;
``jobs=None`` uses one worker per CPU.  A :class:`ResultCache` makes
re-runs of ``repro all``, the tests, and the benchmarks skip
already-computed points; identical configs *within* one batch are also
deduplicated so e.g. a repeated baseline run is simulated once.

Experiments reach the runner through a module-level default (serial, no
cache — the historical behaviour) that the CLI or tests rebind with
:func:`use_runner`, keeping every experiment's ``run(fast, seed)``
signature unchanged.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..sim.metrics import SimulationSummary
from ..sim.system import SystemConfig, run_simulation
from .cache import ResultCache
from .keys import UncacheableConfig, config_key

__all__ = [
    "RunnerStats",
    "SweepRunner",
    "get_runner",
    "set_runner",
    "use_runner",
]


@dataclass
class RunnerStats:
    """Cumulative accounting of one runner's activity."""

    simulations: int = 0     # runs requested (incl. hits and dedups)
    cache_hits: int = 0      # served from the persistent cache
    deduplicated: int = 0    # identical to another config in the same batch
    executed: int = 0        # actually simulated
    batches: int = 0
    elapsed_s: float = 0.0   # wall-clock spent inside run_many

    def snapshot(self) -> "RunnerStats":
        return RunnerStats(**vars(self))

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        """Delta between this snapshot and an earlier one."""
        return RunnerStats(**{
            k: getattr(self, k) - getattr(earlier, k) for k in vars(self)
        })

    def summary_line(self, jobs_label: str = "") -> str:
        parts = [
            f"{self.simulations} simulations:",
            f"{self.cache_hits} cache hits,",
            f"{self.executed} executed",
        ]
        if self.deduplicated:
            parts.append(f"({self.deduplicated} deduplicated)")
        parts.append(f"in {self.elapsed_s:.1f}s")
        if jobs_label:
            parts.append(f"[{jobs_label}]")
        return " ".join(parts)


class SweepRunner:
    """Execute batches of independent simulation configs.

    Parameters
    ----------
    jobs:
        Worker processes.  ``0``/``1`` = serial in-process execution (the
        deterministic reference path); ``None`` = one per CPU.
    cache:
        Optional :class:`ResultCache`.  ``None`` disables caching.
    check_invariants:
        Force ``SystemConfig.check_invariants`` on for every config run
        through this runner, so a whole sweep/experiment suite executes
        under the online :class:`~repro.verify.invariants.InvariantChecker`
        (the CI invariant gate).  Because the flag is pure observability it
        does not change content keys — but note that cache *hits* skip
        execution entirely, so an invariant-checking gate should run with
        the cache disabled.
    """

    def __init__(self, jobs: Optional[int] = 0,
                 cache: Optional[ResultCache] = None,
                 check_invariants: bool = False) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = serial)")
        self.jobs = jobs
        self.cache = cache
        self.check_invariants = check_invariants
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def _key(self, config: SystemConfig) -> Optional[str]:
        if self.cache is None:
            return None
        try:
            return config_key(config)
        except UncacheableConfig:
            return None

    def run_many(self, configs: Sequence[SystemConfig]) -> List[SimulationSummary]:
        """Run every config; results align index-for-index with input."""
        t0 = time.perf_counter()
        if self.check_invariants:
            configs = [
                cfg if cfg.check_invariants else cfg.with_(check_invariants=True)
                for cfg in configs
            ]
        n = len(configs)
        results: List[Optional[SimulationSummary]] = [None] * n
        keys = [self._key(cfg) for cfg in configs]

        # Serve cache hits; collect misses with within-batch dedup.
        work: List[int] = []          # indices to actually simulate
        followers: List[Tuple[int, int]] = []   # (index, leader_index) duplicates
        leader_for_key: Dict[str, int] = {}
        hits = dedups = 0
        for i, (cfg, key) in enumerate(zip(configs, keys)):
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    hits += 1
                    continue
                leader = leader_for_key.get(key)
                if leader is not None:
                    followers.append((i, leader))
                    dedups += 1
                    continue
                leader_for_key[key] = i
            work.append(i)

        if work:
            pending = [configs[i] for i in work]
            if self.jobs <= 1 or len(pending) == 1:
                outs = [run_simulation(cfg) for cfg in pending]
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outs = list(pool.map(run_simulation, pending))
            for i, summary in zip(work, outs):
                results[i] = summary
                key = keys[i]
                if key is not None:
                    self.cache.put(key, summary)
        for i, leader in followers:
            results[i] = results[leader]

        self.stats.simulations += n
        self.stats.cache_hits += hits
        self.stats.deduplicated += dedups
        self.stats.executed += len(work)
        self.stats.batches += 1
        self.stats.elapsed_s += time.perf_counter() - t0
        return results  # type: ignore[return-value]

    def run_one(self, config: SystemConfig) -> SimulationSummary:
        return self.run_many([config])[0]

    def run_seeds(self, config: SystemConfig,
                  seeds: Sequence[int]) -> List[SimulationSummary]:
        """Run one config under several seeds (replication helper for the
        statistical-equivalence harness; results align with ``seeds``)."""
        return self.run_many([config.with_(seed=int(s)) for s in seeds])

    def jobs_label(self) -> str:
        cache = "cache on" if self.cache is not None else "cache off"
        label = f"jobs={self.jobs}, {cache}"
        if self.check_invariants:
            label += ", invariants on"
        return label


#: Default runner: serial, uncached — exactly the pre-runner behaviour.
_default_runner = SweepRunner(jobs=0, cache=None)


def get_runner() -> SweepRunner:
    """The runner sweeps use when none is passed explicitly."""
    return _default_runner


def set_runner(runner: SweepRunner) -> SweepRunner:
    """Replace the default runner; returns the previous one."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` as the default (CLI/tests)."""
    previous = set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)
