"""Parallel sweep execution with transparent caching and fault tolerance.

Every paper artifact is a sweep of *independent* ``run_simulation`` calls
(one per rate/policy/knob grid point).  :class:`SweepRunner` fans those
runs out over an :class:`~repro.runner.backends.ExecutionBackend` while
guaranteeing the output is **bit-identical** to serial execution:

- each run carries its own seed inside its :class:`SystemConfig` (the
  common-random-numbers semantics of the sweeps), so results do not depend
  on which worker executes them or in what order;
- results are returned in the exact order the configs were submitted.

``jobs=0`` (or 1) is a strict serial fallback executing in-process;
``jobs=None`` uses one worker per CPU.  With ``jobs>1`` the ``backend``
parameter picks the execution engine: ``"warm"`` (default) keeps
persistent affinity-routed workers alive across batches, ``"pool"`` is
the conservative per-batch process pool, ``"serial"`` forces in-process
execution regardless of ``jobs`` (see :mod:`repro.runner.backends`).
A :class:`ResultCache` makes re-runs of ``repro all``, the tests, and
the benchmarks skip already-computed points; identical configs *within*
one batch are also deduplicated so e.g. a repeated baseline run is
simulated once.

Fault tolerance (``docs/ROBUSTNESS.md``)
----------------------------------------
The runner assumes workers can crash, hang, or raise, and that the whole
process can be interrupted, without throwing away completed work:

- **Timeouts** — ``timeout_s`` bounds each task's wall clock (SIGALRM
  deadline inside the worker, plus a hard parent-side watchdog that
  replaces a wedged pool/worker), so a hung config is *reported*, never
  a deadlock.
- **Retries** — each failed/timed-out task is retried up to ``retries``
  times with deterministic (seedless, jitter-free) exponential backoff.
- **Pool recovery** — a crashed worker (BrokenProcessPool / warm-worker
  pipe EOF) is respawned and only the lost tasks requeued; after
  ``max_pool_failures`` respawns the runner degrades gracefully to
  serial in-process execution for the remainder.
- **Checkpoint/resume** — completed tasks are journaled (see
  :mod:`repro.runner.checkpoint`); SIGINT/SIGTERM flush the journal and
  print a resume hint, and ``resume=True`` replays completed entries so
  an interrupted sweep recomputes nothing already done.
- **Failure reporting** — tasks that exhaust their attempts become
  structured :class:`FailureReport` entries inside a
  :class:`SweepExecutionError` (raised after the rest of the sweep
  completes, or immediately with ``fail_fast=True``).
- **Fault injection** — an optional
  :class:`~repro.runner.faults.FaultPlan` deterministically exercises
  every one of those paths against the real runner (CLI ``repro
  faults``); with ``fault_plan=None`` the hooks are inert.

Experiments reach the runner through a module-level default (serial, no
cache — the historical behaviour) that the CLI or tests rebind with
:func:`use_runner`, keeping every experiment's ``run(fast, seed)``
signature unchanged.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..sim.metrics import SimulationSummary
from ..sim.system import SystemConfig
from .backends import (
    BACKEND_NAMES,
    BatchState,
    DistributedOptions,
    ExecutionBackend,
    WarmOptions,
    make_backend,
)
from .backends.base import _execute_task, _WorkerTask
from .cache import ResultCache
from .checkpoint import CheckpointJournal, sweep_id
from .faults import FaultPlan
from .keys import UncacheableConfig, config_key

__all__ = [
    "FailureReport",
    "RunnerStats",
    "SweepExecutionError",
    "SweepRunner",
    "get_runner",
    "set_runner",
    "use_runner",
]


@dataclass
class RunnerStats:
    """Cumulative accounting of one runner's activity."""

    simulations: int = 0     # runs requested (incl. hits and dedups)
    cache_hits: int = 0      # served from the persistent cache
    resumed: int = 0         # served from a checkpoint journal
    deduplicated: int = 0    # identical to another config in the same batch
    executed: int = 0        # actually simulated to completion
    retries: int = 0         # re-submissions after a failed attempt
    timeouts: int = 0        # attempts that exceeded the task budget
    failures: int = 0        # tasks that exhausted every attempt
    pool_respawns: int = 0   # worker processes/pools replaced after breaking
    batches: int = 0
    chunks: int = 0          # warm/distributed chunk dispatches
    affinity_hits: int = 0   # tasks routed to an already-warm worker
    steals: int = 0          # tasks stolen by idle warm workers
    leases: int = 0          # distributed lease grants
    lease_expiries: int = 0  # leases forfeited to missed heartbeats
    dup_results: int = 0     # duplicate identical results discarded
    stale_results: int = 0   # results delivered for retired leases
    fleet_fallbacks: int = 0  # batches finished on the local fallback
    elapsed_s: float = 0.0   # wall-clock spent inside run_many

    def snapshot(self) -> "RunnerStats":
        return RunnerStats(**vars(self))

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        """Delta between this snapshot and an earlier one."""
        return RunnerStats(**{
            k: getattr(self, k) - getattr(earlier, k) for k in vars(self)
        })

    def summary_line(self, jobs_label: str = "") -> str:
        parts = [
            f"{self.simulations} simulations:",
            f"{self.cache_hits} cache hits,",
            f"{self.executed} executed",
        ]
        if self.resumed:
            parts.append(f"+ {self.resumed} resumed")
        if self.deduplicated:
            parts.append(f"({self.deduplicated} deduplicated)")
        if self.retries:
            parts.append(f"({self.retries} retries, {self.timeouts} timeouts)")
        if self.pool_respawns:
            parts.append(f"({self.pool_respawns} pool respawns)")
        if self.chunks:
            parts.append(f"({self.chunks} chunks, {self.affinity_hits} affine,"
                         f" {self.steals} stolen)")
        if self.leases:
            parts.append(f"({self.leases} leases, {self.lease_expiries} "
                         f"expired, {self.dup_results} dup, "
                         f"{self.stale_results} stale)")
        if self.fleet_fallbacks:
            parts.append(f"[{self.fleet_fallbacks} fleet fallback(s)]")
        if self.failures:
            parts.append(f"[{self.failures} FAILED]")
        parts.append(f"in {self.elapsed_s:.1f}s")
        if jobs_label:
            parts.append(f"[{jobs_label}]")
        return " ".join(parts)


@dataclass(frozen=True)
class FailureReport:
    """One task that exhausted every attempt, with its full context."""

    index: int               # position in the submitted batch
    key: Optional[str]       # content key (None for uncacheable configs)
    kind: str                # "timeout" | "crash" | "error"
    attempts: int            # attempts consumed (1 + retries performed)
    error: str               # formatted exception chain of the last attempt
    elapsed_s: float         # wall-clock of the last attempt
    label: str = ""          # sweep label, when the caller provided one

    def render(self) -> str:
        where = f"#{self.index}" + (f" [{self.label}]" if self.label else "")
        key = (self.key or "uncacheable")[:12]
        return (f"task {where} key={key} failed ({self.kind}) after "
                f"{self.attempts} attempt(s), last took {self.elapsed_s:.2f}s: "
                f"{self.error}")


class SweepExecutionError(RuntimeError):
    """One or more sweep tasks failed permanently.

    Raised *after* every other task has completed (so the failure list is
    exhaustive and completed work is checkpointed/cached), or at the
    first permanent failure under ``fail_fast``.  ``results`` holds the
    partial output (``None`` at failed indices) and ``failures`` the
    structured reports.
    """

    def __init__(self, failures: Sequence[FailureReport],
                 results: Sequence[Optional[SimulationSummary]],
                 resume_hint: str = "") -> None:
        self.failures = list(failures)
        self.results = list(results)
        self.resume_hint = resume_hint
        lines = [f"{len(self.failures)} sweep task(s) failed permanently:"]
        lines += [f"  {report.render()}" for report in self.failures[:10]]
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        if resume_hint:
            lines.append(resume_hint)
        super().__init__("\n".join(lines))


@contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Convert SIGTERM into KeyboardInterrupt for the duration of a sweep
    so orchestrators' terminations also take the graceful-shutdown path
    (checkpoint flush + resume hint).  Main-thread only; elsewhere a
    no-op."""
    if not hasattr(signal, "SIGTERM") or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_term(signum: int, frame: object) -> None:
        raise KeyboardInterrupt("SIGTERM")

    previous = signal.signal(signal.SIGTERM, _on_term)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class SweepRunner:
    """Execute batches of independent simulation configs, fault-tolerantly.

    Parameters
    ----------
    jobs:
        Worker processes.  ``0``/``1`` = serial in-process execution (the
        deterministic reference path); ``None`` = one per CPU.
    cache:
        Optional :class:`ResultCache`.  ``None`` disables caching.
    check_invariants:
        Force ``SystemConfig.check_invariants`` on for every config run
        through this runner, so a whole sweep/experiment suite executes
        under the online :class:`~repro.verify.invariants.InvariantChecker`
        (the CI invariant gate).  Because the flag is pure observability it
        does not change content keys — but note that cache *hits* skip
        execution entirely, so an invariant-checking gate should run with
        the cache disabled.
    backend:
        Execution engine for ``jobs>1``: ``"warm"`` (default; persistent
        affinity-routed workers), ``"pool"`` (per-batch process pool),
        ``"distributed"`` (lease-based coordinator + worker-agent fleet
        over tcp or a file spool), or ``"serial"`` (force in-process).
        Backend choice can never change results — only wall-clock
        (``docs/RUNNER.md``, ``docs/DISTRIBUTED.md``).
    warm_options:
        Optional :class:`~repro.runner.backends.WarmOptions` tuning the
        warm backend (chunk size, routing mode).  Ignored by the others.
    distributed_options:
        Optional :class:`~repro.runner.backends.DistributedOptions`
        tuning the distributed backend (transport, lease timeout, fleet
        policy — ``docs/DISTRIBUTED.md``).  Ignored by the others.
    timeout_s:
        Per-task wall-clock budget; ``None`` (default) = unbounded.  A
        task over budget is reported as a ``timeout`` failure and retried.
    retries:
        Extra attempts per failed task (so each task runs at most
        ``retries + 1`` times).
    backoff_base_s:
        Base of the deterministic exponential backoff between attempts:
        attempt *k* waits ``backoff_base_s * 2**(k-1)`` seconds (capped
        at :data:`BACKOFF_CAP_S`; no jitter, so retry schedules replay
        exactly).
    fail_fast:
        Stop scheduling new work at the first permanent task failure
        instead of completing the rest of the sweep first.
    checkpoint_dir:
        Where sweep journals live.  Defaults to ``<cache>/checkpoints``
        when a cache is attached, else checkpointing is off.
    resume:
        Serve completed tasks from an existing journal of the same sweep
        before executing anything.
    fault_plan:
        Optional deterministic fault injector (tests/CI only).
    max_pool_failures:
        Worker/pool respawns tolerated per batch before degrading to
        serial execution.
    """

    def __init__(self, jobs: Optional[int] = 0,
                 cache: Optional[ResultCache] = None,
                 check_invariants: bool = False,
                 *,
                 backend: str = "warm",
                 warm_options: Optional[WarmOptions] = None,
                 distributed_options: Optional[DistributedOptions] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 0,
                 backoff_base_s: float = 0.05,
                 fail_fast: bool = False,
                 checkpoint_dir: Optional["os.PathLike[str]"] = None,
                 resume: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 max_pool_failures: int = 2,
                 hard_timeout_factor: float = 4.0) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = serial)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if backend not in BACKEND_NAMES:
            raise ValueError(f"unknown backend {backend!r}; expected one "
                             f"of {BACKEND_NAMES}")
        self.jobs = jobs
        self.cache = cache
        self.check_invariants = check_invariants
        self.backend = backend
        self.warm_options = warm_options
        self.distributed_options = distributed_options
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.fail_fast = fail_fast
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.resume = resume
        self.fault_plan = fault_plan
        self.max_pool_failures = max_pool_failures
        self.hard_timeout_factor = hard_timeout_factor
        self.stats = RunnerStats()
        self._backends: Dict[str, ExecutionBackend] = {}

    #: Upper bound on a single backoff sleep.
    BACKOFF_CAP_S = 2.0

    # ------------------------------------------------------------------
    # backend plumbing
    # ------------------------------------------------------------------
    def _get_backend(self, name: str) -> ExecutionBackend:
        """The (lazily created, runner-lifetime) backend instance for
        ``name`` — long-lived so the warm backend's workers survive
        across batches."""
        instance = self._backends.get(name)
        if instance is None:
            instance = make_backend(name, self.warm_options,
                                    self.distributed_options)
            self._backends[name] = instance
        return instance

    def _backend_for(self, n_work: int) -> ExecutionBackend:
        """Pick the engine for a batch: single-task batches and serial
        runners always take the in-process reference path."""
        if self.jobs <= 1 or n_work == 1:
            return self._get_backend("serial")
        return self._get_backend(self.backend)

    def close(self) -> None:
        """Release backend resources (persistent warm workers).  The
        runner remains usable — backends respawn lazily on demand."""
        backends, self._backends = self._backends, {}
        for instance in backends.values():
            instance.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # keys / checkpoint plumbing
    # ------------------------------------------------------------------
    def _content_key(self, config: SystemConfig) -> Optional[str]:
        try:
            return config_key(config)
        except UncacheableConfig:
            return None

    def _checkpoint_root(self) -> Optional[Path]:
        if self.checkpoint_dir is not None:
            return self.checkpoint_dir
        if self.cache is not None:
            return self.cache.root / "checkpoints"
        return None

    def _open_journal(
        self, keys: Sequence[Optional[str]], label: str,
    ) -> Tuple[Optional[CheckpointJournal], Dict[str, SimulationSummary]]:
        root = self._checkpoint_root()
        if root is None or not any(k is not None for k in keys):
            return None, {}
        sid = sweep_id(keys)
        journal = CheckpointJournal(root / f"{sid}.jsonl", sweep=sid,
                                    label=label, total=len(keys))
        entries: Dict[str, SimulationSummary] = {}
        if self.resume and journal.exists():
            entries = journal.load()
            for key in entries:
                journal.mark_seen(key)
        journal.start(resume=bool(entries))
        return journal, entries

    # ------------------------------------------------------------------
    # the batch entrypoint
    # ------------------------------------------------------------------
    def run_many(self, configs: Sequence[SystemConfig],
                 label: str = "") -> List[SimulationSummary]:
        """Run every config; results align index-for-index with input.

        Raises :class:`SweepExecutionError` if any task fails permanently
        (after the rest completed, unless ``fail_fast``), and re-raises
        :class:`KeyboardInterrupt` after flushing the checkpoint journal
        and printing a resume hint.
        """
        t0 = time.perf_counter()
        if self.check_invariants:
            configs = [
                cfg if cfg.check_invariants else cfg.with_(check_invariants=True)
                for cfg in configs
            ]
        n = len(configs)
        results: List[Optional[SimulationSummary]] = [None] * n
        keys = [self._content_key(cfg) for cfg in configs]
        # Stable per-task identity for fault decisions, independent of
        # whether the config is cacheable.
        fault_keys = [k if k is not None else f"@{i}"
                      for i, k in enumerate(keys)]

        journal: Optional[CheckpointJournal] = None
        failures: List[FailureReport] = []
        hits = resumed = dedups = 0
        self._label = label
        try:
            journal, prior = self._open_journal(keys, label)

            # Serve journal + cache hits; collect misses with dedup.
            work: List[int] = []
            followers: List[Tuple[int, int]] = []   # (index, leader_index)
            leader_for_key: Dict[str, int] = {}
            for i, key in enumerate(keys):
                if key is not None:
                    replay = prior.get(key)
                    if replay is not None:
                        results[i] = replay
                        resumed += 1
                        continue
                    if self.cache is not None:
                        cached = self.cache.get(key)
                        if cached is not None:
                            results[i] = cached
                            hits += 1
                            continue
                    leader = leader_for_key.get(key)
                    if leader is not None:
                        followers.append((i, leader))
                        dedups += 1
                        continue
                    leader_for_key[key] = i
                work.append(i)

            if work:
                batch = BatchState(work, configs, keys, fault_keys,
                                   results, journal, failures)
                with _sigterm_as_interrupt():
                    self._backend_for(len(work)).run_batch(self, batch)
            for i, leader in followers:
                results[i] = results[leader]
        except KeyboardInterrupt:
            self._note_interrupt(journal)
            raise
        finally:
            self.stats.simulations += n
            self.stats.cache_hits += hits
            self.stats.resumed += resumed
            self.stats.deduplicated += dedups
            self.stats.failures += len(failures)
            self.stats.batches += 1
            self.stats.elapsed_s += time.perf_counter() - t0
            if journal is not None and journal.is_open:
                if failures:
                    journal.sync()
                    journal.close()
                else:
                    journal.delete()

        if failures:
            hint = ""
            if journal is not None:
                hint = (f"completed work is checkpointed in {journal.path}; "
                        f"re-run with --resume to skip it")
            raise SweepExecutionError(failures, results, hint)
        return results  # type: ignore[return-value]

    def _note_interrupt(self, journal: Optional[CheckpointJournal]) -> None:
        """Graceful-shutdown bookkeeping: flush partial results, print a
        resume hint, leave the journal on disk."""
        if journal is None or not journal.is_open:
            return
        journal.sync()
        journal.close()
        print(f"[runner] interrupted: {journal.recorded} completed task(s) "
              f"checkpointed in {journal.path}; re-run with --resume to "
              f"continue without recomputing them", file=sys.stderr)

    # ------------------------------------------------------------------
    # completion / retry plumbing shared by every backend
    # ------------------------------------------------------------------
    def _complete(self, i: int, summary: SimulationSummary,
                  key: Optional[str],
                  results: List[Optional[SimulationSummary]],
                  journal: Optional[CheckpointJournal]) -> None:
        results[i] = summary
        self.stats.executed += 1
        if key is not None:
            if self.cache is not None:
                self.cache.put(key, summary)
            if journal is not None:
                journal.record(key, summary)

    def _backoff(self, attempt: int) -> None:
        """Deterministic exponential backoff before attempt ``attempt+1``
        — no jitter, so a replayed fault run waits identically."""
        delay_s = min(self.backoff_base_s * (2.0 ** (attempt - 1)),
                      self.BACKOFF_CAP_S)
        if delay_s > 0:
            time.sleep(delay_s)

    def _fail(self, i: int, key: Optional[str], kind: str, error: str,
              attempts: int, elapsed_s: float,
              failures: List[FailureReport]) -> None:
        failures.append(FailureReport(
            index=i, key=key, kind=kind, attempts=attempts, error=error,
            elapsed_s=elapsed_s, label=getattr(self, "_label", "")))

    def _retry_or_fail(self, i: int, attempt: int, kind: str, error: str,
                       elapsed_s: float,
                       pending: "Deque[Tuple[int, int]]",
                       keys: Sequence[Optional[str]],
                       failures: List[FailureReport]) -> None:
        if attempt <= self.retries:
            self.stats.retries += 1
            self._backoff(attempt)
            pending.append((i, attempt + 1))
        else:
            self._fail(i, keys[i], kind, error, attempt, elapsed_s, failures)

    def _run_inline(self, i: int, first_attempt: int,
                    configs: Sequence[SystemConfig],
                    keys: Sequence[Optional[str]],
                    fault_keys: Sequence[str],
                    results: List[Optional[SimulationSummary]],
                    journal: Optional[CheckpointJournal],
                    failures: List[FailureReport]) -> None:
        """Attempt loop for one task, executed in-process."""
        attempt = first_attempt
        while True:
            outcome = _execute_task(_WorkerTask(
                configs[i], fault_keys[i], attempt, self.timeout_s,
                self.fault_plan, inline=True))
            if outcome.ok:
                assert outcome.summary is not None
                self._complete(i, outcome.summary, keys[i], results, journal)
                return
            if outcome.kind == "timeout":
                self.stats.timeouts += 1
            if attempt > self.retries:
                self._fail(i, keys[i], outcome.kind, outcome.error, attempt,
                           outcome.elapsed_s, failures)
                return
            self.stats.retries += 1
            self._backoff(attempt)
            attempt += 1

    def _hard_timeout_s(self) -> Optional[float]:
        """Parent-side watchdog deadline for one in-flight task: generous
        multiple of the soft budget, so it only fires when a worker is
        wedged beyond its own SIGALRM guard."""
        if self.timeout_s is None:
            return None
        return self.timeout_s * self.hard_timeout_factor + 1.0

    # ------------------------------------------------------------------
    def run_one(self, config: SystemConfig) -> SimulationSummary:
        return self.run_many([config])[0]

    def run_seeds(self, config: SystemConfig,
                  seeds: Sequence[int]) -> List[SimulationSummary]:
        """Run one config under several seeds (replication helper for the
        statistical-equivalence harness; results align with ``seeds``)."""
        return self.run_many([config.with_(seed=int(s)) for s in seeds])

    def jobs_label(self) -> str:
        cache = "cache on" if self.cache is not None else "cache off"
        label = f"jobs={self.jobs}, {cache}"
        if self.jobs > 1:
            label += f", backend={self.backend}"
        if self.check_invariants:
            label += ", invariants on"
        if self.timeout_s is not None:
            label += f", timeout={self.timeout_s:g}s"
        if self.retries:
            label += f", retries={self.retries}"
        if self.resume:
            label += ", resume"
        return label


#: Default runner: serial, uncached — exactly the pre-runner behaviour.
_default_runner = SweepRunner(jobs=0, cache=None)


def get_runner() -> SweepRunner:
    """The runner sweeps use when none is passed explicitly."""
    return _default_runner


def set_runner(runner: SweepRunner) -> SweepRunner:
    """Replace the default runner; returns the previous one."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Temporarily install ``runner`` as the default (CLI/tests)."""
    previous = set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)
