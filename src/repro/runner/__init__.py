"""Parallel sweep runner and persistent result cache.

The experiment suite is embarrassingly parallel — dozens of independent
:func:`~repro.sim.system.run_simulation` calls per artifact — and highly
repetitive across invocations (tests, benchmarks, and ``repro all`` re-run
identical grid points).  This package provides:

- :class:`SweepRunner` — fans a batch of :class:`SystemConfig` runs out
  over a process pool (``jobs=N``; ``jobs=0`` = serial fallback) with
  deterministic, submission-ordered results that are bit-identical to
  serial execution;
- :class:`ResultCache` — a content-addressed on-disk cache of
  :class:`~repro.sim.metrics.SimulationSummary` objects keyed by
  :func:`config_key` (canonical config serialization + simulator code
  version), so already-computed points are never simulated twice;
- :func:`use_runner` / :func:`get_runner` — the default-runner hook the
  CLI and tests use to rewire every sweep without touching experiment
  signatures.

See ``docs/RUNNER.md`` for the cache key scheme and invalidation rules.
"""

from .cache import ResultCache, default_cache_dir
from .keys import UncacheableConfig, canonicalize, code_version, config_key
from .runner import RunnerStats, SweepRunner, get_runner, set_runner, use_runner

__all__ = [
    "ResultCache",
    "RunnerStats",
    "SweepRunner",
    "UncacheableConfig",
    "canonicalize",
    "code_version",
    "config_key",
    "default_cache_dir",
    "get_runner",
    "set_runner",
    "use_runner",
]
