"""Parallel sweep runner, persistent result cache, and fault tolerance.

The experiment suite is embarrassingly parallel — dozens of independent
:func:`~repro.sim.system.run_simulation` calls per artifact — and highly
repetitive across invocations (tests, benchmarks, and ``repro all`` re-run
identical grid points).  This package provides:

- :class:`SweepRunner` — fans a batch of :class:`SystemConfig` runs out
  over a process pool (``jobs=N``; ``jobs=0`` = serial fallback) with
  deterministic, submission-ordered results that are bit-identical to
  serial execution, and with fault-tolerant execution: per-task
  timeouts, bounded retries with deterministic backoff, broken-pool
  recovery, and checkpoint/resume (``docs/ROBUSTNESS.md``);
- :class:`ResultCache` — a content-addressed on-disk cache of
  :class:`~repro.sim.metrics.SimulationSummary` objects keyed by
  :func:`config_key` (canonical config serialization + simulator code
  version), with atomic writes and quarantine of unreadable entries;
- :class:`CheckpointJournal` — the append-only completed-task journal
  behind ``--resume``;
- :class:`FaultPlan` / :func:`run_fault_suite` — deterministic fault
  injection and the scenario harness behind ``repro faults``;
- :func:`use_runner` / :func:`get_runner` — the default-runner hook the
  CLI and tests use to rewire every sweep without touching experiment
  signatures.

See ``docs/RUNNER.md`` for the cache key scheme and invalidation rules,
and ``docs/ROBUSTNESS.md`` for the failure taxonomy and resume workflow.
"""

from .affinity import AffinityScheduler, affinity_key, workload_family
from .backends import (
    BACKEND_NAMES,
    DistributedOptions,
    ExecutionBackend,
    WarmOptions,
    make_backend,
    reset_warm_state,
)
from .backends.distributed import run_worker_agent
from .cache import CacheStats, ResultCache, default_cache_dir
from .checkpoint import CheckpointJournal, journal_status, sweep_id
from .faults import (
    FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    FaultPlan,
    InjectedFault,
    ScenarioResult,
    TaskTimeout,
    run_fault_suite,
)
from .keys import UncacheableConfig, canonicalize, code_version, config_key
from .runner import (
    FailureReport,
    RunnerStats,
    SweepExecutionError,
    SweepRunner,
    get_runner,
    set_runner,
    use_runner,
)

__all__ = [
    "AffinityScheduler",
    "BACKEND_NAMES",
    "CacheStats",
    "CheckpointJournal",
    "DistributedOptions",
    "ExecutionBackend",
    "FAULT_KINDS",
    "FailureReport",
    "FaultPlan",
    "InjectedFault",
    "NETWORK_FAULT_KINDS",
    "ResultCache",
    "RunnerStats",
    "ScenarioResult",
    "SweepExecutionError",
    "SweepRunner",
    "TaskTimeout",
    "UncacheableConfig",
    "WarmOptions",
    "affinity_key",
    "canonicalize",
    "code_version",
    "config_key",
    "default_cache_dir",
    "get_runner",
    "journal_status",
    "make_backend",
    "reset_warm_state",
    "run_fault_suite",
    "run_worker_agent",
    "set_runner",
    "sweep_id",
    "use_runner",
    "workload_family",
]
