"""Sweep checkpointing: a completed-task journal enabling resume.

A *sweep* is one ``SweepRunner.run_many`` batch.  While the batch runs,
every completed (cacheable) task is appended to a JSONL journal named
after the sweep's identity — a digest of its ordered content keys — so
an interrupted run (Ctrl-C, SIGTERM, crash, permanent task failure)
leaves a durable record of exactly what finished.  Re-running the same
batch with ``resume=True`` serves those entries from the journal and
executes only the remainder: zero completed work is recomputed, even
with the result cache disabled.

The journal is append-only and torn-tail tolerant: each line is one
self-contained JSON object flushed as it is written, and :meth:`load`
silently skips a final line truncated by an interrupt mid-write.  A
journal whose header does not match the expected sweep identity or
layout version is ignored wholesale (resume falls back to a fresh run —
never a wrong result).  On clean sweep completion the journal is
deleted; it persists only when there is something to resume.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Set

from ..sim.metrics import SimulationSummary
from .cache import summary_from_dict, summary_to_dict

__all__ = ["CheckpointJournal", "journal_status", "sweep_id"]

#: Bump when the journal line layout changes.
_FORMAT = 1


def sweep_id(keys: Sequence[Optional[str]]) -> str:
    """Stable identity of one sweep: a digest of its *ordered* content
    keys (uncacheable entries hash as empty strings), 16 hex chars."""
    blob = json.dumps([k if k is not None else "" for k in keys],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class CheckpointJournal:
    """Append-only JSONL journal of one sweep's completed tasks.

    Line 1 is a header (``format``/``sweep``/``label``/``total``); every
    subsequent line is ``{"key": ..., "summary": ...}``.  Lines are
    flushed to the OS as written (an interrupt loses at most the line in
    flight); :meth:`sync` additionally fsyncs, and is called on the
    graceful-shutdown path.
    """

    def __init__(self, path: Path, sweep: str, label: str = "",
                 total: int = 0) -> None:
        self.path = Path(path)
        self.sweep = sweep
        self.label = label
        self.total = total
        self.recorded = 0
        self._fh: Optional[IO[str]] = None
        self._seen: Set[str] = set()

    # -- reading -----------------------------------------------------
    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Dict[str, SimulationSummary]:
        """Completed entries from a prior (interrupted) run of this sweep.

        Tolerant by construction: unreadable files, foreign headers, torn
        or malformed lines, and schema-drifted summaries all degrade to
        "not completed" — resume can only skip work, never corrupt it.
        """
        out: Dict[str, SimulationSummary] = {}
        try:
            lines: List[str] = self.path.read_text().splitlines()
        except (OSError, UnicodeDecodeError):
            return out
        for line in lines:
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn tail from an interrupted write
            if not isinstance(data, dict):
                continue
            if "sweep" in data:  # header line
                if data.get("sweep") != self.sweep or data.get("format") != _FORMAT:
                    return {}  # another sweep/layout: ignore wholesale
                continue
            key = data.get("key")
            summary = data.get("summary")
            if not isinstance(key, str) or not isinstance(summary, dict):
                continue
            try:
                out[key] = summary_from_dict(summary)
            except (KeyError, TypeError, ValueError):
                continue  # schema drift: recompute rather than trust it
        return out

    # -- writing -----------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def start(self, resume: bool) -> None:
        """Open for appending (``resume=True`` keeps prior entries) or
        start fresh, writing the header line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not (resume and self.exists())
        self._fh = open(self.path, "a" if not fresh else "w")
        if fresh:
            self._write({"format": _FORMAT, "sweep": self.sweep,
                         "label": self.label, "total": self.total})

    def _write(self, data: Dict[str, object]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(data, separators=(",", ":")) + "\n")
        self._fh.flush()

    def mark_seen(self, key: str) -> None:
        """Register a key as already journaled (resume path), so a late
        re-delivery of the same result is not appended twice."""
        self._seen.add(key)

    def record(self, key: str, summary: SimulationSummary) -> None:
        """Append one completed task (no-op when the journal is closed).

        First write wins: a key already journaled — resumed from a prior
        run or committed earlier in this one — is skipped, so
        at-least-once result delivery (the distributed backend) cannot
        bloat the journal or make resume ambiguous."""
        if self._fh is None or key in self._seen:
            return
        self._seen.add(key)
        self._write({"key": key, "summary": summary_to_dict(summary)})
        self.recorded += 1

    def sync(self) -> None:
        """Flush and fsync — the graceful-shutdown durability point."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            finally:
                self._fh.close()
                self._fh = None

    def delete(self) -> None:
        """Remove the journal (the sweep completed; nothing to resume)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass


def journal_status(path: Path) -> Optional[Dict[str, object]]:
    """Header fields + completed-entry count of a journal file, without
    deserializing any summaries (the ``repro sweep status`` reader).

    Same tolerance as :meth:`CheckpointJournal.load`: unreadable files
    and torn/malformed lines degrade to "not counted"; a file with no
    parseable header returns None.
    """
    try:
        lines = Path(path).read_text().splitlines()
    except (OSError, UnicodeDecodeError):
        return None
    header: Optional[Dict[str, object]] = None
    done = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except ValueError:
            continue
        if not isinstance(data, dict):
            continue
        if "sweep" in data:
            if header is None and data.get("format") == _FORMAT:
                header = data
            continue
        if isinstance(data.get("key"), str) and \
                isinstance(data.get("summary"), dict):
            done += 1
    if header is None:
        return None
    total = header.get("total")
    return {
        "sweep": str(header.get("sweep", "")),
        "label": str(header.get("label", "")),
        "total": total if isinstance(total, int) else 0,
        "done": done,
    }
