"""Stable content keys for simulation configurations.

The persistent result cache (:mod:`repro.runner.cache`) stores one
:class:`~repro.sim.metrics.SimulationSummary` per *content key*: a SHA-256
digest of

1. a **canonical serialization** of the :class:`~repro.sim.system.SystemConfig`
   — every knob that influences the simulation's output (traffic spec,
   paradigm/policy, platform geometry, cost constants, footprint
   composition, horizon, seed, ...), serialized structurally (type name +
   field values, recursively) so that two configs compare equal iff they
   would produce identical runs; and
2. a **code version** — a digest of the source files of the packages that
   determine simulation results (``sim``, ``core``, ``cache``,
   ``workloads`` and the statistics used by the metrics summary), so any
   change to the simulator automatically invalidates every cached result.

Configs that cannot be canonicalized — e.g. a pre-built policy *instance*
instead of a registry name — raise :class:`UncacheableConfig`; the sweep
runner treats those runs as uncacheable and simply executes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = ["UncacheableConfig", "canonicalize", "code_version", "config_key"]


class UncacheableConfig(ValueError):
    """The config contains a value with no canonical serialization."""


#: Pure-observability dataclass fields excluded from canonical form (keyed
#: by qualified type name to avoid importing the types here).  These knobs
#: can never change simulation *results* — ``trace`` records what happened,
#: ``check_invariants`` asserts about it — so a traced/checked run must hit
#: the same cache entry as a plain one.
_OBSERVABILITY_FIELDS = {
    "repro.sim.system.SystemConfig": frozenset({"trace", "check_invariants"}),
}

#: Explicit acknowledgement that each :class:`SystemConfig` field
#: participates in the content key.  :func:`canonicalize` serializes
#: dataclass fields *dynamically*, so a newly added field is hashed
#: automatically — but silently, without anyone deciding whether it is
#: result-affecting (belongs here) or pure observability (belongs in
#: :data:`_OBSERVABILITY_FIELDS`).  The ``repro lint`` RPR004 rule
#: cross-checks this list against the SystemConfig definition and fails
#: on any field present in neither, forcing that decision to be made in
#: this file.  Keep in sync with ``repro/sim/system.py``.
_CONTENT_KEY_FIELDS = frozenset({
    "traffic",
    "paradigm",
    "policy",
    "platform",
    "costs",
    "composition",
    "nonprotocol_intensity",
    "n_stacks",
    "churn",
    "data_touching",
    "fixed_overhead_us",
    "lock_granularity",
    "duration_us",
    "warmup_us",
    "seed",
    "policy_kwargs",
})


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-able structure that identifies its value.

    Handles primitives, tuples/lists, string-keyed dicts, and (recursively)
    frozen dataclasses — which covers :class:`SystemConfig` and every spec
    object it embeds.  Dataclasses are tagged with their qualified type
    name so two spec types with identical fields do not collide.
    Observability-only fields (see :data:`_OBSERVABILITY_FIELDS`) are
    omitted so they cannot fragment the cache.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (tuple, list)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise UncacheableConfig(f"non-string dict key {k!r}")
            out[k] = canonicalize(v)
        return out
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        qualname = f"{cls.__module__}.{cls.__qualname__}"
        skip = _OBSERVABILITY_FIELDS.get(qualname, frozenset())
        tagged = {"__type__": qualname}
        for f in dataclasses.fields(obj):
            if f.name in skip:
                continue
            tagged[f.name] = canonicalize(getattr(obj, f.name))
        return tagged
    raise UncacheableConfig(
        f"cannot canonicalize {type(obj).__qualname__!r} value {obj!r}"
    )


#: Package-relative sources whose content defines simulation behaviour.
#: Formatting/CLI/experiment-table code is deliberately excluded so cosmetic
#: changes do not invalidate the cache.
_SIM_SOURCES = ("sim", "core", "cache", "workloads", "analysis/stats.py")


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the simulation-defining source files (16 hex chars)."""
    root = Path(__file__).resolve().parent.parent  # the repro package
    digest = hashlib.sha256()
    for entry in _SIM_SOURCES:
        path = root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            digest.update(f.relative_to(root).as_posix().encode())
            digest.update(f.read_bytes())
    return digest.hexdigest()[:16]


def config_key(config: Any) -> str:
    """Content key of one run: SHA-256 over config + code version.

    Raises :class:`UncacheableConfig` for configs that embed
    non-serializable values (e.g. policy instances).
    """
    payload = {"code": code_version(), "config": canonicalize(config)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
