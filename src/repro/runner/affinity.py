"""Affinity keys and the parent-side task router for the warm backend.

The paper's thesis, one level up: scheduling work without regard to which
processor already holds its state warm throws away locality.  For sweep
execution the "state" is not a CPU cache but a worker process's memoized
:class:`~repro.core.exec_model.ExecutionTimeModel` (penalty caches, the
optional JIT-compiled ``REPRO_KERNEL`` artifact) — expensive to rebuild,
free to reuse, and shared by every config with the same exec-model
parameters.

:func:`affinity_key` names that reusable state: a digest of the
exec-model parameters (costs, composition, platform), the workload
family, and the code version.  :class:`AffinityScheduler` then mirrors
the paper's policy structure at the sweep level:

- **per-worker queues** — tasks are routed to the worker that most
  recently ran their affinity key (MRU, the paper's winning policy),
  with same-key tasks kept contiguous so a worker rides one warm model
  for a whole run of chunks;
- **load balancing** — a key's tasks are split across workers once one
  queue would exceed its fair share, so a single-family sweep (the
  common case) still uses every worker;
- **idle stealing** — a worker with an empty queue steals a same-key run
  from the *tail* of the longest queue (the victim keeps its warm head),
  so affinity never costs utilization — the work-stealing hybrid of Gu
  et al. (PAPERS.md).

None of this can affect results: every config carries its own seed, so
routing, stealing, and chunk boundaries change only wall-clock and the
operational counters (``routed_affine``/``steals``).  The determinism
suite (``tests/properties/test_backend_determinism.py``) enforces that
contract under adversarial routing.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..sim.system import SystemConfig
from .keys import UncacheableConfig, canonicalize, code_version

__all__ = [
    "AffinityScheduler",
    "QueuedTask",
    "SchedulerStats",
    "affinity_key",
    "workload_family",
]


def workload_family(config: SystemConfig) -> str:
    """Coarse workload-family tag for affinity grouping.

    Configs in one family share dispatch structure (paradigm, policy
    kind, traffic shape), so a worker that just ran one is warm for the
    next.  The tag deliberately ignores per-run knobs (rate, seed,
    horizon): those vary *within* a sweep and must not fragment routing.
    """
    policy = config.policy
    policy_tag = policy if isinstance(policy, str) else type(policy).__name__
    spec_types = ",".join(sorted({type(s).__name__
                                  for s in config.traffic.stream_specs}))
    return "|".join((
        config.paradigm,
        policy_tag,
        type(config.traffic.size_model).__name__,
        spec_types,
        f"churn={config.churn is not None}",
        f"data={config.data_touching}",
    ))


#: Parent-side memo of exec-model fingerprints.  Canonicalizing the
#: (costs, composition, platform) triple costs ~0.1 ms and a sweep
#: reuses a handful of parameterizations across hundreds of configs, so
#: the routing layer must not pay it per task.  Keyed by the *values*
#: (frozen dataclasses hash by field), bounded FIFO.  Parent-side only —
#: never worker warm state, so outside the RPR012 ledger's scope.
_FINGERPRINT_CACHE: Dict[object, str] = {}
_FINGERPRINT_CACHE_MAX = 64


def _exec_fingerprint(config: SystemConfig) -> Optional[str]:
    """Digest of the exec-model parameters, or None when uncanonicalizable."""
    try:
        key: Optional[object] = (config.costs, config.composition,
                                 config.platform)
        hit = _FINGERPRINT_CACHE.get(key)
        if hit is not None:
            return hit
    except TypeError:           # unhashable custom parameter object
        key = None
    try:
        canonical = canonicalize(
            (config.costs, config.composition, config.platform))
    except UncacheableConfig:
        return None
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
    if key is not None:
        if len(_FINGERPRINT_CACHE) >= _FINGERPRINT_CACHE_MAX:
            _FINGERPRINT_CACHE.pop(next(iter(_FINGERPRINT_CACHE)))
        _FINGERPRINT_CACHE[key] = digest
    return digest


def affinity_key(config: SystemConfig) -> str:
    """Digest naming the warm state a config's execution can reuse.

    Covers the exec-model parameters (the memoized penalty caches and
    compiled kernel are pure functions of these), the workload family,
    and the code version — so a code change or a different platform
    geometry can never alias into stale warm state.  Configs that cannot
    be canonicalized (e.g. policy instances) fall back to a family-only
    key: they still group by family, just without exec-model identity.
    """
    payload = {
        "code": code_version(),
        "exec_model": _exec_fingerprint(config),
        "family": workload_family(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class QueuedTask:
    """One task attempt waiting in a worker queue."""

    index: int       # position in the submitted batch
    attempt: int     # 1-based
    key: str         # affinity key


@dataclass
class SchedulerStats:
    """Operational counters (never result-affecting)."""

    routed_affine: int = 0   # tasks placed on a worker already warm for their key
    routed_cold: int = 0     # tasks placed on a cold/least-loaded worker
    steals: int = 0          # tasks stolen by an idle worker


class AffinityScheduler:
    """Per-worker task queues with MRU affinity routing and idle stealing.

    The scheduler lives in the parent and survives across batches, so a
    worker's MRU key — the affinity key of the last chunk dispatched to
    it — reflects what its process-level caches actually hold.
    """

    def __init__(self, n_workers: int, *,
                 route: str = "affinity") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if route not in ("affinity", "scatter"):
            raise ValueError(f"unknown route mode {route!r}")
        self.n_workers = n_workers
        self.route = route
        self.queues: List[Deque[QueuedTask]] = [deque() for _ in range(n_workers)]
        self.mru: List[Optional[str]] = [None] * n_workers
        self.stats = SchedulerStats()
        self._rr = 0  # scatter-mode round-robin cursor

    # ------------------------------------------------------------------
    # enqueue
    # ------------------------------------------------------------------
    def pending(self) -> int:
        return sum(len(q) for q in self.queues)

    def assign(self, tasks: Sequence[QueuedTask]) -> None:
        """Place a batch of tasks onto the worker queues.

        ``affinity`` mode groups tasks by key (submission order preserved
        within a group), prefers the MRU-matching worker while it is
        under its fair share, and spills the rest to the least-loaded
        workers.  ``scatter`` mode round-robins tasks one by one,
        deliberately destroying affinity — the adversarial-routing lever
        the determinism tests use.
        """
        if not tasks:
            return
        if self.route == "scatter":
            for task in tasks:
                self.queues[self._rr % self.n_workers].append(task)
                self._rr += 1
                self.stats.routed_cold += 1
            return

        groups: Dict[str, List[QueuedTask]] = {}
        for task in tasks:
            groups.setdefault(task.key, []).append(task)
        total = self.pending() + len(tasks)
        # Fair share per worker; a group larger than this is split so a
        # single-family sweep cannot serialize onto one warm worker.
        target = -(-total // self.n_workers)  # ceil
        loads = [len(q) for q in self.queues]
        for key, group in groups.items():
            remaining = group
            while remaining:
                worker = self._pick_worker(key, loads, target)
                room = max(1, target - loads[worker])
                take, remaining = remaining[:room], remaining[room:]
                self.queues[worker].extend(take)
                loads[worker] += len(take)
                if self.mru[worker] == key:
                    self.stats.routed_affine += len(take)
                else:
                    self.stats.routed_cold += len(take)

    def _pick_worker(self, key: str, loads: List[int], target: int) -> int:
        """MRU-matching worker while under target, else least-loaded."""
        best = -1
        for w in range(self.n_workers):
            if self.mru[w] == key and loads[w] < target:
                if best < 0 or loads[w] < loads[best]:
                    best = w
        if best >= 0:
            return best
        return min(range(self.n_workers), key=lambda w: loads[w])

    def push(self, task: QueuedTask) -> None:
        """Re-queue one task (retry path): back to its affinity home."""
        self.assign([task])

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_chunk(self, worker: int, max_tasks: int) -> List[QueuedTask]:
        """Pop the next same-key run (up to ``max_tasks``) for ``worker``.

        Serves the worker's own queue head first; an empty queue steals a
        same-key run from the *tail* of the longest queue, so the victim
        keeps the warm run at its head.  Returns ``[]`` when no work is
        left anywhere.  Every returned chunk is single-key by
        construction — one warm model serves the whole chunk.
        """
        if max_tasks < 1:
            raise ValueError("max_tasks must be >= 1")
        queue = self.queues[worker]
        if not queue:
            victim = self._steal_victim(worker)
            if victim is None:
                return []
            vq = self.queues[victim]
            run: Deque[QueuedTask] = deque()
            key = vq[-1].key
            while vq and len(run) < max_tasks and vq[-1].key == key:
                run.appendleft(vq.pop())
            self.stats.steals += len(run)
            self.mru[worker] = key
            return list(run)
        chunk: List[QueuedTask] = [queue.popleft()]
        key = chunk[0].key
        while queue and len(chunk) < max_tasks and queue[0].key == key:
            chunk.append(queue.popleft())
        self.mru[worker] = key
        return chunk

    def _steal_victim(self, thief: int) -> Optional[int]:
        victim = -1
        longest = 0
        for w in range(self.n_workers):
            if w != thief and len(self.queues[w]) > longest:
                victim, longest = w, len(self.queues[w])
        return victim if victim >= 0 else None

    # ------------------------------------------------------------------
    def drain(self) -> List[QueuedTask]:
        """Remove and return every queued task, in batch-index order
        (the serial-degradation path wants deterministic order)."""
        out: List[QueuedTask] = []
        for queue in self.queues:
            out.extend(queue)
            queue.clear()
        return sorted(out, key=lambda t: (t.index, t.attempt))
