"""Persistent on-disk result cache for simulation summaries.

One JSON file per content key (see :mod:`repro.runner.keys`), sharded into
256 two-hex-character subdirectories.  The default location is

- ``$REPRO_CACHE_DIR`` if set, else
- ``$XDG_CACHE_HOME/repro`` if set, else
- ``~/.cache/repro``.

Entries are written atomically (temp file + fsync + rename) so a crash
mid-``put`` can never publish a torn file.  Reads are uniformly
defensive: *any* entry that cannot be parsed and validated — truncated
JSON, non-object payloads, unknown layout versions, schema-drifted
summaries — is treated as a miss and moved to ``<root>/quarantine/``
for post-mortem inspection rather than silently deleted.  Per-instance
:class:`CacheStats` count hits, misses, decode ``errors`` and
quarantined entries.  Because the content key already encodes the
simulator's code version, invalidation is automatic — stale entries are
simply never looked up again (``prune`` can reclaim the space).

A :class:`~repro.runner.faults.FaultPlan` with a nonzero ``corrupt``
rate can be attached to deterministically write torn entries, which is
how the fault-injection harness proves the quarantine path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..sim.metrics import SimulationSummary
from .faults import FaultPlan

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "summary_to_dict",
    "summary_from_dict",
]

#: Bump when the on-disk entry layout changes.
#: 2: reordering/migration metrics added to SimulationSummary.
_FORMAT = 2

#: Subdirectory (of the cache root) holding quarantined entries.
_QUARANTINE = "quarantine"


def default_cache_dir() -> Path:
    """Resolve the default cache root (see module docstring)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def summary_to_dict(summary: SimulationSummary) -> Dict[str, object]:
    """JSON-able dict of a summary (tuples become lists)."""
    out: Dict[str, object] = {}
    for f in dataclasses.fields(summary):
        value = getattr(summary, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def summary_from_dict(data: dict) -> SimulationSummary:
    """Inverse of :func:`summary_to_dict` (restores tuples and int keys)."""
    kwargs = dict(data)
    kwargs["delay_ci_us"] = tuple(kwargs["delay_ci_us"])
    kwargs["utilization_per_proc"] = tuple(kwargs["utilization_per_proc"])
    for field in ("per_stream_mean_delay_us", "ooo_depth_counts",
                  "per_stream_out_of_order", "per_stream_migrations"):
        kwargs[field] = {int(k): v for k, v in kwargs[field].items()}
    return SimulationSummary(**kwargs)


@dataclass
class CacheStats:
    """Per-instance accounting of one cache's activity."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries that existed but could not be read/validated.
    errors: int = 0
    #: Unreadable entries successfully moved to ``quarantine/``.
    quarantined: int = 0


class ResultCache:
    """Content-addressed store of :class:`SimulationSummary` objects."""

    def __init__(self, root: Optional["os.PathLike[str]"] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fault_plan = fault_plan
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE

    def get(self, key: str) -> Optional[SimulationSummary]:
        """Look up a summary.

        A missing file is a plain miss.  An *unreadable* file — truncated
        or invalid JSON, a non-object payload, an unknown ``format``, or
        a summary whose schema no longer matches — is uniformly counted
        as an error, quarantined, and reported as a miss so the caller
        recomputes and re-publishes a clean entry.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            if not isinstance(data, dict):
                raise ValueError(f"cache entry is {type(data).__name__}, not an object")
            if data.get("format") != _FORMAT:
                raise ValueError(f"unknown cache entry format {data.get('format')!r}")
            summary_payload = data["summary"]
            if not isinstance(summary_payload, dict):
                raise ValueError("cache entry 'summary' is not an object")
            summary = summary_from_dict(summary_payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn, stale or foreign entry: move it aside (evidence for a
            # post-mortem — never silently destroyed) so it cannot mask
            # the clean re-write that follows the recompute.
            self.stats.errors += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        return summary

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry into ``quarantine/`` (unique name)."""
        try:
            qdir = self.quarantine_dir
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            serial = 0
            while target.exists():
                serial += 1
                target = qdir / f"{path.stem}.{serial}{path.suffix}"
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            pass  # raced away or unmovable; the next reader retries

    def put(self, key: str, summary: SimulationSummary) -> None:
        """Atomically persist a summary under ``key`` (temp file, fsync,
        ``os.replace``) — a crash mid-write can never publish a torn
        entry."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": _FORMAT, "key": key,
                   "summary": summary_to_dict(summary)}
        blob = json.dumps(payload, separators=(",", ":")).encode()
        if self.fault_plan is not None and \
                self.fault_plan.decide("corrupt", key):
            blob = blob[: max(1, len(blob) // 2)]  # injected torn write
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    # -- maintenance -------------------------------------------------
    def _entry_files(self) -> Iterator[Path]:
        """Every live entry file (shard dirs only — quarantine and any
        checkpoint journals under the root are not entries)."""
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def quarantined_entries(self) -> int:
        """Number of files currently parked in ``quarantine/``."""
        qdir = self.quarantine_dir
        if not qdir.is_dir():
            return 0
        return sum(1 for _ in qdir.glob("*.json"))

    def prune(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear_quarantine(self) -> int:
        """Delete every quarantined file; returns the number removed."""
        removed = 0
        qdir = self.quarantine_dir
        if qdir.is_dir():
            for path in sorted(qdir.glob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
