"""Persistent on-disk result cache for simulation summaries.

One JSON file per content key (see :mod:`repro.runner.keys`), sharded into
256 two-hex-character subdirectories.  The default location is

- ``$REPRO_CACHE_DIR`` if set, else
- ``$XDG_CACHE_HOME/repro`` if set, else
- ``~/.cache/repro``.

Entries are written atomically (temp file + rename) so concurrent sweep
workers and interrupted runs can never leave a torn file behind; a file
that fails to parse is treated as a miss and removed.  Because the content
key already encodes the simulator's code version, invalidation is
automatic — stale entries are simply never looked up again (``prune`` can
reclaim the space).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from ..sim.metrics import SimulationSummary

__all__ = ["ResultCache", "default_cache_dir", "summary_to_dict", "summary_from_dict"]

#: Bump when the on-disk entry layout changes.
_FORMAT = 1


def default_cache_dir() -> Path:
    """Resolve the default cache root (see module docstring)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def summary_to_dict(summary: SimulationSummary) -> Dict[str, object]:
    """JSON-able dict of a summary (tuples become lists)."""
    out = {}
    for f in dataclasses.fields(summary):
        value = getattr(summary, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def summary_from_dict(data: dict) -> SimulationSummary:
    """Inverse of :func:`summary_to_dict` (restores tuples and int keys)."""
    kwargs = dict(data)
    kwargs["delay_ci_us"] = tuple(kwargs["delay_ci_us"])
    kwargs["utilization_per_proc"] = tuple(kwargs["utilization_per_proc"])
    kwargs["per_stream_mean_delay_us"] = {
        int(k): v for k, v in kwargs["per_stream_mean_delay_us"].items()
    }
    return SimulationSummary(**kwargs)


class ResultCache:
    """Content-addressed store of :class:`SimulationSummary` objects."""

    def __init__(self, root: Optional["os.PathLike[str]"] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationSummary]:
        """Look up a summary; any read/parse failure is a miss."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
            if data.get("format") != _FORMAT:
                return None
            return summary_from_dict(data["summary"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn or stale entry: drop it so it cannot mask future writes.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, summary: SimulationSummary) -> None:
        """Atomically persist a summary under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": _FORMAT, "key": key,
                   "summary": summary_to_dict(summary)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def prune(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
