"""Analytic packet execution-time model (the paper's Section 3.2).

The model interpolates the measured execution-time bounds by the fraction
of the protocol footprint displaced from each cache level — the
Squillante-Lazowska ``D + R*C`` reload-transient form, applied per level
(the paper: "task execution time as the linear interpolation of the
maximum reload transient is also the approach taken in [24]"; "the impact
of the non-protocol workload is captured by scaling these bounds by the
fraction of the protocol footprint found at each corresponding layer in
the cache hierarchy"):

.. math::

    t(x) = t_{warm} + F_1(x)\\,(t_{L2} - t_{warm}) + F_2(x)\\,(t_{cold} - t_{L2})

where ``F1``/``F2`` come from :class:`repro.cache.CacheHierarchy` driven by
the intervening displacing reference count.

On top of the single-footprint form, the model decomposes the footprint
into components (:class:`repro.core.params.FootprintComposition`) whose
cache states evolve independently — protocol code+globals, per-stream
state, per-thread stack — because different scheduling policies preserve
affinity for different components.  Each component contributes its weight
times the per-level transients, driven by *its own* intervening reference
count on the serving processor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from .params import FootprintComposition, ProtocolCosts

__all__ = ["ComponentState", "ExecutionTimeModel", "COLD"]

#: Sentinel intervening-reference count meaning "never resident here".
COLD: float = math.inf


@dataclass(frozen=True)
class ComponentState:
    """Cache-state inputs for one packet execution on one processor.

    Each field is the number of displacing memory references issued on the
    serving processor since the corresponding footprint component last
    executed there; ``COLD`` (infinity) means the component was never
    resident.  ``shared_invalidated`` marks that another processor has
    executed protocol code since this one last did, so the writable shared
    portion of the code+globals component has migrated away (Locking
    only).
    """

    code_refs: float = COLD
    stream_refs: float = COLD
    thread_refs: float = COLD
    shared_invalidated: bool = False

    def __post_init__(self) -> None:
        for name in ("code_refs", "stream_refs", "thread_refs"):
            v = getattr(self, name)
            if not (v >= 0.0):  # also rejects NaN
                raise ValueError(f"{name} must be >= 0 or COLD, got {v!r}")


class ExecutionTimeModel:
    """Maps cache state to packet execution time.

    Parameters
    ----------
    costs:
        Measured execution-time bounds and per-packet overheads.
    composition:
        Footprint component weights.
    hierarchy:
        Two-level (or deeper) cache hierarchy; only the first two levels
        participate in the interpolation (matching the paper's platform) —
        deeper levels would require additional measured bounds.
    memoize:
        Cache :meth:`component_penalty_us` results per
        :class:`ComponentState`.  The simulator's hot path re-evaluates a
        small set of recurring states millions of times — fully-warm
        (back-to-back service under affinity policies), fully-cold (idle
        or migrated components), and their mixtures — so an LRU-ish table
        short-circuits the transcendental flush math for them.  The cache
        is bounded (cleared wholesale when full) and keyed on exact state,
        so results are bit-identical with or without it.
    """

    #: Memoization table bound; states are 4-field tuples, so even the
    #: worst case costs a few MB.
    _PENALTY_CACHE_MAX = 65_536

    def __init__(
        self,
        costs: ProtocolCosts,
        composition: FootprintComposition,
        hierarchy: CacheHierarchy,
        *,
        memoize: bool = True,
    ) -> None:
        if hierarchy.n_levels < 2:
            raise ValueError(
                "the execution-time model needs a two-level hierarchy "
                "(t_warm / t_l2 / t_cold bounds)"
            )
        self.costs = costs
        self.composition = composition
        self.hierarchy = hierarchy
        self._delta1 = costs.l1_reload_us
        self._delta2 = costs.l2_reload_us
        self._penalty_cache: Optional[Dict[ComponentState, float]] = (
            {} if memoize else None
        )
        # Precomputed per-level constants for the scalar fast path used by
        # the simulator (millions of per-packet evaluations; the generic
        # NumPy path costs ~50x more on scalars).  Only direct-mapped
        # levels qualify; higher associativity falls back to the exact
        # vectorized path.
        fp = hierarchy.footprint_fn
        self._scalar_levels = []
        for lv in hierarchy.levels[:2]:
            log_L = math.log10(lv.line_bytes)
            self._scalar_levels.append({
                "split": lv.split_fraction,
                "c0": math.log10(fp.W) + fp.a * log_L,       # log10 u at R=1
                "slope": fp.b + fp.log10_d * log_L,          # d log10 u / d log10 R
                "u1": 10.0 ** (math.log10(fp.W) + fp.a * log_L),
                "log1m_p": math.log1p(-1.0 / lv.n_sets),
                "direct_mapped": lv.associativity == 1,
                "index": len(self._scalar_levels),
            })

    def _flush_scalar(self, refs: float, level: int) -> float:
        """Scalar ``F_level`` (exact same math as the vectorized path)."""
        p = self._scalar_levels[level]
        if not p["direct_mapped"]:
            return float(self.hierarchy.flush_fraction_for_references(refs, level))
        if refs <= 0.0:
            return 0.0
        if math.isinf(refs):
            return 1.0
        r = refs * p["split"]
        if r < 1.0:
            u = r * p["u1"]
        else:
            u = 10.0 ** (p["c0"] + p["slope"] * math.log10(r))
        if u > r:
            u = r
        f = -math.expm1(u * p["log1m_p"])
        return 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)

    # ------------------------------------------------------------------
    # Single-footprint form: the t(x) curve (experiment E05)
    # ------------------------------------------------------------------
    def flush_fractions(self, intervening_refs):
        """``(F1, F2)`` for a displacing reference count (scalar or array)."""
        if isinstance(intervening_refs, float):
            return (
                self._flush_scalar(intervening_refs, 0),
                self._flush_scalar(intervening_refs, 1),
            )
        refs = np.asarray(intervening_refs, dtype=np.float64)
        finite = np.isfinite(refs)
        safe = np.where(finite, refs, 0.0)
        f1 = np.asarray(self.hierarchy.flush_fraction_for_references(safe, 0))
        f2 = np.asarray(self.hierarchy.flush_fraction_for_references(safe, 1))
        f1 = np.where(finite, f1, 1.0)
        f2 = np.where(finite, f2, 1.0)
        if np.ndim(intervening_refs) == 0:
            return float(f1), float(f2)
        return f1, f2

    def reload_penalty(self, intervening_refs):
        """Reload transient ``F1*Δ1 + F2*Δ2`` (µs) for a whole footprint."""
        f1, f2 = self.flush_fractions(intervening_refs)
        return f1 * self._delta1 + f2 * self._delta2

    def execution_time_after_idle(self, idle_us, intensity: float = 1.0):
        """The paper's ``t(x)``: execution time after ``x`` µs of
        intervening non-protocol activity at intensity ``V`` displaced a
        previously fully-warm footprint.

        Accepts scalars or arrays of ``idle_us``.  ``t(0) = t_warm`` and
        ``t(x) -> t_cold`` as ``x -> inf`` (for ``V > 0``).
        """
        refs = self.hierarchy.references_for_time(idle_us, intensity)
        return self.costs.t_warm_us + self.reload_penalty(refs)

    # ------------------------------------------------------------------
    # Component-decomposed form used by the simulator
    # ------------------------------------------------------------------
    def component_penalty_us(self, state: ComponentState) -> float:
        """Total reload transient (µs) given per-component cache state.

        Memoized per exact state when the model was built with
        ``memoize=True`` (the default); see the class docstring.
        """
        cache = self._penalty_cache
        if cache is None:
            return self._component_penalty_uncached(state)
        hit = cache.get(state)
        if hit is not None:
            return hit
        value = self._component_penalty_uncached(state)
        if len(cache) >= self._PENALTY_CACHE_MAX:
            cache.clear()
        cache[state] = value
        return value

    def _component_penalty_uncached(self, state: ComponentState) -> float:
        comp = self.composition
        pen_stream = self.reload_penalty(state.stream_refs)
        pen_thread = self.reload_penalty(state.thread_refs)
        # Code+globals: optionally split into a migrating writable part
        # (cold whenever another processor ran protocol since) and the
        # read-only remainder (displaced only by intervening references).
        pen_code_resident = self.reload_penalty(state.code_refs)
        if state.shared_invalidated:
            w_shared = comp.shared_writable_of_code
            pen_code = (
                w_shared * (self._delta1 + self._delta2)
                + (1.0 - w_shared) * pen_code_resident
            )
        else:
            pen_code = pen_code_resident
        return (
            comp.code_global * pen_code
            + comp.stream_state * pen_stream
            + comp.thread_stack * pen_thread
        )

    def execution_time_us(
        self,
        state: ComponentState,
        *,
        payload_bytes: float = 0.0,
        data_touching: bool = False,
        locking: bool = False,
        extra_us: float = 0.0,
    ) -> float:
        """Full per-packet processing time (µs).

        ``t_warm`` + component reload transients + dispatch overhead
        (+ lock acquire/release under Locking)
        (+ per-byte data-touching time when enabled — the paper's default
        results exclude it, "motivated by the fact that in many real
        environments packet processing time is dominated by non-data
        touching operations")
        (+ ``extra_us``, the paper's ``V``: a fixed cache-independent
        per-packet overhead; the V-family curves of Figures 10/11 sweep
        it, and checksumming a maximal FDDI payload corresponds to
        V ≈ 139 µs at the quoted 32 B/µs rate).
        """
        if extra_us < 0:
            raise ValueError("extra_us must be non-negative")
        t = (
            self.costs.t_warm_us
            + self.component_penalty_us(state)
            + self.costs.dispatch_us
            + extra_us
        )
        if locking:
            t += self.costs.lock_overhead_us
        if data_touching:
            t += self.costs.data_touching_us(payload_bytes)
        return t

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def warm_service_us(self, *, locking: bool = False) -> float:
        """Best-case service time (all components warm)."""
        return self.execution_time_us(
            ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0),
            locking=locking,
        )

    def cold_service_us(self, *, locking: bool = False) -> float:
        """Worst-case service time (all components cold)."""
        return self.execution_time_us(ComponentState(), locking=locking)

    def utilization_bound_rate(self, *, locking: bool, n_processors: int) -> float:
        """Crude aggregate capacity bound (packets/µs).

        The minimum of the CPU bound ``N / t_warm_service`` and — under
        Locking — the critical-section bound ``1 / lock_cs``.  Used by the
        capacity-search experiment to bracket its bisection.
        """
        best = self.warm_service_us(locking=locking)
        rate = n_processors / best
        if locking and self.costs.lock_cs_us > 0:
            rate = min(rate, 1.0 / self.costs.lock_cs_us)
        return rate

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        c = self.costs
        return (
            f"ExecutionTimeModel(t_warm={c.t_warm_us:.1f}us, "
            f"t_l2={c.t_l2_us:.1f}us, t_cold={c.t_cold_us:.1f}us, "
            f"max_benefit={c.max_affinity_benefit:.1%})"
        )
