"""Analytic packet execution-time model (the paper's Section 3.2).

The model interpolates the measured execution-time bounds by the fraction
of the protocol footprint displaced from each cache level — the
Squillante-Lazowska ``D + R*C`` reload-transient form, applied per level
(the paper: "task execution time as the linear interpolation of the
maximum reload transient is also the approach taken in [24]"; "the impact
of the non-protocol workload is captured by scaling these bounds by the
fraction of the protocol footprint found at each corresponding layer in
the cache hierarchy"):

.. math::

    t(x) = t_{warm} + F_1(x)\\,(t_{L2} - t_{warm}) + F_2(x)\\,(t_{cold} - t_{L2})

where ``F1``/``F2`` come from :class:`repro.cache.CacheHierarchy` driven by
the intervening displacing reference count.

On top of the single-footprint form, the model decomposes the footprint
into components (:class:`repro.core.params.FootprintComposition`) whose
cache states evolve independently — protocol code+globals, per-stream
state, per-thread stack — because different scheduling policies preserve
affinity for different components.  Each component contributes its weight
times the per-level transients, driven by *its own* intervening reference
count on the serving processor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..cache.hierarchy import CacheHierarchy
from .kernels import maybe_build_penalty_kernel
from .params import FootprintComposition, ProtocolCosts

__all__ = ["ComponentState", "ExecutionTimeModel", "COLD"]

#: Sentinel intervening-reference count meaning "never resident here".
COLD: float = math.inf


@dataclass(frozen=True)
class ComponentState:
    """Cache-state inputs for one packet execution on one processor.

    Each field is the number of displacing memory references issued on the
    serving processor since the corresponding footprint component last
    executed there; ``COLD`` (infinity) means the component was never
    resident.  ``shared_invalidated`` marks that another processor has
    executed protocol code since this one last did, so the writable shared
    portion of the code+globals component has migrated away (Locking
    only).
    """

    code_refs: float = COLD
    stream_refs: float = COLD
    thread_refs: float = COLD
    shared_invalidated: bool = False

    def __post_init__(self) -> None:
        for name in ("code_refs", "stream_refs", "thread_refs"):
            v = getattr(self, name)
            if not (v >= 0.0):  # also rejects NaN
                raise ValueError(f"{name} must be >= 0 or COLD, got {v!r}")


class ExecutionTimeModel:
    """Maps cache state to packet execution time.

    Parameters
    ----------
    costs:
        Measured execution-time bounds and per-packet overheads.
    composition:
        Footprint component weights.
    hierarchy:
        Two-level (or deeper) cache hierarchy; only the first two levels
        participate in the interpolation (matching the paper's platform) —
        deeper levels would require additional measured bounds.
    memoize:
        Enable the bounded reload-penalty cache behind
        :meth:`component_penalty_us`.  The simulator's hot path presents
        a tiny set of recurring *discrete* component states — fully-warm
        (``refs == 0``), fully-cold (``COLD``), and the shared-writable
        invalidation flag — mixed with continuously-valued intervening
        reference counts that essentially never repeat exactly.  The
        fast path therefore resolves the discrete states analytically
        (no flush math at all), reuses one component's penalty for any
        other component with the *same* reference count (back-to-back
        service makes ``code``/``thread``/``stream`` counts coincide
        constantly), and caches the remaining per-count penalties in a
        bounded exact-keyed table (cleared wholesale when full).  Every
        path reproduces the generic computation's float results bit for
        bit; :meth:`stats` reports the hit-rate counters.
    """

    #: Bound on the per-reference-count penalty cache (float -> float);
    #: cleared wholesale when full, so even the worst case costs a few MB.
    _PENALTY_CACHE_MAX = 65_536

    def __init__(
        self,
        costs: ProtocolCosts,
        composition: FootprintComposition,
        hierarchy: CacheHierarchy,
        *,
        memoize: bool = True,
    ) -> None:
        if hierarchy.n_levels < 2:
            raise ValueError(
                "the execution-time model needs a two-level hierarchy "
                "(t_warm / t_l2 / t_cold bounds)"
            )
        self.costs = costs
        self.composition = composition
        self.hierarchy = hierarchy
        self._delta1 = costs.l1_reload_us
        self._delta2 = costs.l2_reload_us
        #: Reload penalty of a fully-cold component: bit-identical to
        #: ``reload_penalty(COLD)`` because ``1.0 * d == d`` exactly.
        self._pen_cold = self._delta1 + self._delta2
        # Hot-path constants hoisted out of per-packet attribute chains.
        self._w_code = composition.code_global
        self._w_stream = composition.stream_state
        self._w_thread = composition.thread_stack
        self._w_shared = composition.shared_writable_of_code
        self._t_warm = costs.t_warm_us
        self._dispatch_us = costs.dispatch_us
        self._lock_oh = costs.lock_overhead_us
        self._penalty_cache: Optional[Dict[float, float]] = (
            {} if memoize else None
        )
        # Fast-path hit-rate counters — the minimal independent set; the
        # remaining stats() figures (calls, dedup hits, component evals)
        # are derived, keeping the per-packet path to one increment plus
        # one per _pen1 outcome.
        self._n_fast_calls = 0
        self._n_slow_calls = 0
        self._n_analytic_hits = 0
        self._n_cache_hits = 0
        self._n_flush_computes = 0
        # Precomputed per-level constants for the scalar fast path used by
        # the simulator (millions of per-packet evaluations; the generic
        # NumPy path costs ~50x more on scalars).  Only direct-mapped
        # levels qualify; higher associativity falls back to the exact
        # vectorized path.
        fp = hierarchy.footprint_fn
        self._scalar_levels = []
        for lv in hierarchy.levels[:2]:
            log_L = math.log10(lv.line_bytes)
            self._scalar_levels.append({
                "split": lv.split_fraction,
                "c0": math.log10(fp.W) + fp.a * log_L,       # log10 u at R=1
                "slope": fp.b + fp.log10_d * log_L,          # d log10 u / d log10 R
                "u1": 10.0 ** (math.log10(fp.W) + fp.a * log_L),
                "log1m_p": math.log1p(-1.0 / lv.n_sets),
                "direct_mapped": lv.associativity == 1,
                "index": len(self._scalar_levels),
            })
        self._all_direct_mapped = all(
            p["direct_mapped"] for p in self._scalar_levels
        )
        # Unpacked level constants for the inlined two-level fast path
        # (``None`` doubles as the "not all direct-mapped" flag in _pen1).
        if self._all_direct_mapped:
            p0, p1 = self._scalar_levels
            self._fast_l1 = (p0["split"], p0["c0"], p0["slope"],
                             p0["u1"], p0["log1m_p"])
            self._fast_l2 = (p1["split"], p1["c0"], p1["slope"],
                             p1["u1"], p1["log1m_p"])
        else:
            self._fast_l1 = None
            self._fast_l2 = None
        # Optional compiled per-unique-count kernel (REPRO_KERNEL=numba);
        # None means the pure-python _pen1 loop serves the batch path.
        self._penalty_kernel = maybe_build_penalty_kernel(
            self._fast_l1, self._fast_l2, self._delta1, self._delta2,
        )

    def _flush_scalar(self, refs: float, level: int) -> float:
        """Scalar ``F_level`` (exact same math as the vectorized path)."""
        p = self._scalar_levels[level]
        if not p["direct_mapped"]:
            return float(self.hierarchy.flush_fraction_for_references(refs, level))
        if refs <= 0.0:
            return 0.0
        if math.isinf(refs):
            return 1.0
        r = refs * p["split"]
        if r < 1.0:
            u = r * p["u1"]
        else:
            u = 10.0 ** (p["c0"] + p["slope"] * math.log10(r))
        if u > r:
            u = r
        f = -math.expm1(u * p["log1m_p"])
        return 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)

    # ------------------------------------------------------------------
    # Single-footprint form: the t(x) curve (experiment E05)
    # ------------------------------------------------------------------
    def flush_fractions(self, intervening_refs):
        """``(F1, F2)`` for a displacing reference count (scalar or array)."""
        if isinstance(intervening_refs, float):
            return (
                self._flush_scalar(intervening_refs, 0),
                self._flush_scalar(intervening_refs, 1),
            )
        refs = np.asarray(intervening_refs, dtype=np.float64)
        finite = np.isfinite(refs)
        safe = np.where(finite, refs, 0.0)
        f1 = np.asarray(self.hierarchy.flush_fraction_for_references(safe, 0))
        f2 = np.asarray(self.hierarchy.flush_fraction_for_references(safe, 1))
        f1 = np.where(finite, f1, 1.0)
        f2 = np.where(finite, f2, 1.0)
        if np.ndim(intervening_refs) == 0:
            return float(f1), float(f2)
        return f1, f2

    def reload_penalty(self, intervening_refs):
        """Reload transient ``F1*Δ1 + F2*Δ2`` (µs) for a whole footprint."""
        f1, f2 = self.flush_fractions(intervening_refs)
        return f1 * self._delta1 + f2 * self._delta2

    def execution_time_after_idle(self, idle_us, intensity: float = 1.0):
        """The paper's ``t(x)``: execution time after ``x`` µs of
        intervening non-protocol activity at intensity ``V`` displaced a
        previously fully-warm footprint.

        Accepts scalars or arrays of ``idle_us``.  ``t(0) = t_warm`` and
        ``t(x) -> t_cold`` as ``x -> inf`` (for ``V > 0``).
        """
        refs = self.hierarchy.references_for_time(idle_us, intensity)
        return self.costs.t_warm_us + self.reload_penalty(refs)

    # ------------------------------------------------------------------
    # Component-decomposed form used by the simulator
    # ------------------------------------------------------------------
    def component_penalty_us(self, state: ComponentState) -> float:
        """Total reload transient (µs) given per-component cache state.

        When the model was built with ``memoize=True`` (the default) and
        every reference count is a plain ``float``, the scalar fast path
        resolves the penalty via analytic discrete states, intra-state
        deduplication, and the bounded per-count cache; otherwise it falls
        back to the generic computation.  Both paths return bit-identical
        floats (see the class docstring).
        """
        code = state.code_refs
        if (
            self._penalty_cache is not None
            and type(code) is float
            and type(state.stream_refs) is float
            and type(state.thread_refs) is float
        ):
            return self._penalty_scalar(
                code, state.stream_refs, state.thread_refs,
                state.shared_invalidated,
            )
        self._n_slow_calls += 1
        return self._component_penalty_uncached(state)

    def _pen1(self, refs: float) -> float:
        """Reload penalty of one component (``F1*Δ1 + F2*Δ2``), fast.

        The analytic branches reproduce the generic expression exactly:
        ``refs == 0`` gives ``0.0*Δ1 + 0.0*Δ2 == 0.0`` and ``COLD`` gives
        ``1.0*Δ1 + 1.0*Δ2 == Δ1 + Δ2`` bit for bit, so skipping the flush
        math cannot change a result.  Remaining counts go through a
        bounded cache keyed on the *exact* float (the exactness guard: a
        key can only ever map to the value the uncached path computes for
        it), cleared wholesale at :attr:`_PENALTY_CACHE_MAX` entries.

        Only ever called from :meth:`_penalty_scalar`, which runs only
        when the model memoizes — so ``self._penalty_cache`` is a dict.
        """
        l1 = self._fast_l1  # None unless both levels are direct-mapped
        if l1 is not None:
            if refs == 0.0:
                self._n_analytic_hits += 1
                return 0.0
            if refs == COLD:
                self._n_analytic_hits += 1
                return self._pen_cold
        cache = self._penalty_cache
        hit = cache.get(refs)
        if hit is not None:
            self._n_cache_hits += 1
            return hit
        self._n_flush_computes += 1
        if l1 is not None:
            # Inlined _flush_scalar for both levels (refs is finite and
            # positive here — the analytic branches caught 0 and COLD):
            # identical operations on identical constants, so identical
            # floats, without two calls and a dozen dict lookups.
            split, c0, slope, u1, log1m_p = l1
            r = refs * split
            if r < 1.0:
                u = r * u1
            else:
                u = 10.0 ** (c0 + slope * math.log10(r))
            if u > r:
                u = r
            f = -math.expm1(u * log1m_p)
            f1 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            split, c0, slope, u1, log1m_p = self._fast_l2
            r = refs * split
            if r < 1.0:
                u = r * u1
            else:
                u = 10.0 ** (c0 + slope * math.log10(r))
            if u > r:
                u = r
            f = -math.expm1(u * log1m_p)
            f2 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            value = f1 * self._delta1 + f2 * self._delta2
        else:
            value = (
                self._flush_scalar(refs, 0) * self._delta1
                + self._flush_scalar(refs, 1) * self._delta2
            )
        if len(cache) >= self._PENALTY_CACHE_MAX:
            cache.clear()
        cache[refs] = value
        return value

    def _penalty_scalar(self, code: float, stream: float, thread: float,
                        shared_invalidated: bool) -> float:
        """Scalar fast-path component penalty (bit-identical).

        Back-to-back service under affinity policies makes the three
        reference counts coincide constantly, so equal counts reuse one
        computed penalty (equal inputs give equal outputs — the penalty is
        a pure function of the count).
        """
        self._n_fast_calls += 1
        pen_code_resident = self._pen1(code)
        if stream == code:
            pen_stream = pen_code_resident
        else:
            pen_stream = self._pen1(stream)
        if thread == code:
            pen_thread = pen_code_resident
        elif thread == stream:
            pen_thread = pen_stream
        else:
            pen_thread = self._pen1(thread)
        if shared_invalidated:
            w_shared = self._w_shared
            pen_code = (
                w_shared * self._pen_cold
                + (1.0 - w_shared) * pen_code_resident
            )
        else:
            pen_code = pen_code_resident
        return (
            self._w_code * pen_code
            + self._w_stream * pen_stream
            + self._w_thread * pen_thread
        )

    def _component_penalty_uncached(self, state: ComponentState) -> float:
        comp = self.composition
        pen_stream = self.reload_penalty(state.stream_refs)
        pen_thread = self.reload_penalty(state.thread_refs)
        # Code+globals: optionally split into a migrating writable part
        # (cold whenever another processor ran protocol since) and the
        # read-only remainder (displaced only by intervening references).
        pen_code_resident = self.reload_penalty(state.code_refs)
        if state.shared_invalidated:
            w_shared = comp.shared_writable_of_code
            pen_code = (
                w_shared * (self._delta1 + self._delta2)
                + (1.0 - w_shared) * pen_code_resident
            )
        else:
            pen_code = pen_code_resident
        return (
            comp.code_global * pen_code
            + comp.stream_state * pen_stream
            + comp.thread_stack * pen_thread
        )

    # ------------------------------------------------------------------
    # Batched (array) form used by the batched engine
    # ------------------------------------------------------------------
    def _pen_many(self, refs: np.ndarray) -> np.ndarray:
        """Per-element reload penalties for an array of reference counts.

        Deduplicates through ``np.unique`` and resolves each *unique*
        count exactly once — through the same scalar :meth:`_pen1` (same
        analytic branches, same bounded cache, same libm calls, so the
        same bits as the scalar engine), or through the opt-in compiled
        kernel when one was built.  Counter accounting matches the scalar
        path's identities: ``_pen1`` bumps its own counters per unique
        count, and the caller bumps ``_n_fast_calls`` per state, so
        ``stats()``'s derived ``dedup_hits`` absorbs the array-level
        reuse exactly like the intra-state reuse it already absorbs.
        """
        uniq, inverse = np.unique(refs, return_inverse=True)
        kernel = self._penalty_kernel
        if kernel is not None:
            values = kernel(uniq)
            # Counter parity with the pure-python path: every unique count
            # was resolved by direct computation.
            self._n_flush_computes += int(uniq.shape[0])
        else:
            values = np.empty(uniq.shape[0], dtype=np.float64)
            pen1 = self._pen1
            for i, count in enumerate(uniq.tolist()):
                values[i] = pen1(count)
        return values[inverse]

    def component_penalties_array(
        self,
        code_refs: np.ndarray,
        stream_refs: np.ndarray,
        thread_refs: np.ndarray,
        shared_invalidated: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`component_penalty_us` over parallel arrays.

        All four inputs are equal-length 1-D arrays (``float64`` counts,
        ``bool`` invalidation flags).  Each unique reference count is
        computed once (see :meth:`_pen_many`); the weighted combination
        runs elementwise in the same operation order as the scalar
        expression, so every output element is bit-identical to the
        corresponding :meth:`component_penalty_us` call.
        """
        if self._penalty_cache is None:
            # Non-memoizing models take the generic per-state path (same
            # fallback rule as component_penalty_us).
            n = code_refs.shape[0]
            self._n_slow_calls += n
            out = np.empty(n, dtype=np.float64)
            code_l = code_refs.tolist()
            stream_l = stream_refs.tolist()
            thread_l = thread_refs.tolist()
            shared_l = shared_invalidated.tolist()
            for i in range(n):
                out[i] = self._component_penalty_uncached(ComponentState(
                    code_refs=code_l[i],
                    stream_refs=stream_l[i],
                    thread_refs=thread_l[i],
                    shared_invalidated=shared_l[i],
                ))
            return out
        n = code_refs.shape[0]
        self._n_fast_calls += n
        stacked = np.concatenate((code_refs, stream_refs, thread_refs))
        pens = self._pen_many(stacked)
        pen_code_resident = pens[:n]
        pen_stream = pens[n:2 * n]
        pen_thread = pens[2 * n:]
        if shared_invalidated.any():
            # Same two multiplies and one add, elementwise, as the scalar
            # branch; np.where keeps untouched elements' bits unchanged.
            w_shared = self._w_shared
            adjusted = (
                w_shared * self._pen_cold
                + (1.0 - w_shared) * pen_code_resident
            )
            pen_code = np.where(shared_invalidated, adjusted,
                                pen_code_resident)
        else:
            pen_code = pen_code_resident
        return (
            self._w_code * pen_code
            + self._w_stream * pen_stream
            + self._w_thread * pen_thread
        )

    def component_penalty_us_batch(
        self, states: Sequence[ComponentState],
    ) -> np.ndarray:
        """Batch :meth:`component_penalty_us`: one penalty per state.

        Bit-identical to calling :meth:`component_penalty_us` per state
        (the property tests in ``tests/core`` assert exact equality,
        including the mixed warm/COLD/invalidated corners).
        """
        code = np.array([s.code_refs for s in states], dtype=np.float64)
        stream = np.array([s.stream_refs for s in states], dtype=np.float64)
        thread = np.array([s.thread_refs for s in states], dtype=np.float64)
        shared = np.array([s.shared_invalidated for s in states], dtype=bool)
        return self.component_penalties_array(code, stream, thread, shared)

    def exec_times_batch(
        self,
        code_refs: np.ndarray,
        stream_refs: np.ndarray,
        thread_refs: np.ndarray,
        shared_invalidated: np.ndarray,
        *,
        payload_bytes: Optional[np.ndarray] = None,
        data_touching: bool = False,
        locking: bool = False,
        extra_us: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`execution_time_scalar` over parallel arrays.

        Each unique component state is computed once; the additive terms
        apply elementwise in the scalar path's operation order, so every
        element is bit-identical to the per-packet call.
        """
        if extra_us < 0:
            raise ValueError("extra_us must be non-negative")
        penalty = self.component_penalties_array(
            code_refs, stream_refs, thread_refs, shared_invalidated,
        )
        t = self._t_warm + penalty + self._dispatch_us + extra_us
        if locking:
            t = t + self._lock_oh
        if data_touching:
            if payload_bytes is None:
                raise ValueError(
                    "data_touching=True requires a payload_bytes array"
                )
            # Elementwise form of ProtocolCosts.data_touching_us.
            t = t + payload_bytes / self.costs.checksum_bytes_per_us
        return t

    def execution_time_us(
        self,
        state: ComponentState,
        *,
        penalty_us: Optional[float] = None,
        payload_bytes: float = 0.0,
        data_touching: bool = False,
        locking: bool = False,
        extra_us: float = 0.0,
    ) -> float:
        """Full per-packet processing time (µs).

        ``t_warm`` + component reload transients + dispatch overhead
        (+ lock acquire/release under Locking)
        (+ per-byte data-touching time when enabled — the paper's default
        results exclude it, "motivated by the fact that in many real
        environments packet processing time is dominated by non-data
        touching operations")
        (+ ``extra_us``, the paper's ``V``: a fixed cache-independent
        per-packet overhead; the V-family curves of Figures 10/11 sweep
        it, and checksumming a maximal FDDI payload corresponds to
        V ≈ 139 µs at the quoted 32 B/µs rate).

        Callers that already hold the state's reload penalty (trace
        attribution, the batch paths) pass it via ``penalty_us`` so it is
        not recomputed here; ``None`` (the default) computes it from
        ``state``.
        """
        if extra_us < 0:
            raise ValueError("extra_us must be non-negative")
        if penalty_us is None:
            penalty_us = self.component_penalty_us(state)
        t = (
            self.costs.t_warm_us
            + penalty_us
            + self.costs.dispatch_us
            + extra_us
        )
        if locking:
            t += self.costs.lock_overhead_us
        if data_touching:
            t += self.costs.data_touching_us(payload_bytes)
        return t

    def execution_time_scalar(
        self,
        code_refs: float,
        stream_refs: float,
        thread_refs: float,
        shared_invalidated: bool,
        *,
        payload_bytes: float = 0.0,
        data_touching: bool = False,
        locking: bool = False,
        extra_us: float = 0.0,
    ) -> float:
        """Hot-path :meth:`execution_time_us` taking raw reference counts.

        The dispatchers call this once per packet; skipping the
        :class:`ComponentState` dataclass (validation + hashing) and using
        the scalar penalty fast path is worth ~2 µs of host time per
        simulated packet.  The arithmetic replicates
        :meth:`execution_time_us` term for term, so results are
        bit-identical.
        """
        if extra_us < 0:
            raise ValueError("extra_us must be non-negative")
        if self._penalty_cache is not None:
            # Inlined _penalty_scalar (this is the once-per-packet call of
            # the whole simulation; one saved frame is measurable).  Same
            # statements, same counters, bit-identical result.
            self._n_fast_calls += 1
            pen_code_resident = self._pen1(code_refs)
            if stream_refs == code_refs:
                pen_stream = pen_code_resident
            else:
                pen_stream = self._pen1(stream_refs)
            if thread_refs == code_refs:
                pen_thread = pen_code_resident
            elif thread_refs == stream_refs:
                pen_thread = pen_stream
            else:
                pen_thread = self._pen1(thread_refs)
            if shared_invalidated:
                w_shared = self._w_shared
                pen_code = (
                    w_shared * self._pen_cold
                    + (1.0 - w_shared) * pen_code_resident
                )
            else:
                pen_code = pen_code_resident
            penalty = (
                self._w_code * pen_code
                + self._w_stream * pen_stream
                + self._w_thread * pen_thread
            )
        else:
            self._n_slow_calls += 1
            penalty = self._component_penalty_uncached(ComponentState(
                code_refs=code_refs,
                stream_refs=stream_refs,
                thread_refs=thread_refs,
                shared_invalidated=shared_invalidated,
            ))
        t = self._t_warm + penalty + self._dispatch_us + extra_us
        if locking:
            t += self._lock_oh
        if data_touching:
            t += self.costs.data_touching_us(payload_bytes)
        return t

    def stats(self) -> Dict[str, float]:
        """Fast-path hit-rate counters.

        ``hit_rate`` is the fraction of penalty evaluations resolved
        entirely on the scalar fast path (analytic states, intra-state
        deduplication, or the bounded count cache — never the generic
        NumPy fallback); the acceptance gate for the hot-path overhaul is
        ``hit_rate >= 0.90`` on the default workload.
        ``component_reuse_rate`` is the stricter per-component view: the
        fraction of the ``3 × calls`` component evaluations that avoided
        the transcendental flush math outright.

        Only five counters are maintained on the hot path; the rest are
        identities: every fast call evaluates exactly three components,
        each resolved by analytic state, cache hit, or flush compute
        (once per distinct count — the ``_pen1`` calls) or by intra-state
        deduplication (the remainder).
        """
        fast = self._n_fast_calls
        calls = fast + self._n_slow_calls
        evals = 3 * fast
        pen1_calls = (
            self._n_analytic_hits + self._n_cache_hits + self._n_flush_computes
        )
        dedup = evals - pen1_calls
        reused = self._n_analytic_hits + dedup + self._n_cache_hits
        cache = self._penalty_cache
        return {
            "calls": calls,
            "fast_calls": fast,
            "hit_rate": (fast / calls) if calls else 0.0,
            "component_evals": evals,
            "analytic_hits": self._n_analytic_hits,
            "dedup_hits": dedup,
            "cache_hits": self._n_cache_hits,
            "flush_computes": self._n_flush_computes,
            "component_reuse_rate": (reused / evals) if evals else 0.0,
            "cache_size": len(cache) if cache is not None else 0,
        }

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def warm_service_us(self, *, locking: bool = False) -> float:
        """Best-case service time (all components warm)."""
        return self.execution_time_us(
            ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0),
            locking=locking,
        )

    def cold_service_us(self, *, locking: bool = False) -> float:
        """Worst-case service time (all components cold)."""
        return self.execution_time_us(ComponentState(), locking=locking)

    def utilization_bound_rate(self, *, locking: bool, n_processors: int) -> float:
        """Crude aggregate capacity bound (packets/µs).

        The minimum of the CPU bound ``N / t_warm_service`` and — under
        Locking — the critical-section bound ``1 / lock_cs``.  Used by the
        capacity-search experiment to bracket its bisection.
        """
        best = self.warm_service_us(locking=locking)
        rate = n_processors / best
        if locking and self.costs.lock_cs_us > 0:
            rate = min(rate, 1.0 / self.costs.lock_cs_us)
        return rate

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        c = self.costs
        return (
            f"ExecutionTimeModel(t_warm={c.t_warm_us:.1f}us, "
            f"t_l2={c.t_l2_us:.1f}us, t_cold={c.t_cold_us:.1f}us, "
            f"max_benefit={c.max_affinity_benefit:.1%})"
        )
