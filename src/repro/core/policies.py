"""Affinity-based scheduling policies (the paper's first contribution).

The paper proposes and evaluates scheduling policies for the resources
involved in parallel network processing.  Two families:

**Under Locking** (shared stack, N protocol threads, any packet may run on
any processor):

- :class:`FCFSPolicy` — the unaffinitized baseline: head-of-queue packet to
  a *random* idle processor.  (Random rather than lowest-index, because a
  deterministic choice would create accidental affinity at low load.)
- :class:`MRUPolicy` — head-of-queue packet to the idle processor that
  Most-Recently-Used executed protocol code, keeping the shared protocol
  footprint (code + globals) as warm as possible.
- :class:`StreamMRUPolicy` — like MRU, but first prefers the idle
  processor where the packet's *stream* last executed (stream-state
  affinity), falling back to MRU.
- :class:`PerProcessorPoolsPolicy` — per-processor packet queues served by
  processor-bound threads (preserving thread-stack affinity; note 7 of the
  paper: the *cache affinity* benefits of per-processor thread pools had
  not previously been evaluated).  Packets join their stream's last
  processor's pool, spilling to the shortest pool when imbalance exceeds
  ``balance_threshold``.
- :class:`WiredStreamsPolicy` — each stream statically wired to one
  processor (``stream_id mod N``); maximal stream-state affinity, no load
  balancing.

**Under IPS** (K independent stacks, no locks, each stack strictly serial):

- :class:`IPSWiredPolicy` — stack ``k`` pinned to processor ``k mod N``
  (the paper's recommendation except at low arrival rate).
- :class:`IPSMRUPolicy` — a runnable stack goes to the processor where it
  last ran if idle, else the MRU idle processor (the paper's
  recommendation at low arrival rate).

**Hybrid** (:class:`HybridPolicy`) — reconstruction of the hybrid approach
proposed in the companion TR [17]: wired-stream queues with overflow
stealing, giving wired-level affinity in steady state and Locking-level
burst robustness.

**Modern policy zoo** — the schedulers that replaced the paper's designs
in later NIC/OS stacks, expressed against the same view protocol:

- :class:`FlowSteerPolicy` — Flow-Director-style hash steering: streams
  hash to per-processor queues; sustained imbalance re-steers a stream to
  the shortest queue, leaving its already-queued packets behind — the
  packet-reordering pathology analysed by Wu et al. ("Why Does Flow
  Director Cause Packet Reordering?").
- :class:`WorkStealingPolicy` — per-processor queues with idle processors
  stealing the newest packet from the longest backlogged queue (victim
  ties broken via the seeded scheduling RNG).
- :class:`GroupedAffinityPolicy` — cache-aware grouped scheduling:
  streams hash to processor *groups* and are co-scheduled (MRU within the
  group) so streams sharing a protocol-stack footprint stay on the same
  few caches.

Policies interact with the simulator through a narrow *view* protocol
(documented on :class:`SchedulerView`); they own their queues and are
stateful per simulation run.
"""

from __future__ import annotations

import math
import sys
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "SchedulerView",
    "LockingPolicy",
    "FCFSPolicy",
    "MRUPolicy",
    "StreamMRUPolicy",
    "PerProcessorPoolsPolicy",
    "WiredStreamsPolicy",
    "HybridPolicy",
    "FlowSteerPolicy",
    "WorkStealingPolicy",
    "GroupedAffinityPolicy",
    "IPSPolicy",
    "IPSWiredPolicy",
    "IPSMRUPolicy",
    "LOCKING_POLICIES",
    "IPS_POLICIES",
    "make_locking_policy",
    "make_ips_policy",
]


class SchedulerView(ABC):
    """What a policy may observe about the system (duck-typed protocol).

    The Locking/IPS dispatchers implement this interface; it deliberately
    exposes only information a real scheduler would have cheaply at hand
    (idle set, last-use timestamps, static stream/stack bindings) — not the
    model's internal cache state.
    """

    @property
    @abstractmethod
    def n_processors(self) -> int: ...

    @abstractmethod
    def idle_processors(self) -> List[int]:
        """Processor ids currently not executing protocol code."""

    @abstractmethod
    def last_protocol_end(self, proc_id: int) -> float:
        """Simulation time protocol code last finished on a processor
        (``-inf`` if never)."""

    @abstractmethod
    def stream_last_processor(self, stream_id: int) -> Optional[int]:
        """Processor that last served the stream, or ``None``."""

    @abstractmethod
    def random_choice(self, items: List[int]) -> int:
        """Uniform choice using the simulation's scheduling RNG stream.

        Draw-order contract (determinism): a singleton ``items`` list is
        returned *without* consuming a draw — only genuine ties advance
        the shared scheduling substream.  Because every policy draws from
        that one substream, a policy making several potentially-random
        decisions inside a single scheduling step must make them in a
        fixed, state-independent order so that identically-seeded runs
        replay the identical draw sequence (the property the batched
        engine and the parallel sweep runner both rely on).  Example:
        :class:`WorkStealingPolicy` always resolves its *victim*
        tie-break before its *thief* tie-break (:meth:`mru_idle`), never
        the reverse.
        """

    def mru_idle(self) -> int:
        """The idle processor with the most recent protocol activity.

        Ties (e.g. several never-used processors at ``-inf``) break
        randomly so that the policy does not silently favour low processor
        ids; tie candidates accumulate in idle order and the RNG is
        consulted only for genuine ties — exactly the historical
        max-then-filter behaviour.  The dispatchers override this with a
        direct-attribute-access version (this runs once per dispatch
        attempt); the default works for any view.
        """
        return _mru_idle(self, self.idle_processors())


def _mru_idle(view: SchedulerView, idle: List[int]) -> int:
    """Default single-pass :meth:`SchedulerView.mru_idle` implementation."""
    last_end = view.last_protocol_end
    best_t = -math.inf
    best: List[int] = []
    for p in idle:
        t = last_end(p)
        if t > best_t:
            best_t = t
            best = [p]
        elif t == best_t:
            best.append(p)
    return best[0] if len(best) == 1 else view.random_choice(best)


# ----------------------------------------------------------------------
# Locking-paradigm policies
# ----------------------------------------------------------------------
class LockingPolicy(ABC):
    """Queueing + processor-selection policy for the Locking paradigm.

    Lifecycle: the dispatcher calls :meth:`attach` once, then
    :meth:`on_arrival` for every packet and :meth:`next_dispatch`
    repeatedly (after arrivals and completions) until it returns ``None``.

    ``per_processor_threads`` tells the dispatcher whether protocol threads
    are bound to processors (preserving thread-stack affinity) or drawn
    from a shared migratory pool.
    """

    name: str = "locking-policy"
    per_processor_threads: bool = False

    def __init__(self) -> None:
        self.view: Optional[SchedulerView] = None

    def attach(self, view: SchedulerView) -> None:
        self.view = view

    @abstractmethod
    def on_arrival(self, packet) -> None:
        """Enqueue a newly arrived packet."""

    @abstractmethod
    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        """Pick ``(processor_id, packet)`` to start now, or ``None``.

        Must remove the returned packet from the policy's queues.  Called
        repeatedly until ``None``.
        """

    @abstractmethod
    def queued(self) -> int:
        """Number of packets currently waiting in this policy's queues."""


class _GlobalQueuePolicy(LockingPolicy):
    """Shared base for policies with a single global FIFO."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque = deque()

    def on_arrival(self, packet) -> None:
        self._queue.append(packet)

    def queued(self) -> int:
        return len(self._queue)

    def _select_processor(self, packet, idle: List[int]) -> int:
        raise NotImplementedError

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        if not self._queue:
            return None
        idle = self.view.idle_processors()
        if not idle:
            return None
        packet = self._queue.popleft()
        return self._select_processor(packet, idle), packet


class FCFSPolicy(_GlobalQueuePolicy):
    """Unaffinitized baseline: global FIFO, random idle processor."""

    name = "fcfs"

    def _select_processor(self, packet, idle: List[int]) -> int:
        return self.view.random_choice(idle)


class MRUPolicy(_GlobalQueuePolicy):
    """Global FIFO; serve on the most-recently-used idle processor."""

    name = "mru"

    def _select_processor(self, packet, idle: List[int]) -> int:
        return self.view.mru_idle()


class StreamMRUPolicy(_GlobalQueuePolicy):
    """Stream-affinity first, MRU fallback.

    Prefers the idle processor where the packet's stream last executed
    (keeping per-stream connection state warm); otherwise behaves like
    :class:`MRUPolicy`.
    """

    name = "stream-mru"

    def _select_processor(self, packet, idle: List[int]) -> int:
        last = self.view.stream_last_processor(packet.stream_id)
        if last is not None and last in idle:
            return last
        return self.view.mru_idle()


class PerProcessorPoolsPolicy(LockingPolicy):
    """Per-processor packet pools served by processor-bound threads.

    Packets join the pool of their stream's last processor (affinity),
    spilling to the shortest pool when the preferred pool exceeds the
    shortest by more than ``balance_threshold`` packets.  Streams that have
    never been served start at their wired default (``stream_id mod N``).

    Threads are bound to processors, so the thread-stack footprint
    component is always warm — the specific benefit of per-processor
    thread pools the paper highlights (its footnote 7).
    """

    name = "pools"
    per_processor_threads = True

    def __init__(self, balance_threshold: int = 2) -> None:
        super().__init__()
        if balance_threshold < 0:
            raise ValueError("balance_threshold must be >= 0")
        self.balance_threshold = balance_threshold
        self._pools: Dict[int, Deque] = {}

    def attach(self, view: SchedulerView) -> None:
        super().attach(view)
        self._pools = {p: deque() for p in range(view.n_processors)}

    def on_arrival(self, packet) -> None:
        preferred = self.view.stream_last_processor(packet.stream_id)
        if preferred is None:
            preferred = packet.stream_id % self.view.n_processors
        shortest = min(self._pools, key=lambda p: (len(self._pools[p]), p))
        if len(self._pools[preferred]) > len(self._pools[shortest]) + self.balance_threshold:
            preferred = shortest
        self._pools[preferred].append(packet)

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        idle = self.view.idle_processors()
        # Serve the longest eligible pool first to drain imbalance.
        candidates = [p for p in idle if self._pools[p]]
        if not candidates:
            return None
        proc = max(candidates, key=lambda p: (len(self._pools[p]), -p))
        return proc, self._pools[proc].popleft()

    def queued(self) -> int:
        return sum(len(q) for q in self._pools.values())


class WiredStreamsPolicy(LockingPolicy):
    """Streams statically wired to processors (``stream_id mod N``).

    Maximal stream-state and thread-stack affinity; no load balancing — a
    packet waits for its wired processor even when others sit idle.  The
    paper finds this wins under Locking at high arrival rate (cross-
    processor displacement dominates) but loses at low rate (MRU's
    concentration keeps the whole footprint warm on one processor).
    """

    name = "wired-streams"
    per_processor_threads = True

    def __init__(self) -> None:
        super().__init__()
        self._pools: Dict[int, Deque] = {}

    def attach(self, view: SchedulerView) -> None:
        super().attach(view)
        self._pools = {p: deque() for p in range(view.n_processors)}

    def wired_processor(self, stream_id: int) -> int:
        return stream_id % self.view.n_processors

    def on_arrival(self, packet) -> None:
        self._pools[self.wired_processor(packet.stream_id)].append(packet)

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        for proc in self.view.idle_processors():
            if self._pools[proc]:
                return proc, self._pools[proc].popleft()
        return None

    def queued(self) -> int:
        return sum(len(q) for q in self._pools.values())


class HybridPolicy(WiredStreamsPolicy):
    """Wired streams with overflow stealing (reconstruction of TR [17]).

    Behaves as :class:`WiredStreamsPolicy` while wired queues stay short;
    when a wired queue backs up beyond ``overflow_threshold`` packets, an
    idle processor may steal its head packet (paying the migration cost
    the model charges naturally).  Retains wired-level affinity in steady
    state while recruiting extra processors for bursts — the TR's "high
    throughput, high intra-stream scalability, and robustness in the
    presence of bursty arrivals".
    """

    name = "hybrid"
    per_processor_threads = True

    def __init__(self, overflow_threshold: int = 2) -> None:
        super().__init__()
        if overflow_threshold < 1:
            raise ValueError("overflow_threshold must be >= 1")
        self.overflow_threshold = overflow_threshold

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        own = super().next_dispatch()
        if own is not None:
            return own
        idle = self.view.idle_processors()
        if not idle:
            return None
        # Steal from the most backed-up wired queue, if any exceeds the
        # threshold; the thief is the MRU idle processor.
        overloaded = [
            p for p, q in self._pools.items() if len(q) > self.overflow_threshold
        ]
        if not overloaded:
            return None
        victim = max(overloaded, key=lambda p: (len(self._pools[p]), -p))
        thief = self.view.mru_idle()
        return thief, self._pools[victim].popleft()


# ----------------------------------------------------------------------
# Modern policy zoo (post-paper designs, same interfaces)
# ----------------------------------------------------------------------
class FlowSteerPolicy(LockingPolicy):
    """Flow-Director-style hash steering with rebalance-triggered migration.

    Each stream is steered to a per-processor queue, initially by hash
    (``stream_id mod N``).  When a packet arrives for a queue that exceeds
    the shortest queue by more than ``rebalance_threshold`` packets, the
    stream is *re-steered* to the shortest queue — but packets already
    queued at the old processor stay put.  The re-steered stream's new
    packets can therefore complete before its old ones: the out-of-order
    pathology Wu et al. measured in Intel's Flow Director.  ``resteers``
    counts the migration events.

    Fully deterministic (consults no RNG), so the fused batched engine
    runs it natively.
    """

    name = "flow-steer"
    per_processor_threads = True

    def __init__(self, rebalance_threshold: int = 1) -> None:
        super().__init__()
        if rebalance_threshold < 0:
            raise ValueError("rebalance_threshold must be >= 0")
        self.rebalance_threshold = rebalance_threshold
        self._queues: Dict[int, Deque] = {}
        self._steer: Dict[int, int] = {}
        self.resteers = 0

    def attach(self, view: SchedulerView) -> None:
        super().attach(view)
        self._queues = {p: deque() for p in range(view.n_processors)}
        self._steer = {}
        self.resteers = 0

    def target_processor(self, stream_id: int) -> int:
        """Current steering target (installing the hash default lazily)."""
        target = self._steer.get(stream_id)
        if target is None:
            target = stream_id % self.view.n_processors
            self._steer[stream_id] = target
        return target

    def on_arrival(self, packet) -> None:
        target = self.target_processor(packet.stream_id)
        queues = self._queues
        shortest = min(queues, key=lambda p: (len(queues[p]), p))
        if len(queues[target]) > len(queues[shortest]) + self.rebalance_threshold:
            target = shortest
            self._steer[packet.stream_id] = shortest
            self.resteers += 1
        queues[target].append(packet)

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        for proc in self.view.idle_processors():
            if self._queues[proc]:
                return proc, self._queues[proc].popleft()
        return None

    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())


class WorkStealingPolicy(LockingPolicy):
    """Per-processor queues with idle processors stealing from the longest.

    Packets join the queue of their stream's last processor (hash default
    before first service).  An idle processor first serves its own queue;
    with nothing local, it steals the *newest* packet from the longest
    queue holding more than ``steal_threshold`` packets (LIFO stealing —
    the cache-friendly end analysed by Gu et al.'s work-stealing
    cache-complexity bounds; the queue owner keeps draining the old,
    in-order end).  Victim ties break via the seeded scheduling RNG, and
    — per the :meth:`SchedulerView.random_choice` draw-order contract —
    the victim draw always precedes the thief's :meth:`~SchedulerView.mru_idle`
    draw.  ``steals`` counts the stolen dispatches.

    Not fused: falls back to the scalar engine deterministically.
    """

    name = "work-steal"
    per_processor_threads = True

    def __init__(self, steal_threshold: int = 1) -> None:
        super().__init__()
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be >= 1")
        self.steal_threshold = steal_threshold
        self._queues: Dict[int, Deque] = {}
        self.steals = 0

    def attach(self, view: SchedulerView) -> None:
        super().attach(view)
        self._queues = {p: deque() for p in range(view.n_processors)}
        self.steals = 0

    def home_processor(self, stream_id: int) -> int:
        last = self.view.stream_last_processor(stream_id)
        if last is not None:
            return last
        return stream_id % self.view.n_processors

    def on_arrival(self, packet) -> None:
        self._queues[self.home_processor(packet.stream_id)].append(packet)

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        idle = self.view.idle_processors()
        if not idle:
            return None
        queues = self._queues
        for proc in idle:
            if queues[proc]:
                return proc, queues[proc].popleft()
        # Every idle processor's own queue is empty: steal.  Victims are
        # the longest queues strictly above the threshold; the victim
        # tie-break draw precedes the thief tie-break draw (see
        # SchedulerView.random_choice).
        best_len = self.steal_threshold
        victims: List[int] = []
        for p in range(self.view.n_processors):
            n = len(queues[p])
            if n > best_len:
                best_len = n
                victims = [p]
            elif victims and n == best_len:
                victims.append(p)
        if not victims:
            return None
        victim = victims[0] if len(victims) == 1 else self.view.random_choice(victims)
        thief = self.view.mru_idle()
        self.steals += 1
        return thief, queues[victim].pop()

    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())


class GroupedAffinityPolicy(LockingPolicy):
    """Cache-aware grouped scheduling: co-schedule streams per group.

    Processors are partitioned into ``n_groups`` groups (processor ``p``
    belongs to group ``p mod G``) and streams hash to groups
    (``stream_id mod G``), so the streams sharing a group — and hence a
    shared protocol-stack working set — are co-scheduled on the same few
    caches.  Within a group, dispatch is MRU-idle (ties via the scheduling
    RNG), concentrating the group footprint like :class:`MRUPolicy` does
    globally.  ``n_groups`` is clamped to the processor count;
    ``n_groups == n_processors`` degenerates to
    :class:`WiredStreamsPolicy` decision for decision.

    Fused natively by the batched engine.
    """

    name = "grouped"
    per_processor_threads = True

    def __init__(self, n_groups: int = 2) -> None:
        super().__init__()
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        self.n_groups = n_groups
        self._n_eff = n_groups
        self._queues: List[Deque] = []

    def attach(self, view: SchedulerView) -> None:
        super().attach(view)
        self._n_eff = min(self.n_groups, view.n_processors)
        self._queues = [deque() for _ in range(self._n_eff)]

    @property
    def effective_groups(self) -> int:
        return self._n_eff

    def group_of(self, stream_id: int) -> int:
        return stream_id % self._n_eff

    def on_arrival(self, packet) -> None:
        self._queues[packet.stream_id % self._n_eff].append(packet)

    def next_dispatch(self) -> Optional[Tuple[int, object]]:
        idle = self.view.idle_processors()
        if not idle:
            return None
        n_eff = self._n_eff
        for g, q in enumerate(self._queues):
            if not q:
                continue
            members = [p for p in idle if p % n_eff == g]
            if not members:
                continue
            return _mru_idle(self.view, members), q.popleft()
        return None

    def queued(self) -> int:
        return sum(len(q) for q in self._queues)


# ----------------------------------------------------------------------
# IPS-paradigm policies
# ----------------------------------------------------------------------
class IPSPolicy(ABC):
    """Processor selection for runnable IPS stacks.

    The IPS dispatcher keeps a per-stack serial queue; whenever a stack has
    work and is not already executing, it asks the policy on which idle
    processor the stack may run (``None`` = stay queued).
    """

    name: str = "ips-policy"

    @abstractmethod
    def select_processor(
        self, stack_id: int, view: SchedulerView, stack_last_proc: Optional[int]
    ) -> Optional[int]:
        """Idle processor for the stack's next packet, or ``None``."""


class IPSWiredPolicy(IPSPolicy):
    """Stack ``k`` pinned to processor ``k mod N``."""

    name = "ips-wired"

    def select_processor(self, stack_id, view, stack_last_proc):
        proc = stack_id % view.n_processors
        return proc if proc in view.idle_processors() else None


class IPSMRUPolicy(IPSPolicy):
    """Stack runs where it last ran if idle, else on the MRU idle
    processor."""

    name = "ips-mru"

    def select_processor(self, stack_id, view, stack_last_proc):
        idle = view.idle_processors()
        if not idle:
            return None
        if stack_last_proc is not None and stack_last_proc in idle:
            return stack_last_proc
        return view.mru_idle()


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
LOCKING_POLICIES: Dict[str, Callable[[], LockingPolicy]] = {
    "fcfs": FCFSPolicy,
    "mru": MRUPolicy,
    "stream-mru": StreamMRUPolicy,
    "pools": PerProcessorPoolsPolicy,
    "wired-streams": WiredStreamsPolicy,
    "hybrid": HybridPolicy,
    "flow-steer": FlowSteerPolicy,
    "work-steal": WorkStealingPolicy,
    "grouped": GroupedAffinityPolicy,
}

IPS_POLICIES: Dict[str, Callable[[], IPSPolicy]] = {
    "ips-wired": IPSWiredPolicy,
    "ips-mru": IPSMRUPolicy,
}

#: The registry contents at import time.  Entries added later (e.g. an
#: experiment registering a reference policy at run time, like E11's
#: ``ips-random``) are *dynamic*: a persistent worker process spawned
#: before the registration has never seen them, so the warm execution
#: backend ships :func:`dynamic_policy_entries` with every dispatched
#: chunk and the worker applies them via :func:`merge_policy_entries`.
#: A per-batch pool inherits them for free by forking after the
#: registration; persistent workers must be told.
_STATIC_LOCKING = frozenset(LOCKING_POLICIES)
_STATIC_IPS = frozenset(IPS_POLICIES)

#: (registry kind, policy name, factory) — the wire form of a dynamic
#: registration.
PolicyEntry = Tuple[str, str, Callable[..., Any]]


def _picklable_by_reference(factory: Callable[..., Any]) -> bool:
    """Whether ``factory`` pickles as a module-level reference.

    Lambdas/closures don't; skipping them keeps dispatch alive and turns
    the failure into the worker's loud per-task ``unknown policy`` error
    instead of a pickling crash of the whole sweep.
    """
    obj: Any = sys.modules.get(getattr(factory, "__module__", ""), None)
    for part in getattr(factory, "__qualname__", "").split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is factory


def dynamic_policy_entries() -> Tuple[PolicyEntry, ...]:
    """Registry entries added after import, in wire form (usually empty)."""
    return tuple(
        (kind, name, registry[name])
        for kind, registry, static in (
            ("locking", LOCKING_POLICIES, _STATIC_LOCKING),
            ("ips", IPS_POLICIES, _STATIC_IPS),
        )
        for name in registry
        if name not in static and _picklable_by_reference(registry[name])
    )


def merge_policy_entries(entries: Tuple[PolicyEntry, ...]) -> None:
    """Apply :func:`dynamic_policy_entries` in this process.

    ``setdefault`` — byte-for-byte the semantics of the in-process
    registration it mirrors, so first registration wins everywhere.
    """
    for kind, name, factory in entries:
        if kind == "locking":
            LOCKING_POLICIES.setdefault(name, factory)
        else:
            IPS_POLICIES.setdefault(name, factory)


def make_locking_policy(name: str, **kwargs) -> LockingPolicy:
    """Instantiate a Locking policy by registry name."""
    try:
        factory = LOCKING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown Locking policy {name!r}; known: {sorted(LOCKING_POLICIES)}"
        ) from None
    return factory(**kwargs)


def make_ips_policy(name: str, **kwargs) -> IPSPolicy:
    """Instantiate an IPS policy by registry name."""
    try:
        factory = IPS_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown IPS policy {name!r}; known: {sorted(IPS_POLICIES)}"
        ) from None
    return factory(**kwargs)
