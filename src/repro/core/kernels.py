"""Opt-in compiled batch kernels (``REPRO_KERNEL=numba``).

The pure-python/NumPy batch paths in :mod:`repro.core.exec_model` are the
reference implementation and the only ones that count toward the
performance floor.  This module optionally supplies a numba-compiled
per-unique-count reload-penalty kernel behind the ``REPRO_KERNEL``
environment variable:

``off`` (default, also ``""``/``python``)
    Never compile anything; the pure-python path runs.
``numba``
    Require numba; raise at model construction if it is not importable.
``auto``
    Use numba when importable, silently fall back otherwise.

The kernel replicates the inlined two-level flush math of
``ExecutionTimeModel._pen1`` statement for statement with ``fastmath``
disabled, so on platforms where numba's libm bindings match CPython's it
is bit-identical; the validation test asserts exact equality and is
skipped when numba is absent.  The kernel is only built when both cache
levels are direct-mapped (the same precondition as the scalar fast path).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["kernel_mode", "maybe_build_penalty_kernel"]

#: Environment variable selecting the compiled-kernel backend.
KERNEL_ENV = "REPRO_KERNEL"

#: Five-tuple of per-level constants: (split, c0, slope, u1, log1m_p).
LevelConstants = Tuple[float, float, float, float, float]

#: refs array (float64, finite and positive entries mixed with 0/inf) ->
#: per-count reload penalties (float64).
PenaltyKernel = Callable[[np.ndarray], np.ndarray]


def kernel_mode() -> str:
    """Normalized ``REPRO_KERNEL`` value (``off``/``numba``/``auto``)."""
    raw = os.environ.get(KERNEL_ENV, "off").strip().lower()
    if raw in ("", "off", "python"):
        return "off"
    if raw in ("numba", "auto"):
        return raw
    raise ValueError(
        f"{KERNEL_ENV}={raw!r} is not recognized "
        "(expected 'off', 'python', 'numba' or 'auto')"
    )


def maybe_build_penalty_kernel(
    fast_l1: Optional[LevelConstants],
    fast_l2: Optional[LevelConstants],
    delta1: float,
    delta2: float,
) -> Optional[PenaltyKernel]:
    """Build the compiled penalty kernel if requested and possible.

    Returns ``None`` when the kernel is off, unavailable (``auto``), or
    inapplicable (non-direct-mapped hierarchy — the exact NumPy path must
    run instead).  Raises when ``REPRO_KERNEL=numba`` is set but numba is
    not importable, so an explicit opt-in never silently degrades.
    """
    mode = kernel_mode()
    if mode == "off":
        return None
    if fast_l1 is None or fast_l2 is None:
        # Higher-associativity hierarchies use the exact vectorized path;
        # compiling would change which code computes the flush fractions.
        return None
    try:
        import numba
    except ImportError:
        if mode == "numba":
            raise RuntimeError(
                f"{KERNEL_ENV}=numba requires the numba package, which is "
                "not installed in this environment; unset the variable or "
                f"use {KERNEL_ENV}=auto to fall back to the pure-python "
                "kernel"
            ) from None
        return None
    return _build_numba_kernel(numba, fast_l1, fast_l2, delta1, delta2)


def _build_numba_kernel(
    numba,  # type: ignore[no-untyped-def]
    fast_l1: LevelConstants,
    fast_l2: LevelConstants,
    delta1: float,
    delta2: float,
) -> PenaltyKernel:
    import math

    split1, c01, slope1, u11, log1m_p1 = fast_l1
    split2, c02, slope2, u12, log1m_p2 = fast_l2
    pen_cold = delta1 + delta2

    @numba.njit(cache=False, fastmath=False)  # type: ignore[misc]
    def penalty_kernel(refs: np.ndarray) -> np.ndarray:
        out = np.empty(refs.shape[0], dtype=np.float64)
        for i in range(refs.shape[0]):
            count = refs[i]
            if count == 0.0:
                out[i] = 0.0
                continue
            if count == np.inf:
                out[i] = pen_cold
                continue
            r = count * split1
            if r < 1.0:
                u = r * u11
            else:
                u = 10.0 ** (c01 + slope1 * math.log10(r))
            if u > r:
                u = r
            f = -math.expm1(u * log1m_p1)
            f1 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            r = count * split2
            if r < 1.0:
                u = r * u12
            else:
                u = 10.0 ** (c02 + slope2 * math.log10(r))
            if u > r:
                u = r
            f = -math.expm1(u * log1m_p2)
            f2 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            out[i] = f1 * delta1 + f2 * delta2
        return out

    # Warm the JIT once so per-batch calls never pay compilation.
    penalty_kernel(np.array([0.0, 1.0, np.inf]))
    return penalty_kernel  # type: ignore[no-any-return]
