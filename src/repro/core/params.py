"""Model parameters: platform, protocol costs, footprint composition.

All time constants are in **microseconds** — the natural unit of the
paper's measurements (e.g. ``t_cold = 284.3 µs``) and the simulation's
native clock.

Three parameter groups:

- :class:`PlatformConfig` — the multiprocessor (CPU count + cache
  hierarchy + reference rate).  The default is the paper's 8-processor SGI
  Challenge XL with 100 MHz MIPS R4400 CPUs.
- :class:`ProtocolCosts` — the measured packet execution-time bounds and
  per-packet overheads.  ``t_cold = 284.3 µs`` is quoted by the paper; the
  intermediate bounds are reconstructions chosen so the maximum affinity
  benefit ``1 - t_warm/t_cold ≈ 47 %`` falls inside the published 40-50 %
  band (see DESIGN.md §4.1), and every experiment accepts overrides.
- :class:`FootprintComposition` — how the protocol footprint divides among
  shared code+globals, per-stream connection state, and per-thread stack,
  plus the fraction of shared state that is writable (and therefore
  migrates between processors under Locking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..cache.hierarchy import CacheHierarchy, sgi_challenge_hierarchy

__all__ = [
    "PlatformConfig",
    "ProtocolCosts",
    "FootprintComposition",
    "PAPER_PLATFORM",
    "PAPER_COSTS",
    "PAPER_COMPOSITION",
    "FDDI_MAX_PAYLOAD_BYTES",
]

#: Largest FDDI packet payload, quoted by the paper ("each with 4432 bytes
#: of data"); at the quoted 32 B/µs checksum rate this costs ~139 µs.
FDDI_MAX_PAYLOAD_BYTES = 4432


@dataclass(frozen=True)
class PlatformConfig:
    """The shared-memory multiprocessor being modelled.

    Parameters
    ----------
    n_processors:
        Number of CPUs (8 on the paper's Challenge XL).
    hierarchy:
        Cache hierarchy + reference-rate model (see
        :class:`repro.cache.CacheHierarchy`).
    """

    n_processors: int = 8
    hierarchy: CacheHierarchy = field(default_factory=sgi_challenge_hierarchy)

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")

    @property
    def references_per_us(self) -> float:
        """Memory references issued per µs of execution (20 on the paper's
        platform: 100 MHz / 5 cycles-per-reference)."""
        return self.hierarchy.references_per_us

    def with_processors(self, n: int) -> "PlatformConfig":
        """Copy with a different CPU count (used by scalability sweeps)."""
        return replace(self, n_processors=n)


@dataclass(frozen=True)
class ProtocolCosts:
    """Packet execution-time bounds and per-packet overheads (µs).

    The three bounds correspond to the paper's conditioned measurements:

    ``t_warm_us``
        Footprint fully resident in L1 (best case).
    ``t_l2_us``
        Footprint displaced from L1 but resident in L2.
    ``t_cold_us``
        Footprint in memory only (the paper measured 284.3 µs; "protocol
        receive time tends to t_cold").

    Overheads:

    ``lock_overhead_us``
        Uncontended per-packet locking cost under the Locking paradigm.
        An x-kernel-style stack acquires several locks per packet on its
        way through FDDI/IP/UDP demultiplexing and session state; refs
        [3, 13] measure per-lock-pair costs of a few µs on comparable
        hardware, so the per-packet total is on the order of tens of µs.
        IPS pays none.
    ``lock_cs_us``
        Length of the serialized critical section per packet under Locking
        (shared-stack state updates).  Bounds Locking's aggregate
        throughput at ``1/lock_cs_us`` regardless of CPU count.
    ``dispatch_us``
        Thread dispatch/scheduling cost per packet (paid by both
        paradigms).
    ``checksum_bytes_per_us``
        Data-touching rate: the paper quotes checksumming at 32 bytes/µs
        on its platform, i.e. ~139 µs for a maximal 4432-byte FDDI payload.
    """

    t_warm_us: float = 150.0
    t_l2_us: float = 205.0
    t_cold_us: float = 284.3
    lock_overhead_us: float = 20.0
    lock_cs_us: float = 15.0
    dispatch_us: float = 5.0
    checksum_bytes_per_us: float = 32.0

    def __post_init__(self) -> None:
        if not (0.0 < self.t_warm_us <= self.t_l2_us <= self.t_cold_us):
            raise ValueError(
                "need 0 < t_warm <= t_l2 <= t_cold, got "
                f"{self.t_warm_us}, {self.t_l2_us}, {self.t_cold_us}"
            )
        for name in ("lock_overhead_us", "lock_cs_us", "dispatch_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.checksum_bytes_per_us <= 0:
            raise ValueError("checksum_bytes_per_us must be positive")
        if self.lock_cs_us > self.t_warm_us:
            raise ValueError("critical section cannot exceed the warm service time")

    @property
    def l1_reload_us(self) -> float:
        """Maximum L1 reload transient ``t_l2 - t_warm``."""
        return self.t_l2_us - self.t_warm_us

    @property
    def l2_reload_us(self) -> float:
        """Maximum L2 reload transient ``t_cold - t_l2``."""
        return self.t_cold_us - self.t_l2_us

    @property
    def max_affinity_benefit(self) -> float:
        """``1 - t_warm/t_cold``: the V=0 upper bound on delay reduction
        from perfect affinity (the paper reports 40-50 %)."""
        return 1.0 - self.t_warm_us / self.t_cold_us

    def data_touching_us(self, payload_bytes: float) -> float:
        """Per-packet data-touching (checksum/copy) time for a payload.

        Linear in packet size at ``checksum_bytes_per_us``; reproduces the
        paper's 4432 B -> ~139 µs example.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes / self.checksum_bytes_per_us


@dataclass(frozen=True)
class FootprintComposition:
    """Division of the protocol footprint among affinity components.

    Weights are fractions of the *reload transient* (``t_cold - t_warm``)
    attributable to each component, and must sum to 1:

    ``code_global``
        Protocol code and global data structures (demux maps, statistics),
        shared by all streams.  Warm on a processor iff protocol code ran
        there recently.
    ``stream_state``
        Per-connection (per-stream) protocol state.  Warm iff *this
        stream* was processed there recently.
    ``thread_stack``
        The protocol thread's stack.  Warm iff the serving thread last ran
        there (guaranteed under per-processor thread pools).

    ``shared_writable_of_code``
        Fraction of the ``code_global`` component that is *writable* shared
        state.  Under Locking, those dirty lines migrate to whichever
        processor last executed protocol code, so they are cold on this
        processor whenever another processor ran protocol more recently —
        an affinity penalty IPS avoids entirely (each stack's state is
        private).

    Packet data itself is cold by definition (it arrives from the network
    interface) and is handled separately by the data-touching extension
    (E14); the paper's default results exclude data-touching operations.

    The default split is a documented reconstruction knob (DESIGN.md §4.4):
    the paper measured component contributions but the capture does not
    quote them.
    """

    code_global: float = 0.55
    stream_state: float = 0.30
    thread_stack: float = 0.15
    shared_writable_of_code: float = 0.30

    def __post_init__(self) -> None:
        weights = (self.code_global, self.stream_state, self.thread_stack)
        if any(w < 0 for w in weights):
            raise ValueError("component weights must be non-negative")
        if not math.isclose(sum(weights), 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(
                f"component weights must sum to 1, got {sum(weights)!r}"
            )
        if not (0.0 <= self.shared_writable_of_code <= 1.0):
            raise ValueError("shared_writable_of_code must be in [0, 1]")

    def as_dict(self) -> Mapping[str, float]:
        return {
            "code_global": self.code_global,
            "stream_state": self.stream_state,
            "thread_stack": self.thread_stack,
        }


#: The paper's platform.
PAPER_PLATFORM = PlatformConfig()

#: Paper-derived cost preset (t_cold quoted; intermediates reconstructed).
PAPER_COSTS = ProtocolCosts()

#: Default footprint composition (reconstruction knob, see class docs).
PAPER_COMPOSITION = FootprintComposition()
