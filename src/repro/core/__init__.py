"""Core of the reproduction: model parameters, the analytic packet
execution-time model, and the affinity scheduling policies.

See :mod:`repro.core.params` for the platform/cost presets,
:mod:`repro.core.exec_model` for the reload-transient interpolation model,
and :mod:`repro.core.policies` for the Locking/IPS scheduling policies the
paper proposes and evaluates.
"""

from .exec_model import COLD, ComponentState, ExecutionTimeModel
from .params import (
    FDDI_MAX_PAYLOAD_BYTES,
    PAPER_COMPOSITION,
    PAPER_COSTS,
    PAPER_PLATFORM,
    FootprintComposition,
    PlatformConfig,
    ProtocolCosts,
)
from .policies import (
    IPS_POLICIES,
    LOCKING_POLICIES,
    FCFSPolicy,
    HybridPolicy,
    IPSMRUPolicy,
    IPSPolicy,
    IPSWiredPolicy,
    LockingPolicy,
    MRUPolicy,
    PerProcessorPoolsPolicy,
    SchedulerView,
    StreamMRUPolicy,
    WiredStreamsPolicy,
    make_ips_policy,
    make_locking_policy,
)

__all__ = [
    "COLD",
    "ComponentState",
    "ExecutionTimeModel",
    "FCFSPolicy",
    "FDDI_MAX_PAYLOAD_BYTES",
    "FootprintComposition",
    "HybridPolicy",
    "IPSMRUPolicy",
    "IPSPolicy",
    "IPSWiredPolicy",
    "IPS_POLICIES",
    "LOCKING_POLICIES",
    "LockingPolicy",
    "MRUPolicy",
    "PAPER_COMPOSITION",
    "PAPER_COSTS",
    "PAPER_PLATFORM",
    "PerProcessorPoolsPolicy",
    "PlatformConfig",
    "ProtocolCosts",
    "SchedulerView",
    "StreamMRUPolicy",
    "WiredStreamsPolicy",
    "make_ips_policy",
    "make_locking_policy",
]
