"""Paradigm dispatchers: Locking and IPS.

A dispatcher owns the mapping from arrived packets to (processor, thread)
executions, implements the :class:`repro.core.policies.SchedulerView`
protocol for its scheduling policy, and encodes each paradigm's coherence
semantics when assembling the per-packet cache state:

**Migration coherence.**  Writable footprint components live in the cache
of the processor that last *wrote* them; serving elsewhere finds them cold
(dirty lines migrate via the coherence protocol).  Concretely:

- per-stream state is warm only on the processor that last served the
  stream (elsewhere: ``COLD``);
- a thread's stack is warm only where the thread last ran;
- under **Locking**, the writable fraction of the shared code+globals
  component is invalidated whenever *any other* processor completed
  protocol work since this processor last did (global epoch test);
- under **IPS**, each stack's writable data is private: it is cold only
  when the *stack itself* migrated to a new processor — the structural
  reason "IPS maximizes cache affinity".

Read-mostly code+globals are displaced only by local intervening
references (tracked by the processor's displacing-reference clock).

**Hot path.**  ``_start_service`` and ``_complete`` each run once per
packet, so the :class:`~repro.sim.entities.ProcessorState` lifecycle
(idle-clock accrual, reference assembly, touch-table stamping) is inlined
rather than delegated — the float expression trees are preserved
operation for operation, so results stay bit-identical to the
straightforward code.  Touch-table keys are interned per stream/thread
(one tuple allocation per entity, not per packet), completions re-push
one preallocated engine event record per processor, and the idle set is
maintained incrementally (sorted ascending, matching the historical scan
order) instead of rescanned on every policy query.  The
:class:`ComponentState` dataclass is only materialized when a tracer
wants it.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..core.exec_model import COLD, ComponentState
from ..core.policies import IPSPolicy, LockingPolicy, SchedulerView
from .engine import EVENT_COMPLETION, Event
from .entities import Packet, ProcessorState, ThreadPool
from .locks import LayeredLocks

if TYPE_CHECKING:
    from .system import NetworkProcessingSystem

__all__ = ["BaseDispatcher", "LockingDispatcher", "IPSDispatcher"]

#: Interned touch-table key for the shared code+globals component.
_CODE_KEY = ("code",)


class BaseDispatcher(SchedulerView):
    """Shared machinery: SchedulerView implementation + service lifecycle.

    Subclasses implement :meth:`on_arrival` and :meth:`try_dispatch`; the
    owning :class:`~repro.sim.system.NetworkProcessingSystem` provides the
    engine, processors, model, RNG and metrics through ``system``.
    """

    #: paradigm pays per-packet lock costs?
    locking_paradigm: bool = False

    def __init__(self, system: NetworkProcessingSystem) -> None:
        self.system = system
        self.sim = system.sim
        self.model = system.model
        self._procs = system.processors
        # Hot-path aliases (all are fixed for the system's lifetime).
        self._schedule_record = system.sim.schedule_record
        self._metrics_on_completion = system.metrics.on_completion
        self._tracer = system.tracer
        self._invariants = system.invariants
        self._data_touching = system.data_touching
        self._extra_us = system.fixed_overhead_us
        #: stream id -> processor that last served it (migration tracking).
        self._stream_last_proc: Dict[int, int] = {}
        #: stream id -> interned ("stream", id) touch key (allocated at the
        #: stream's first completion; ``_start_service`` only looks a
        #: stream's key up after a completion recorded its processor).
        self._stream_keys: Dict[int, Tuple[str, int]] = {}
        #: monotone count of completed protocol executions, system-wide.
        self.protocol_epoch: int = 0
        #: dispatches whose processor differs from the stream's previous
        #: one (a stream's first service is placement, not migration).
        self.migrations: int = 0
        #: Idle processor ids, kept sorted ascending — the same order the
        #: historical per-query scan produced.
        self._idle: List[int] = [p.proc_id for p in system.processors]
        #: One reusable completion event per processor (a processor serves
        #: one packet at a time, so at most one occurrence is pending).
        self._completion_records: List[Event] = [
            Event(EVENT_COMPLETION, self._complete, p)
            for p in system.processors
        ]

    # ------------------------------------------------------------------
    # SchedulerView
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        return len(self._procs)

    def idle_processors(self) -> List[int]:
        # Live (maintained) list; policies treat it as read-only.
        return self._idle

    def last_protocol_end(self, proc_id: int) -> float:
        return self._procs[proc_id].last_protocol_end

    def stream_last_processor(self, stream_id: int) -> Optional[int]:
        return self._stream_last_proc.get(stream_id)

    def random_choice(self, items: List[int]) -> int:
        if not items:
            raise ValueError("empty choice set")
        if len(items) == 1:
            return items[0]
        idx = int(self.system.rngs.scheduling.integers(0, len(items)))
        return items[idx]

    def mru_idle(self) -> int:
        # Direct-attribute override of the SchedulerView default: same
        # single pass, same tie handling, without a method call per
        # candidate (this runs once per dispatch attempt).
        idle = self._idle
        if len(idle) == 1:
            return idle[0]
        procs = self._procs
        best_t = -math.inf
        best: List[int] = []
        for p in idle:
            t = procs[p].last_protocol_end
            if t > best_t:
                best_t = t
                best = [p]
            elif t == best_t:
                best.append(p)
        return best[0] if len(best) == 1 else self.random_choice(best)

    # ------------------------------------------------------------------
    # Component cache-state assembly
    # ------------------------------------------------------------------
    def _stream_refs(self, proc: ProcessorState, stream_id: int, now: float) -> float:
        """Intervening refs for the stream-state component (migration-aware)."""
        last = self._stream_last_proc.get(stream_id)
        if last != proc.proc_id:
            return COLD
        return proc.refs_since_touch(("stream", stream_id), now)

    def _complete(self, proc: ProcessorState) -> None:
        raise NotImplementedError

    # Subclass interface ------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        raise NotImplementedError

    def try_dispatch(self) -> None:
        raise NotImplementedError

    def queued(self) -> int:
        raise NotImplementedError


class LockingDispatcher(BaseDispatcher):
    """Shared protocol stack, N protocol threads, pluggable policy."""

    locking_paradigm = True

    def __init__(self, system: NetworkProcessingSystem,
                 policy: LockingPolicy) -> None:
        super().__init__(system)
        self.policy = policy
        self.policy.attach(self)
        self.threads = ThreadPool(
            n_threads=self.n_processors,
            per_processor=policy.per_processor_threads,
        )
        #: Interned ("thread", id) touch keys, indexed by thread id.
        self._thread_keys: List[Tuple[str, int]] = [
            ("thread", t) for t in range(self.threads.n_threads)
        ]
        # Per-packet thread-pool aliases (the pool is fixed for the run).
        self._threads_acquire = self.threads.acquire
        self._threads_release = self.threads.release
        self._threads_last_proc = self.threads._last_proc
        inv = system.invariants
        self.lock = LayeredLocks(
            system.config.lock_granularity,
            on_reserve=inv.on_lock_reservation if inv is not None else None,
        )
        self._lock_cs_us = system.costs.lock_cs_us
        # With one coarse lock the layered wrapper reduces to its single
        # stage bit for bit (``cs / 1 == cs`` and ``0.0 + wait == wait``),
        # so reserve on the stage lock directly.
        self._reserve = (
            self.lock.locks[0].reserve
            if self.lock.n_locks == 1 else self.lock.reserve
        )

    def on_arrival(self, packet: Packet) -> None:
        self.policy.on_arrival(packet)
        self.try_dispatch()

    def try_dispatch(self) -> None:
        while True:
            assignment = self.policy.next_dispatch()
            if assignment is None:
                return
            proc_id, packet = assignment
            self._start_service(proc_id, packet)

    def queued(self) -> int:
        return self.policy.queued()

    def _start_service(self, proc_id: int, packet: Packet) -> None:
        now = self.sim._now
        proc = self._procs[proc_id]
        if proc.busy:
            raise RuntimeError(
                f"policy {self.policy.name!r} dispatched to busy processor {proc_id}"
            )
        thread_id = self._threads_acquire(proc_id)

        # Inlined ProcessorState.accrue_idle (the processor is idle: its
        # busy flag was just checked), preserving the guard and the
        # ``dt * rate * V`` expression tree exactly.
        accrued = proc._accrued_until
        dt = now - accrued
        if dt > 0.0:
            proc._ref_clock += (
                dt * proc.references_per_us * proc.nonprotocol_intensity
            )
            proc.nonprotocol_us += dt
            proc._accrued_until = now
        elif dt < -1e-9:
            raise ValueError(f"time went backwards: {now} < {accrued}")

        # Inline refs_since_touch: read the touch table directly
        # (``d if d > 0.0 else 0.0`` is ``max(0.0, d)`` bit for bit, and
        # the delta is never negative).
        clock = proc._ref_clock
        touch = proc._last_touch
        last = touch.get(_CODE_KEY)
        if last is None:
            code_refs = COLD
        else:
            d = clock - last
            code_refs = d if d > 0.0 else 0.0
        stream_id = packet.stream_id
        last_sp = self._stream_last_proc.get(stream_id)
        if last_sp != proc_id:
            if last_sp is not None:
                self.migrations += 1
            stream_refs = COLD
        else:
            # The stream completed here before, so its key is interned.
            last = touch.get(self._stream_keys[stream_id])
            if last is None:
                stream_refs = COLD
            else:
                d = clock - last
                stream_refs = d if d > 0.0 else 0.0
        if self._threads_last_proc[thread_id] == proc_id:
            last = touch.get(self._thread_keys[thread_id])
            if last is None:
                thread_refs = COLD  # never ran here
            else:
                d = clock - last
                thread_refs = d if d > 0.0 else 0.0
        else:
            thread_refs = COLD  # never ran, or stack migrated with the thread
        shared_invalidated = self.protocol_epoch > proc.protocol_epoch_seen

        exec_time = self.model.execution_time_scalar(
            code_refs, stream_refs, thread_refs, shared_invalidated,
            payload_bytes=packet.size_bytes,
            data_touching=self._data_touching,
            locking=True,
            extra_us=self._extra_us,
        )
        lock_wait_us = self._reserve(now, self._lock_cs_us)

        # Inlined begin-service (the clock was accrued to `now` above, so
        # ProcessorState.begin_service's re-accrual would be a no-op).
        packet.service_start_us = now
        packet.processor_id = proc_id
        packet.thread_id = thread_id
        packet.lock_wait_us = lock_wait_us
        packet.exec_time_us = exec_time
        proc.busy = True
        proc.current_packet = packet
        self._idle.remove(proc_id)
        if self._tracer is not None:
            state = ComponentState(
                code_refs=code_refs,
                stream_refs=stream_refs,
                thread_refs=thread_refs,
                shared_invalidated=shared_invalidated,
            )
            self._tracer.record(packet, state, lock_wait_us, exec_time, now)
        if self._invariants is not None:
            self._invariants.on_service_start(
                proc_id, packet, now, lock_wait_us, exec_time
            )
        self._schedule_record(lock_wait_us + exec_time,
                              self._completion_records[proc_id])

    def _complete(self, proc: ProcessorState) -> None:
        now = self.sim._now
        packet = proc.current_packet
        if packet is None or not proc.busy:
            raise RuntimeError(f"processor {proc.proc_id} is not serving a packet")
        epoch = self.protocol_epoch + 1
        self.protocol_epoch = epoch
        stream_id = packet.stream_id
        thread_id = packet.thread_id
        exec_us = packet.exec_time_us
        # Inlined ProcessorState.end_service: protocol execution issues
        # references at the full platform rate; the touched components are
        # stamped with the post-execution clock value.
        clock = proc._ref_clock + exec_us * proc.references_per_us
        proc._ref_clock = clock
        proc._accrued_until = now
        touch = proc._last_touch
        touch[_CODE_KEY] = clock
        skey = self._stream_keys.get(stream_id)
        if skey is None:
            skey = ("stream", stream_id)
            self._stream_keys[stream_id] = skey
        touch[skey] = clock
        touch[self._thread_keys[thread_id]] = clock
        proc.protocol_busy_us += exec_us
        proc.last_protocol_end = now
        proc.protocol_epoch_seen = epoch
        proc.busy = False
        proc.current_packet = None
        insort(self._idle, proc.proc_id)
        packet.completion_us = now
        if self._invariants is not None:
            self._invariants.on_completion(packet, proc.proc_id, now)
        self._threads_release(thread_id)
        self._stream_last_proc[stream_id] = proc.proc_id
        self._metrics_on_completion(packet)
        self.try_dispatch()


class IPSDispatcher(BaseDispatcher):
    """Independent Protocol Stacks: K lock-free serial stack instances.

    Streams are statically bound to stacks (``stream_id mod K``); each
    stack processes its packets strictly in order, one at a time (the
    structural source of IPS's limited intra-stream scalability and burst
    sensitivity).  The policy chooses which idle processor a runnable
    stack uses.
    """

    locking_paradigm = False

    def __init__(self, system: NetworkProcessingSystem,
                 policy: IPSPolicy, n_stacks: int) -> None:
        super().__init__(system)
        if n_stacks < 1:
            raise ValueError("need at least one stack")
        self.policy = policy
        self.n_stacks = n_stacks
        self._queues: List[Deque[Packet]] = [deque() for _ in range(n_stacks)]
        self._stack_busy: List[bool] = [False] * n_stacks
        self._stack_last_proc: Dict[int, Optional[int]] = {
            k: None for k in range(n_stacks)
        }
        #: Interned ("stack_thread", id) touch keys, indexed by stack id.
        self._stack_thread_keys: List[Tuple[str, int]] = [
            ("stack_thread", k) for k in range(n_stacks)
        ]

    def stack_of(self, stream_id: int) -> int:
        return stream_id % self.n_stacks

    def stack_last_processor(self, stack_id: int) -> Optional[int]:
        return self._stack_last_proc[stack_id]

    def on_arrival(self, packet: Packet) -> None:
        self._queues[packet.stream_id % self.n_stacks].append(packet)
        self.try_dispatch()

    def queued(self) -> int:
        return sum(len(q) for q in self._queues)

    def try_dispatch(self) -> None:
        # Runnable stacks compete in order of their head packet's arrival
        # time (global FCFS across stacks), matching a work-conserving
        # kernel scheduler.  The common case — the earliest runnable stack
        # gets a processor — needs one min-scan, not a sorted list; the
        # ordered fallback scan only runs when that stack was refused,
        # which built-in policies decide without consulting the RNG (so
        # skipping the already-refused stack repeats no draw).
        queues = self._queues
        busy = self._stack_busy
        n_stacks = self.n_stacks
        while True:
            if not self._idle:
                # No processor can start anything; built-in policies
                # consult no RNG before refusing, so returning early
                # repeats their decision exactly.
                return
            best_k = -1
            best_t = math.inf
            for k in range(n_stacks):
                q = queues[k]
                if q and not busy[k]:
                    t = q[0].arrival_us
                    if t < best_t:
                        best_t = t
                        best_k = k
            if best_k < 0:
                return
            proc_id = self.policy.select_processor(
                best_k, self, self._stack_last_proc[best_k]
            )
            if proc_id is not None:
                if self._procs[proc_id].busy:
                    raise RuntimeError(
                        f"IPS policy {self.policy.name!r} chose busy processor"
                    )
                self._start_service(best_k, proc_id)
                continue  # re-evaluate runnable set after each start
            # The earliest runnable stack was refused: fall back to the
            # full arrival-ordered scan over the remaining stacks.
            runnable: List[Tuple[float, int]] = [
                (q[0].arrival_us, k)
                for k, q in enumerate(queues)
                if q and not busy[k] and k != best_k
            ]
            runnable.sort()
            progress = False
            for _, k in runnable:
                proc_id = self.policy.select_processor(
                    k, self, self._stack_last_proc[k]
                )
                if proc_id is None:
                    continue
                if self._procs[proc_id].busy:
                    raise RuntimeError(
                        f"IPS policy {self.policy.name!r} chose busy processor"
                    )
                self._start_service(k, proc_id)
                progress = True
                break  # re-evaluate runnable set after each start
            if not progress:
                return

    def _start_service(self, stack_id: int, proc_id: int) -> None:
        now = self.sim._now
        proc = self._procs[proc_id]
        if proc.busy:
            raise RuntimeError(f"processor {proc_id} is already busy")
        packet = self._queues[stack_id].popleft()
        self._stack_busy[stack_id] = True

        # Stack-private writable data is cold iff the stack migrated; the
        # per-stack thread's stack follows the stack instance.  The
        # processor lifecycle and reference counts are inlined exactly as
        # in the Locking path.
        migrated = self._stack_last_proc[stack_id] != proc_id
        accrued = proc._accrued_until
        dt = now - accrued
        if dt > 0.0:
            proc._ref_clock += (
                dt * proc.references_per_us * proc.nonprotocol_intensity
            )
            proc.nonprotocol_us += dt
            proc._accrued_until = now
        elif dt < -1e-9:
            raise ValueError(f"time went backwards: {now} < {accrued}")
        clock = proc._ref_clock
        touch = proc._last_touch
        last = touch.get(_CODE_KEY)
        if last is None:
            code_refs = COLD
        else:
            d = clock - last
            code_refs = d if d > 0.0 else 0.0
        stream_id = packet.stream_id
        last_sp = self._stream_last_proc.get(stream_id)
        if last_sp != proc_id:
            if last_sp is not None:
                self.migrations += 1
            stream_refs = COLD
        else:
            # The stream completed here before, so its key is interned.
            last = touch.get(self._stream_keys[stream_id])
            if last is None:
                stream_refs = COLD
            else:
                d = clock - last
                stream_refs = d if d > 0.0 else 0.0
        if migrated:
            thread_refs = COLD
        else:
            last = touch.get(self._stack_thread_keys[stack_id])
            if last is None:
                thread_refs = COLD
            else:
                d = clock - last
                thread_refs = d if d > 0.0 else 0.0

        exec_time = self.model.execution_time_scalar(
            code_refs, stream_refs, thread_refs, migrated,
            payload_bytes=packet.size_bytes,
            data_touching=self._data_touching,
            locking=False,
            extra_us=self._extra_us,
        )

        # Inlined begin-service (clock already accrued to `now` above).
        packet.service_start_us = now
        packet.processor_id = proc_id
        packet.thread_id = stack_id  # one serving context per stack
        packet.lock_wait_us = 0.0
        packet.exec_time_us = exec_time
        proc.busy = True
        proc.current_packet = packet
        self._idle.remove(proc_id)
        if self._tracer is not None:
            state = ComponentState(
                code_refs=code_refs,
                stream_refs=stream_refs,
                thread_refs=thread_refs,
                shared_invalidated=migrated,
            )
            self._tracer.record(packet, state, 0.0, exec_time, now)
        if self._invariants is not None:
            self._invariants.on_service_start(
                proc_id, packet, now, 0.0, exec_time
            )
        self._schedule_record(exec_time, self._completion_records[proc_id])

    def _complete(self, proc: ProcessorState) -> None:
        now = self.sim._now
        packet = proc.current_packet
        if packet is None or not proc.busy:
            raise RuntimeError(f"processor {proc.proc_id} is not serving a packet")
        stream_id = packet.stream_id
        stack_id = stream_id % self.n_stacks
        epoch = self.protocol_epoch + 1
        self.protocol_epoch = epoch
        exec_us = packet.exec_time_us
        # Inlined ProcessorState.end_service (see LockingDispatcher).
        clock = proc._ref_clock + exec_us * proc.references_per_us
        proc._ref_clock = clock
        proc._accrued_until = now
        touch = proc._last_touch
        touch[_CODE_KEY] = clock
        skey = self._stream_keys.get(stream_id)
        if skey is None:
            skey = ("stream", stream_id)
            self._stream_keys[stream_id] = skey
        touch[skey] = clock
        touch[self._stack_thread_keys[stack_id]] = clock
        proc.protocol_busy_us += exec_us
        proc.last_protocol_end = now
        proc.protocol_epoch_seen = epoch
        proc.busy = False
        proc.current_packet = None
        insort(self._idle, proc.proc_id)
        packet.completion_us = now
        if self._invariants is not None:
            self._invariants.on_completion(packet, proc.proc_id, now)
        self._stack_busy[stack_id] = False
        self._stack_last_proc[stack_id] = proc.proc_id
        self._stream_last_proc[stream_id] = proc.proc_id
        self._metrics_on_completion(packet)
        self.try_dispatch()
