"""Paradigm dispatchers: Locking and IPS.

A dispatcher owns the mapping from arrived packets to (processor, thread)
executions, implements the :class:`repro.core.policies.SchedulerView`
protocol for its scheduling policy, and encodes each paradigm's coherence
semantics when assembling the per-packet :class:`ComponentState`:

**Migration coherence.**  Writable footprint components live in the cache
of the processor that last *wrote* them; serving elsewhere finds them cold
(dirty lines migrate via the coherence protocol).  Concretely:

- per-stream state is warm only on the processor that last served the
  stream (elsewhere: ``COLD``);
- a thread's stack is warm only where the thread last ran;
- under **Locking**, the writable fraction of the shared code+globals
  component is invalidated whenever *any other* processor completed
  protocol work since this processor last did (global epoch test);
- under **IPS**, each stack's writable data is private: it is cold only
  when the *stack itself* migrated to a new processor — the structural
  reason "IPS maximizes cache affinity".

Read-mostly code+globals are displaced only by local intervening
references (tracked by the processor's displacing-reference clock).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..core.exec_model import COLD, ComponentState
from ..core.policies import IPSPolicy, LockingPolicy, SchedulerView
from .entities import Packet, ProcessorState, ThreadPool
from .locks import LayeredLocks

if TYPE_CHECKING:
    from .system import NetworkProcessingSystem

__all__ = ["BaseDispatcher", "LockingDispatcher", "IPSDispatcher"]


class BaseDispatcher(SchedulerView):
    """Shared machinery: SchedulerView implementation + service lifecycle.

    Subclasses implement :meth:`on_arrival` and :meth:`try_dispatch`; the
    owning :class:`~repro.sim.system.NetworkProcessingSystem` provides the
    engine, processors, model, RNG and metrics through ``system``.
    """

    #: paradigm pays per-packet lock costs?
    locking_paradigm: bool = False

    def __init__(self, system: NetworkProcessingSystem) -> None:
        self.system = system
        #: stream id -> processor that last served it (migration tracking).
        self._stream_last_proc: Dict[int, int] = {}
        #: monotone count of completed protocol executions, system-wide.
        self.protocol_epoch: int = 0

    # ------------------------------------------------------------------
    # SchedulerView
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        return len(self.system.processors)

    def idle_processors(self) -> List[int]:
        return [p.proc_id for p in self.system.processors if not p.busy]

    def last_protocol_end(self, proc_id: int) -> float:
        return self.system.processors[proc_id].last_protocol_end

    def stream_last_processor(self, stream_id: int) -> Optional[int]:
        return self._stream_last_proc.get(stream_id)

    def random_choice(self, items: List[int]) -> int:
        if not items:
            raise ValueError("empty choice set")
        if len(items) == 1:
            return items[0]
        idx = int(self.system.rngs.scheduling.integers(0, len(items)))
        return items[idx]

    # ------------------------------------------------------------------
    # Component cache-state assembly
    # ------------------------------------------------------------------
    def _stream_refs(self, proc: ProcessorState, stream_id: int, now: float) -> float:
        """Intervening refs for the stream-state component (migration-aware)."""
        last = self._stream_last_proc.get(stream_id)
        if last != proc.proc_id:
            return COLD
        return proc.refs_since_touch(("stream", stream_id), now)

    # ------------------------------------------------------------------
    # Service lifecycle helpers
    # ------------------------------------------------------------------
    def _begin(self, proc: ProcessorState, packet: Packet, thread_id: int,
               state: ComponentState, lock_wait_us: float, exec_time: float) -> None:
        now = self.system.sim.now
        packet.service_start_us = now
        packet.processor_id = proc.proc_id
        packet.thread_id = thread_id
        packet.lock_wait_us = lock_wait_us
        packet.exec_time_us = exec_time
        proc.begin_service(packet, now)
        if self.system.tracer is not None:
            self.system.tracer.record(packet, state, lock_wait_us, exec_time, now)
        if self.system.invariants is not None:
            self.system.invariants.on_service_start(
                proc.proc_id, packet, now, lock_wait_us, exec_time
            )
        span = lock_wait_us + exec_time
        self.system.sim.schedule(span, lambda: self._complete(proc))

    def _complete(self, proc: ProcessorState) -> None:
        raise NotImplementedError

    # Subclass interface ------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        raise NotImplementedError

    def try_dispatch(self) -> None:
        raise NotImplementedError

    def queued(self) -> int:
        raise NotImplementedError


class LockingDispatcher(BaseDispatcher):
    """Shared protocol stack, N protocol threads, pluggable policy."""

    locking_paradigm = True

    def __init__(self, system: NetworkProcessingSystem,
                 policy: LockingPolicy) -> None:
        super().__init__(system)
        self.policy = policy
        self.policy.attach(self)
        self.threads = ThreadPool(
            n_threads=self.n_processors,
            per_processor=policy.per_processor_threads,
        )
        inv = system.invariants
        self.lock = LayeredLocks(
            system.config.lock_granularity,
            on_reserve=inv.on_lock_reservation if inv is not None else None,
        )

    def on_arrival(self, packet: Packet) -> None:
        self.policy.on_arrival(packet)
        self.try_dispatch()

    def try_dispatch(self) -> None:
        while True:
            assignment = self.policy.next_dispatch()
            if assignment is None:
                return
            proc_id, packet = assignment
            self._start_service(proc_id, packet)

    def queued(self) -> int:
        return self.policy.queued()

    def _start_service(self, proc_id: int, packet: Packet) -> None:
        system = self.system
        now = system.sim.now
        proc = system.processors[proc_id]
        if proc.busy:
            raise RuntimeError(
                f"policy {self.policy.name!r} dispatched to busy processor {proc_id}"
            )
        thread_id = self.threads.acquire(proc_id)

        thread_last = self.threads.last_processor(thread_id)
        thread_refs = (
            proc.refs_since_touch(("thread", thread_id), now)
            if thread_last == proc_id
            else COLD  # never ran, or stack lines migrated with the thread
        )
        state = ComponentState(
            code_refs=proc.refs_since_touch(("code",), now),
            stream_refs=self._stream_refs(proc, packet.stream_id, now),
            thread_refs=thread_refs,
            shared_invalidated=self.protocol_epoch > proc.protocol_epoch_seen,
        )
        exec_time = system.model.execution_time_us(
            state,
            payload_bytes=packet.size_bytes,
            data_touching=system.data_touching,
            locking=True,
            extra_us=system.fixed_overhead_us,
        )
        lock_wait_us = self.lock.reserve(now, system.costs.lock_cs_us)
        self._begin(proc, packet, thread_id, state, lock_wait_us, exec_time)

    def _complete(self, proc: ProcessorState) -> None:
        system = self.system
        now = system.sim.now
        packet = proc.current_packet
        self.protocol_epoch += 1
        touched = (
            ("code",),
            ("stream", packet.stream_id),
            ("thread", packet.thread_id),
        )
        proc.end_service(now, packet.exec_time_us, touched, self.protocol_epoch)
        packet.completion_us = now
        if system.invariants is not None:
            system.invariants.on_completion(packet, proc.proc_id, now)
        self.threads.release(packet.thread_id)
        self._stream_last_proc[packet.stream_id] = proc.proc_id
        system.metrics.on_completion(packet)
        self.try_dispatch()


class IPSDispatcher(BaseDispatcher):
    """Independent Protocol Stacks: K lock-free serial stack instances.

    Streams are statically bound to stacks (``stream_id mod K``); each
    stack processes its packets strictly in order, one at a time (the
    structural source of IPS's limited intra-stream scalability and burst
    sensitivity).  The policy chooses which idle processor a runnable
    stack uses.
    """

    locking_paradigm = False

    def __init__(self, system: NetworkProcessingSystem,
                 policy: IPSPolicy, n_stacks: int) -> None:
        super().__init__(system)
        if n_stacks < 1:
            raise ValueError("need at least one stack")
        self.policy = policy
        self.n_stacks = n_stacks
        self._queues: List[Deque[Packet]] = [deque() for _ in range(n_stacks)]
        self._stack_busy: List[bool] = [False] * n_stacks
        self._stack_last_proc: Dict[int, Optional[int]] = {
            k: None for k in range(n_stacks)
        }

    def stack_of(self, stream_id: int) -> int:
        return stream_id % self.n_stacks

    def stack_last_processor(self, stack_id: int) -> Optional[int]:
        return self._stack_last_proc[stack_id]

    def on_arrival(self, packet: Packet) -> None:
        self._queues[self.stack_of(packet.stream_id)].append(packet)
        self.try_dispatch()

    def queued(self) -> int:
        return sum(len(q) for q in self._queues)

    def try_dispatch(self) -> None:
        # Runnable stacks compete in order of their head packet's arrival
        # time (global FCFS across stacks), matching a work-conserving
        # kernel scheduler.
        while True:
            runnable: List[Tuple[float, int]] = [
                (q[0].arrival_us, k)
                for k, q in enumerate(self._queues)
                if q and not self._stack_busy[k]
            ]
            if not runnable:
                return
            runnable.sort()
            progress = False
            for _, k in runnable:
                proc_id = self.policy.select_processor(
                    k, self, self._stack_last_proc[k]
                )
                if proc_id is None:
                    continue
                if self.system.processors[proc_id].busy:
                    raise RuntimeError(
                        f"IPS policy {self.policy.name!r} chose busy processor"
                    )
                self._start_service(k, proc_id)
                progress = True
                break  # re-evaluate runnable set after each start
            if not progress:
                return

    def _start_service(self, stack_id: int, proc_id: int) -> None:
        system = self.system
        now = system.sim.now
        proc = system.processors[proc_id]
        packet = self._queues[stack_id].popleft()
        self._stack_busy[stack_id] = True

        # Stack-private writable data is cold iff the stack migrated; the
        # per-stack thread's stack follows the stack instance.
        migrated = self._stack_last_proc[stack_id] != proc_id
        thread_key = ("stack_thread", stack_id)
        state = ComponentState(
            code_refs=proc.refs_since_touch(("code",), now),
            stream_refs=self._stream_refs(proc, packet.stream_id, now),
            thread_refs=(COLD if migrated else proc.refs_since_touch(thread_key, now)),
            shared_invalidated=migrated,
        )
        exec_time = system.model.execution_time_us(
            state,
            payload_bytes=packet.size_bytes,
            data_touching=system.data_touching,
            locking=False,
            extra_us=system.fixed_overhead_us,
        )
        packet.thread_id = stack_id  # one serving context per stack
        self._begin(proc, packet, stack_id, state, 0.0, exec_time)

    def _complete(self, proc: ProcessorState) -> None:
        system = self.system
        now = system.sim.now
        packet = proc.current_packet
        stack_id = self.stack_of(packet.stream_id)
        self.protocol_epoch += 1
        touched = (
            ("code",),
            ("stream", packet.stream_id),
            ("stack_thread", stack_id),
        )
        proc.end_service(now, packet.exec_time_us, touched, self.protocol_epoch)
        packet.completion_us = now
        if system.invariants is not None:
            system.invariants.on_completion(packet, proc.proc_id, now)
        self._stack_busy[stack_id] = False
        self._stack_last_proc[stack_id] = proc.proc_id
        self._stream_last_proc[packet.stream_id] = proc.proc_id
        system.metrics.on_completion(packet)
        self.try_dispatch()
