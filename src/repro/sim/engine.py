"""Minimal deterministic discrete-event simulation engine.

A classic calendar-queue (binary heap) engine.  The calendar holds
``(time, seq, event)`` entries where ``event`` is a slotted
:class:`Event` record; ``seq`` is a monotonically increasing tie-breaker
so simultaneous events fire in scheduling order, making runs fully
deterministic for a given seed.  Because ``seq`` is unique, heap
comparisons never reach the record itself — entries order exactly as the
historical ``(time, seq, callback)`` tuples did.

Event records carry a *kind* tag plus a ``fn``/``arg`` pair and are
designed for reuse: the hot producers (per-stream arrival sources,
per-processor service completions) allocate one record up front and
re-push it for every occurrence, so steady-state operation allocates one
small tuple per event and zero closures.  The generic ``schedule``/``at``
API still accepts arbitrary zero-argument callbacks.

Time is a ``float`` in **microseconds** throughout the reproduction (the
unit of the paper's measured constants).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "Event",
    "EVENT_CALL",
    "EVENT_ARRIVAL",
    "EVENT_COMPLETION",
    "EVENT_SESSION",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling into the past)."""


#: Event kinds (observability tags; dispatch itself goes through the
#: record's bound ``fn``, so firing never branches on the kind).
EVENT_CALL: int = 0        #: generic zero-argument callback
EVENT_ARRIVAL: int = 1     #: packet-arrival batch for one stream source
EVENT_COMPLETION: int = 2  #: service completion on one processor
EVENT_SESSION: int = 3     #: session-churn event (open/close bookkeeping)

_EVENT_KIND_NAMES = {
    EVENT_CALL: "call",
    EVENT_ARRIVAL: "arrival",
    EVENT_COMPLETION: "completion",
    EVENT_SESSION: "session",
}


class Event:
    """Slotted, reusable event record.

    ``fn`` is invoked as ``fn(arg)`` when ``arg`` is not ``None`` and as
    ``fn()`` otherwise (the generic-callback convention).  Fast-path
    producers therefore must use a non-``None`` ``arg``.
    """

    __slots__ = ("kind", "fn", "arg")

    def __init__(self, kind: int, fn: Callable[..., None],
                 arg: Any = None) -> None:
        self.kind = kind
        self.fn = fn
        self.arg = arg

    def __repr__(self) -> str:
        name = _EVENT_KIND_NAMES.get(self.kind, str(self.kind))
        return f"Event(kind={name}, fn={getattr(self.fn, '__qualname__', self.fn)!r})"


class Simulator:
    """Event calendar and clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: ...)      # absolute-time variant: sim.at
        sim.run_until(1_000_000.0)

    Generic callbacks receive no arguments; closures capture whatever
    context they need.  Hot paths avoid the closure by scheduling a
    reusable :class:`Event` record via :meth:`at_record` /
    :meth:`schedule_record` (or a one-off ``fn(arg)`` pair via
    :meth:`at_call`).  A callback may schedule further events freely.

    ``on_event``, when given, is invoked with the event time immediately
    before each callback fires — the observability hook the runtime
    invariant checker (:mod:`repro.verify.invariants`) uses to assert
    clock monotonicity.  The default ``None`` keeps the event loop free of
    any per-event work beyond a single pointer comparison.
    """

    def __init__(self,
                 on_event: Optional[Callable[[float], None]] = None) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._on_event = on_event

    @property
    def now(self) -> float:
        """Current simulation time (µs)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay_us`` after the current time."""
        if math.isnan(delay_us):
            raise SimulationError(
                "cannot schedule with NaN delay (a cost or interarrival "
                "computation produced NaN)"
            )
        if delay_us < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay_us!r}")
        self.at(self._now + delay_us, callback)

    def at(self, time_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        self.at_record(time_us, Event(EVENT_CALL, callback))

    def schedule_call(self, delay_us: float, fn: Callable[[Any], None],
                      arg: Any) -> None:
        """Relative-time variant of :meth:`at_call`."""
        if math.isnan(delay_us):
            raise SimulationError(
                "cannot schedule with NaN delay (a cost or interarrival "
                "computation produced NaN)"
            )
        if delay_us < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay_us!r}")
        self.at_record(self._now + delay_us,
                       Event(EVENT_CALL, fn, arg))

    def at_call(self, time_us: float, fn: Callable[[Any], None],
                arg: Any) -> None:
        """Schedule ``fn(arg)`` at an absolute time (no closure needed)."""
        self.at_record(time_us, Event(EVENT_CALL, fn, arg))

    def schedule_record(self, delay_us: float, record: Event) -> None:
        """Schedule a (reusable) event record ``delay_us`` from now.

        The record is *not* copied: producers that re-push one record per
        logical entity (stream, processor) must guarantee at most one
        pending occurrence at a time.

        Self-contained (no :meth:`at_record` delegation): this runs once
        per service completion.  A non-negative delay from a finite clock
        can never land in the past, so only the NaN/negative checks are
        needed.
        """
        if delay_us != delay_us:  # NaN check without a function call
            raise SimulationError(
                "cannot schedule with NaN delay (a cost or interarrival "
                "computation produced NaN)"
            )
        if delay_us < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay_us!r}")
        heapq.heappush(self._heap, (self._now + delay_us, self._seq, record))
        self._seq += 1

    def at_record(self, time_us: float, record: Event) -> None:
        """Schedule a (reusable) event record at an absolute time."""
        if time_us != time_us:  # NaN check without a function call
            raise SimulationError(
                "cannot schedule at NaN time (a cost or interarrival "
                "computation produced NaN)"
            )
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule at {time_us!r} (now = {self._now!r}): "
                "time is in the past"
            )
        heapq.heappush(self._heap, (time_us, self._seq, record))
        self._seq += 1

    def stop(self) -> None:
        """Request that the run loop return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns ``False`` if the calendar is empty."""
        if not self._heap:
            return False
        time_us, _, record = heapq.heappop(self._heap)
        self._now = time_us
        self._events_processed += 1
        if self._on_event is not None:
            self._on_event(time_us)
        arg = record.arg
        if arg is None:
            record.fn()
        else:
            record.fn(arg)
        return True

    def run_until(self, end_time_us: float) -> None:
        """Run events with ``time <= end_time_us``; clock ends at that time.

        Events scheduled beyond the horizon remain in the calendar (so a
        run can be resumed), and the clock is advanced to exactly
        ``end_time_us`` on return.

        This is the simulation's innermost loop: the heap pop, dispatch
        and bookkeeping are inlined rather than delegated to
        :meth:`step` (one attribute-laden method call per event is
        measurable at millions of events per sweep).  Each event is popped
        eagerly — the first one past the horizon is pushed back (one extra
        sift per ``run_until`` call instead of a peek per event) — the
        observability branch is hoisted out of the loop, and
        ``events_processed`` is folded in once per call, not per event.
        """
        if end_time_us < self._now:
            raise SimulationError(
                f"end time {end_time_us!r} is before now ({self._now!r})"
            )
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        on_event = self._on_event
        fired = 0
        try:
            if on_event is None:
                while heap:
                    entry = heappop(heap)
                    time_us = entry[0]
                    if time_us > end_time_us:
                        heapq.heappush(heap, entry)
                        break
                    self._now = time_us
                    fired += 1
                    record = entry[2]
                    arg = record.arg
                    if arg is None:
                        record.fn()
                    else:
                        record.fn(arg)
                    if self._stopped:
                        return
            else:
                while heap:
                    entry = heappop(heap)
                    time_us = entry[0]
                    if time_us > end_time_us:
                        heapq.heappush(heap, entry)
                        break
                    self._now = time_us
                    fired += 1
                    on_event(time_us)
                    record = entry[2]
                    arg = record.arg
                    if arg is None:
                        record.fn()
                    else:
                        record.fn(arg)
                    if self._stopped:
                        return
        finally:
            self._events_processed += fired
        self._now = max(self._now, end_time_us)

    def run_until_batched(self, end_time_us: float) -> None:
        """Batch-draining variant of :meth:`run_until` (same contract).

        Events are fired in exactly the same ``(time, seq)`` order as
        :meth:`run_until`; the difference is purely mechanical: all events
        sharing one timestamp are drained as a single *run* — the clock
        store and the horizon comparison happen once per distinct
        timestamp rather than once per event, and successors at the same
        time are claimed with a heap *peek* instead of a pop/push-back
        pair.  Callbacks that schedule new work at the current timestamp
        are picked up within the same run (the peek rereads the heap), so
        behaviour is indistinguishable from the scalar loop.
        """
        if end_time_us < self._now:
            raise SimulationError(
                f"end time {end_time_us!r} is before now ({self._now!r})"
            )
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        on_event = self._on_event
        fired = 0
        try:
            while heap:
                entry = heappop(heap)
                time_us = entry[0]
                if time_us > end_time_us:
                    heapq.heappush(heap, entry)
                    break
                self._now = time_us
                # Same-timestamp run: seq uniqueness means heap order within
                # the run is exactly scheduling order.
                while True:
                    fired += 1
                    if on_event is not None:
                        on_event(time_us)
                    record = entry[2]
                    arg = record.arg
                    if arg is None:
                        record.fn()
                    else:
                        record.fn(arg)
                    if self._stopped:
                        return
                    if not heap or heap[0][0] != time_us:
                        break
                    entry = heappop(heap)
        finally:
            self._events_processed += fired
        self._now = max(self._now, end_time_us)

    def run_to_completion(self, max_events: int = 50_000_000) -> None:
        """Drain the calendar entirely (bounded by ``max_events``)."""
        self._stopped = False
        for _ in range(max_events):
            if self._stopped or not self.step():
                return
        raise SimulationError(f"exceeded {max_events} events; likely runaway")
