"""Minimal deterministic discrete-event simulation engine.

A classic calendar-queue (binary heap) engine.  Events are ``(time, seq,
callback)`` triples; ``seq`` is a monotonically increasing tie-breaker so
simultaneous events fire in scheduling order, making runs fully
deterministic for a given seed.

Time is a ``float`` in **microseconds** throughout the reproduction (the
unit of the paper's measured constants).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling into the past)."""


class Simulator:
    """Event calendar and clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: ...)      # absolute-time variant: sim.at
        sim.run_until(1_000_000.0)

    Callbacks receive no arguments; closures capture whatever context they
    need.  A callback may schedule further events freely.

    ``on_event``, when given, is invoked with the event time immediately
    before each callback fires — the observability hook the runtime
    invariant checker (:mod:`repro.verify.invariants`) uses to assert
    clock monotonicity.  The default ``None`` keeps the event loop free of
    any per-event work beyond a single pointer comparison.
    """

    def __init__(self,
                 on_event: Optional[Callable[[float], None]] = None) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._on_event = on_event

    @property
    def now(self) -> float:
        """Current simulation time (µs)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar."""
        return len(self._heap)

    def schedule(self, delay_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay_us`` after the current time."""
        if math.isnan(delay_us):
            raise SimulationError(
                "cannot schedule with NaN delay (a cost or interarrival "
                "computation produced NaN)"
            )
        if delay_us < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay_us!r}")
        self.at(self._now + delay_us, callback)

    def at(self, time_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        if math.isnan(time_us):
            raise SimulationError(
                "cannot schedule at NaN time (a cost or interarrival "
                "computation produced NaN)"
            )
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule at {time_us!r} (now = {self._now!r}): "
                "time is in the past"
            )
        heapq.heappush(self._heap, (time_us, self._seq, callback))
        self._seq += 1

    def stop(self) -> None:
        """Request that the run loop return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Fire the next event; returns ``False`` if the calendar is empty."""
        if not self._heap:
            return False
        time_us, _, callback = heapq.heappop(self._heap)
        self._now = time_us
        self._events_processed += 1
        if self._on_event is not None:
            self._on_event(time_us)
        callback()
        return True

    def run_until(self, end_time_us: float) -> None:
        """Run events with ``time <= end_time_us``; clock ends at that time.

        Events scheduled beyond the horizon remain in the calendar (so a
        run can be resumed), and the clock is advanced to exactly
        ``end_time_us`` on return.
        """
        if end_time_us < self._now:
            raise SimulationError(
                f"end time {end_time_us!r} is before now ({self._now!r})"
            )
        self._stopped = False
        while self._heap and not self._stopped:
            if self._heap[0][0] > end_time_us:
                break
            self.step()
        if not self._stopped:
            self._now = max(self._now, end_time_us)

    def run_to_completion(self, max_events: int = 50_000_000) -> None:
        """Drain the calendar entirely (bounded by ``max_events``)."""
        self._stopped = False
        for _ in range(max_events):
            if self._stopped or not self.step():
                return
        raise SimulationError(f"exceeded {max_events} events; likely runaway")
