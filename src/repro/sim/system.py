"""Top-level assembly: configure, run, summarize one simulation.

:class:`SystemConfig` captures every knob of a run (platform, costs,
paradigm, policy, traffic, non-protocol intensity ``V``, horizon, seed);
:class:`NetworkProcessingSystem` wires the engine, processors, model,
dispatcher and metrics together and exposes :meth:`run`.

Typical use (the library's main entry point)::

    from repro import SystemConfig, NetworkProcessingSystem, TrafficSpec

    cfg = SystemConfig(
        paradigm="locking",
        policy="mru",
        traffic=TrafficSpec.homogeneous_poisson(n_streams=8, total_rate_pps=12_000),
        nonprotocol_intensity=1.0,
        duration_us=2_000_000,
        seed=1,
    )
    summary = NetworkProcessingSystem(cfg).run()
    print(summary.mean_delay_us)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from ..core.exec_model import ExecutionTimeModel
from ..core.params import (
    PAPER_COMPOSITION,
    PAPER_COSTS,
    FootprintComposition,
    PlatformConfig,
    ProtocolCosts,
)
from ..core.policies import (
    IPSPolicy,
    LockingPolicy,
    make_ips_policy,
    make_locking_policy,
)
from ..verify.invariants import InvariantChecker
from ..workloads.arrivals import ArrivalProcess, PoissonArrivals
from ..workloads.sessions import SessionChurnSpec
from ..workloads.traffic import FixedSize, TrafficSpec
from . import batch
from .dispatch import IPSDispatcher, LockingDispatcher
from .engine import EVENT_ARRIVAL, EVENT_SESSION, Event, Simulator
from .entities import Packet, ProcessorState
from .metrics import MetricsCollector, SimulationSummary
from .rng import RandomStreams
from .trace import ExecutionTracer

__all__ = ["SystemConfig", "NetworkProcessingSystem", "run_simulation"]

PARADIGMS = ("locking", "ips")

#: Bounds for per-stream arrival pregeneration chunks (batches per RNG
#: refill).  The lower bound keeps short-lived churned sessions cheap;
#: the upper bound caps the memory a single refill may pin.
_MIN_CHUNK = 16
_MAX_CHUNK = 8192


class _ArrivalSource:
    """Pregenerated arrival state for one stream.

    Interarrival gaps and batch sizes are drawn from the stream's private
    RNG in vectorized chunks (:meth:`ArrivalProcess.next_batches`) and
    consumed one batch per arrival event; the chunk refills on
    exhaustion.  Because every chunk reproduces the event-by-event draw
    sequence value for value, and each stream draws from its own RNG
    substream, pregeneration is bit-identical to the historical
    draw-per-event scheme — chunks merely draw (and possibly discard)
    values past the horizon that no other consumer can observe.

    ``record`` is the stream's reusable engine event: one allocation per
    stream for the whole run instead of one closure per arrival.
    """

    __slots__ = ("stream_id", "process", "gaps", "sizes", "idx",
                 "end_us", "chunk_hint", "pending_size", "record")

    def __init__(self, stream_id: int, process: ArrivalProcess,
                 end_us: Optional[float], chunk_hint: int) -> None:
        self.stream_id = stream_id
        self.process = process
        self.end_us = end_us
        self.chunk_hint = chunk_hint
        self.gaps: List[float] = []
        self.sizes: Optional[List[int]] = None
        self.idx = 0
        self.pending_size = 1
        self.record: Event = None  # type: ignore[assignment]  # set by the system


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulation run.

    ``policy`` may be a registry name (see
    :data:`repro.core.policies.LOCKING_POLICIES` /
    :data:`~repro.core.policies.IPS_POLICIES`) or a ready policy instance;
    ``policy_kwargs`` are forwarded to the registry factory.

    ``nonprotocol_intensity`` is the displacing memory-reference
    intensity of the non-protocol workload that absorbs idle processor
    time (0 = no displacement; 1 = the full platform reference rate).

    ``fixed_overhead_us`` is the paper's ``V``: a fixed, cache-independent
    per-packet overhead added to every service (the V-family curves of
    Figures 10/11; checksumming a maximal 4432 B FDDI payload corresponds
    to V ≈ 139 µs).

    ``lock_granularity`` selects the Locking paradigm's lock structure:
    1 = one coarse stack lock (default); k > 1 = per-layer locks the
    packet pipelines through (the granularity dimension of ref [3]),
    raising the serialization ceiling from ``1/cs`` to ``k/cs``.

    ``churn`` adds a dynamic stream population on top of the base
    traffic (streams open/close as a birth-death process; see
    :class:`repro.workloads.SessionChurnSpec`) — used to test the
    abstract's "greater number of concurrent streams" claim.

    ``check_invariants`` wires an online
    :class:`~repro.verify.invariants.InvariantChecker` through the engine,
    dispatchers and locks; the run raises
    :class:`~repro.verify.invariants.InvariantViolation` at the first
    violated invariant.  Like ``trace``, it is pure observability: it can
    never change simulation results (and is therefore excluded from the
    result-cache content key).
    """

    traffic: TrafficSpec
    paradigm: str = "locking"
    policy: Union[str, LockingPolicy, IPSPolicy] = "mru"
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    costs: ProtocolCosts = PAPER_COSTS
    composition: FootprintComposition = PAPER_COMPOSITION
    nonprotocol_intensity: float = 1.0
    n_stacks: Optional[int] = None
    churn: Optional[SessionChurnSpec] = None
    data_touching: bool = False
    fixed_overhead_us: float = 0.0
    lock_granularity: int = 1
    trace: bool = False
    check_invariants: bool = False
    duration_us: float = 2_000_000.0
    warmup_us: float = 200_000.0
    seed: int = 1
    policy_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.paradigm not in PARADIGMS:
            raise ValueError(f"paradigm must be one of {PARADIGMS}, got {self.paradigm!r}")
        if self.nonprotocol_intensity < 0:
            raise ValueError("nonprotocol_intensity (V) must be >= 0")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if not (0.0 <= self.warmup_us < self.duration_us):
            raise ValueError("need 0 <= warmup_us < duration_us")
        if self.n_stacks is not None and self.n_stacks < 1:
            raise ValueError("n_stacks must be >= 1")
        if self.fixed_overhead_us < 0:
            raise ValueError("fixed_overhead_us (V) must be >= 0")
        if self.lock_granularity < 1:
            raise ValueError("lock_granularity must be >= 1")

    def with_(self, **changes: object) -> "SystemConfig":
        """Functional update (sweep helper)."""
        return replace(self, **changes)

    @property
    def effective_n_stacks(self) -> int:
        return self.n_stacks if self.n_stacks is not None else self.platform.n_processors


class NetworkProcessingSystem:
    """One fully wired simulation instance (single-use: build, run)."""

    def __init__(self, config: SystemConfig, *,
                 model: Optional[ExecutionTimeModel] = None) -> None:
        self.config = config
        self.costs = config.costs
        self.data_touching = config.data_touching
        self.fixed_overhead_us = config.fixed_overhead_us
        self.invariants = InvariantChecker() if config.check_invariants else None
        self.sim = Simulator(
            on_event=self.invariants.on_event if self.invariants else None
        )
        self.rngs = RandomStreams(config.seed)
        self.metrics = MetricsCollector(warmup_us=config.warmup_us)
        if model is not None:
            # Warm-state injection (the warm backend's affinity payoff):
            # an ExecutionTimeModel's only mutable state memoizes a pure
            # function of its construction parameters, so reusing one
            # across runs is bit-identical to building it fresh — but
            # *only* for the parameters it was built from.  Guard hard.
            if (model.costs != config.costs
                    or model.composition != config.composition
                    or model.hierarchy != config.platform.hierarchy):
                raise ValueError(
                    "injected ExecutionTimeModel was built from different "
                    "exec-model parameters than this config; reusing it "
                    "would be incorrect"
                )
            self.model = model
        else:
            self.model = ExecutionTimeModel(
                config.costs, config.composition, config.platform.hierarchy
            )
        refs_per_us = config.platform.references_per_us
        self.processors: List[ProcessorState] = [
            ProcessorState(p, refs_per_us, config.nonprotocol_intensity)
            for p in range(config.platform.n_processors)
        ]
        self.tracer = ExecutionTracer(self.model) if config.trace else None
        self.dispatcher = self._build_dispatcher()
        self._size_model = config.traffic.size_model
        self._sizes_rng = self.rngs.sizes
        # FixedSize.sample never touches its RNG, so the constant can be
        # hoisted out of the injection path without perturbing any
        # substream (None = sample the model per packet).
        self._fixed_size: Optional[int] = (
            self._size_model.size_bytes
            if type(self._size_model) is FixedSize else None
        )
        # Hot-path aliases for the per-packet injection sequence.
        self._dispatcher_on_arrival = self.dispatcher.on_arrival
        self._metrics_on_arrival = self.metrics.on_arrival
        self._at_record = self.sim.at_record
        self._duration_us = config.duration_us
        self._packet_counter = 0
        self._stream_counter = config.traffic.n_streams
        self.peak_concurrent_sessions = 0
        self._live_sessions = 0
        self._ran = False

    def _build_dispatcher(self) -> Union[LockingDispatcher, IPSDispatcher]:
        cfg = self.config
        if cfg.paradigm == "locking":
            policy = cfg.policy
            if isinstance(policy, str):
                policy = make_locking_policy(policy, **cfg.policy_kwargs)
            if not isinstance(policy, LockingPolicy):
                raise TypeError(
                    f"Locking paradigm needs a LockingPolicy, got {type(policy)!r}"
                )
            return LockingDispatcher(self, policy)
        policy = cfg.policy
        if isinstance(policy, str):
            policy = make_ips_policy(policy, **cfg.policy_kwargs)
        if not isinstance(policy, IPSPolicy):
            raise TypeError(f"IPS paradigm needs an IPSPolicy, got {type(policy)!r}")
        return IPSDispatcher(self, policy, cfg.effective_n_stacks)

    # ------------------------------------------------------------------
    # Arrival generation (pregenerated chunks, one pending event per
    # stream; see _ArrivalSource for the bit-identity argument)
    # ------------------------------------------------------------------
    @staticmethod
    def _chunk_hint(rate_pps: float, window_us: float) -> int:
        """Batches to pregenerate per refill: the expected count in the
        window plus slack, clamped to ``[_MIN_CHUNK, _MAX_CHUNK]``."""
        expected = rate_pps * max(0.0, window_us) * 1e-6
        if not (expected < _MAX_CHUNK):  # also catches inf/NaN rates
            return _MAX_CHUNK
        return max(_MIN_CHUNK, int(expected * 1.05) + 8)

    def _start_arrivals(self) -> None:
        for stream_id, spec in enumerate(self.config.traffic.stream_specs):
            process = spec.build(self.rngs.arrivals(stream_id))
            hint = self._chunk_hint(spec.mean_rate_pps, self.config.duration_us)
            self._add_source(stream_id, process, None, hint)
        if self.config.churn is not None:
            self._schedule_next_session()

    def _add_source(self, stream_id: int, process: ArrivalProcess,
                    end_us: Optional[float], chunk_hint: int) -> None:
        source = _ArrivalSource(stream_id, process, end_us, chunk_hint)
        source.record = Event(EVENT_ARRIVAL, self._arrival_fire, source)
        self._advance_arrivals(source)

    def _arrival_fire(self, source: _ArrivalSource) -> None:
        n = source.pending_size
        now = self.sim._now
        if n == 1:
            self._inject_packet(source.stream_id, now)
        else:
            for _ in range(n):
                self._inject_packet(source.stream_id, now)
        self._advance_arrivals(source)

    def _advance_arrivals(self, source: _ArrivalSource) -> None:
        """Consume the source's next pregenerated batch and schedule it.

        Mirrors, decision for decision, the historical draw-per-event
        ``_schedule_next_arrival``: the next gap is read (refilling the
        chunk when exhausted), arrivals past the horizon end the stream —
        with churned sessions accounting their departure — and otherwise
        the stream's reusable arrival record is pushed at the batch time.
        """
        idx = source.idx
        gaps = source.gaps
        if idx >= len(gaps):
            gaps, sizes = source.process.next_batches(source.chunk_hint)
            source.gaps = gaps
            source.sizes = sizes
            idx = 0
        sizes = source.sizes
        source.pending_size = 1 if sizes is None else sizes[idx]
        source.idx = idx + 1
        when = self.sim._now + gaps[idx]
        duration_us = self._duration_us
        end_us = source.end_us
        horizon_us = duration_us if end_us is None else min(end_us, duration_us)
        if when > horizon_us:
            if end_us is not None and when <= duration_us:
                # The churning stream died; account its departure.
                self._live_sessions -= 1
            return  # no further arrivals within the horizon
        self._at_record(when, source.record)

    # ------------------------------------------------------------------
    # Session churn (dynamic stream population)
    # ------------------------------------------------------------------
    def _schedule_next_session(self) -> None:
        churn = self.config.churn
        rng = self.rngs.get("sessions")
        gap_us = float(rng.exponential(1e6 / churn.sessions_per_second))
        when = self.sim.now + gap_us
        if when > self.config.duration_us:
            return
        self.sim.at_record(when, Event(EVENT_SESSION, self._session_fire, when))

    def _session_fire(self, when: float) -> None:
        self._open_session(when)
        self._schedule_next_session()

    def _open_session(self, now_us: float) -> None:
        churn = self.config.churn
        stream_id = self._stream_counter
        self._stream_counter += 1
        self._live_sessions += 1
        self.peak_concurrent_sessions = max(
            self.peak_concurrent_sessions, self._live_sessions
        )
        rng = self.rngs.arrivals(stream_id)
        lifetime_us = float(rng.exponential(churn.mean_lifetime_us))
        process = PoissonArrivals(churn.per_stream_rate_pps, rng)
        window_us = min(now_us + lifetime_us, self.config.duration_us) - now_us
        hint = self._chunk_hint(churn.per_stream_rate_pps, window_us)
        self._add_source(stream_id, process, now_us + lifetime_us, hint)

    def _inject_packet(self, stream_id: int, now: float) -> None:
        size = self._fixed_size
        if size is None:
            size = self._size_model.sample(self._sizes_rng)
        pid = self._packet_counter
        self._packet_counter = pid + 1
        packet = Packet(pid, stream_id, now, size)
        self._metrics_on_arrival(packet)
        if self.invariants is not None:
            self.invariants.on_arrival(packet, now)
        self._dispatcher_on_arrival(packet)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> SimulationSummary:
        """Execute the configured horizon and return the summary.

        Arrivals stop at the horizon; packets still queued or in service
        at that point are reported in ``final_backlog`` (a growing final
        backlog is the saturation signal used by capacity searches).
        """
        if self._ran:
            raise RuntimeError("a NetworkProcessingSystem instance is single-use")
        self._ran = True
        mode = batch.engine_mode()
        reason = "scalar engine forced" if mode == "scalar" else None
        if reason is None:
            reason = batch.unsupported_reason(self)
            if reason is None:
                batch.run_fused(self)
            elif mode == "batched":
                raise RuntimeError(
                    f"{batch.ENGINE_ENV}=batched was requested but this "
                    f"configuration is not supported by the fused core: "
                    f"{reason}"
                )
        if reason is not None:
            self._start_arrivals()
            self.sim.run_until(self.config.duration_us)
        if self.invariants is not None:
            self.invariants.at_end(
                self.metrics, self.dispatcher.queued(), self.processors,
                dispatcher_migrations=self.dispatcher.migrations,
            )
        duration_us = self.config.duration_us
        utilization = tuple(p.utilization(duration_us) for p in self.processors)
        offered = self.config.traffic.total_rate_pps
        if self.config.churn is not None:
            offered += self.config.churn.offered_rate_pps
        return self.metrics.summarize(
            duration_us=duration_us,
            utilization_per_proc=utilization,
            offered_rate_pps=offered,
            migrations=self.dispatcher.migrations,
        )


def run_simulation(config: SystemConfig, *,
                   model: Optional[ExecutionTimeModel] = None,
                   ) -> SimulationSummary:
    """Convenience wrapper: build and run in one call.

    ``model`` optionally injects a pre-built (warm)
    :class:`ExecutionTimeModel`; it is validated against the config and
    cannot change results (see :class:`NetworkProcessingSystem`).
    """
    return NetworkProcessingSystem(config, model=model).run()
