"""Top-level assembly: configure, run, summarize one simulation.

:class:`SystemConfig` captures every knob of a run (platform, costs,
paradigm, policy, traffic, non-protocol intensity ``V``, horizon, seed);
:class:`NetworkProcessingSystem` wires the engine, processors, model,
dispatcher and metrics together and exposes :meth:`run`.

Typical use (the library's main entry point)::

    from repro import SystemConfig, NetworkProcessingSystem, TrafficSpec

    cfg = SystemConfig(
        paradigm="locking",
        policy="mru",
        traffic=TrafficSpec.homogeneous_poisson(n_streams=8, total_rate_pps=12_000),
        nonprotocol_intensity=1.0,
        duration_us=2_000_000,
        seed=1,
    )
    summary = NetworkProcessingSystem(cfg).run()
    print(summary.mean_delay_us)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from ..core.exec_model import ExecutionTimeModel
from ..core.params import (
    PAPER_COMPOSITION,
    PAPER_COSTS,
    FootprintComposition,
    PlatformConfig,
    ProtocolCosts,
)
from ..core.policies import (
    IPSPolicy,
    LockingPolicy,
    make_ips_policy,
    make_locking_policy,
)
from ..verify.invariants import InvariantChecker
from ..workloads.arrivals import ArrivalProcess, PoissonArrivals
from ..workloads.sessions import SessionChurnSpec
from ..workloads.traffic import TrafficSpec
from .dispatch import IPSDispatcher, LockingDispatcher
from .engine import Simulator
from .entities import Packet, ProcessorState
from .metrics import MetricsCollector, SimulationSummary
from .rng import RandomStreams
from .trace import ExecutionTracer

__all__ = ["SystemConfig", "NetworkProcessingSystem", "run_simulation"]

PARADIGMS = ("locking", "ips")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulation run.

    ``policy`` may be a registry name (see
    :data:`repro.core.policies.LOCKING_POLICIES` /
    :data:`~repro.core.policies.IPS_POLICIES`) or a ready policy instance;
    ``policy_kwargs`` are forwarded to the registry factory.

    ``nonprotocol_intensity`` is the displacing memory-reference
    intensity of the non-protocol workload that absorbs idle processor
    time (0 = no displacement; 1 = the full platform reference rate).

    ``fixed_overhead_us`` is the paper's ``V``: a fixed, cache-independent
    per-packet overhead added to every service (the V-family curves of
    Figures 10/11; checksumming a maximal 4432 B FDDI payload corresponds
    to V ≈ 139 µs).

    ``lock_granularity`` selects the Locking paradigm's lock structure:
    1 = one coarse stack lock (default); k > 1 = per-layer locks the
    packet pipelines through (the granularity dimension of ref [3]),
    raising the serialization ceiling from ``1/cs`` to ``k/cs``.

    ``churn`` adds a dynamic stream population on top of the base
    traffic (streams open/close as a birth-death process; see
    :class:`repro.workloads.SessionChurnSpec`) — used to test the
    abstract's "greater number of concurrent streams" claim.

    ``check_invariants`` wires an online
    :class:`~repro.verify.invariants.InvariantChecker` through the engine,
    dispatchers and locks; the run raises
    :class:`~repro.verify.invariants.InvariantViolation` at the first
    violated invariant.  Like ``trace``, it is pure observability: it can
    never change simulation results (and is therefore excluded from the
    result-cache content key).
    """

    traffic: TrafficSpec
    paradigm: str = "locking"
    policy: Union[str, LockingPolicy, IPSPolicy] = "mru"
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    costs: ProtocolCosts = PAPER_COSTS
    composition: FootprintComposition = PAPER_COMPOSITION
    nonprotocol_intensity: float = 1.0
    n_stacks: Optional[int] = None
    churn: Optional[SessionChurnSpec] = None
    data_touching: bool = False
    fixed_overhead_us: float = 0.0
    lock_granularity: int = 1
    trace: bool = False
    check_invariants: bool = False
    duration_us: float = 2_000_000.0
    warmup_us: float = 200_000.0
    seed: int = 1
    policy_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.paradigm not in PARADIGMS:
            raise ValueError(f"paradigm must be one of {PARADIGMS}, got {self.paradigm!r}")
        if self.nonprotocol_intensity < 0:
            raise ValueError("nonprotocol_intensity (V) must be >= 0")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if not (0.0 <= self.warmup_us < self.duration_us):
            raise ValueError("need 0 <= warmup_us < duration_us")
        if self.n_stacks is not None and self.n_stacks < 1:
            raise ValueError("n_stacks must be >= 1")
        if self.fixed_overhead_us < 0:
            raise ValueError("fixed_overhead_us (V) must be >= 0")
        if self.lock_granularity < 1:
            raise ValueError("lock_granularity must be >= 1")

    def with_(self, **changes: object) -> "SystemConfig":
        """Functional update (sweep helper)."""
        return replace(self, **changes)

    @property
    def effective_n_stacks(self) -> int:
        return self.n_stacks if self.n_stacks is not None else self.platform.n_processors


class NetworkProcessingSystem:
    """One fully wired simulation instance (single-use: build, run)."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.costs = config.costs
        self.data_touching = config.data_touching
        self.fixed_overhead_us = config.fixed_overhead_us
        self.invariants = InvariantChecker() if config.check_invariants else None
        self.sim = Simulator(
            on_event=self.invariants.on_event if self.invariants else None
        )
        self.rngs = RandomStreams(config.seed)
        self.metrics = MetricsCollector(warmup_us=config.warmup_us)
        self.model = ExecutionTimeModel(
            config.costs, config.composition, config.platform.hierarchy
        )
        refs_per_us = config.platform.references_per_us
        self.processors: List[ProcessorState] = [
            ProcessorState(p, refs_per_us, config.nonprotocol_intensity)
            for p in range(config.platform.n_processors)
        ]
        self.tracer = ExecutionTracer(self.model) if config.trace else None
        self.dispatcher = self._build_dispatcher()
        self._packet_counter = 0
        self._stream_counter = config.traffic.n_streams
        self.peak_concurrent_sessions = 0
        self._live_sessions = 0
        self._ran = False

    def _build_dispatcher(self) -> Union[LockingDispatcher, IPSDispatcher]:
        cfg = self.config
        if cfg.paradigm == "locking":
            policy = cfg.policy
            if isinstance(policy, str):
                policy = make_locking_policy(policy, **cfg.policy_kwargs)
            if not isinstance(policy, LockingPolicy):
                raise TypeError(
                    f"Locking paradigm needs a LockingPolicy, got {type(policy)!r}"
                )
            return LockingDispatcher(self, policy)
        policy = cfg.policy
        if isinstance(policy, str):
            policy = make_ips_policy(policy, **cfg.policy_kwargs)
        if not isinstance(policy, IPSPolicy):
            raise TypeError(f"IPS paradigm needs an IPSPolicy, got {type(policy)!r}")
        return IPSDispatcher(self, policy, cfg.effective_n_stacks)

    # ------------------------------------------------------------------
    # Arrival generation (event-driven, one pending event per stream)
    # ------------------------------------------------------------------
    def _start_arrivals(self) -> None:
        for stream_id, spec in enumerate(self.config.traffic.stream_specs):
            process = spec.build(self.rngs.arrivals(stream_id))
            self._schedule_next_arrival(stream_id, process)
        if self.config.churn is not None:
            self._schedule_next_session()

    def _schedule_next_arrival(self, stream_id: int, process: ArrivalProcess,
                               end_us: Optional[float] = None) -> None:
        horizon_us = self.config.duration_us if end_us is None else min(
            end_us, self.config.duration_us
        )
        gap_us, batch = process.next_batch()
        when = self.sim.now + gap_us
        if when > horizon_us:
            if end_us is not None and when <= self.config.duration_us:
                # The churning stream died; account its departure.
                self._live_sessions -= 1
            return  # no further arrivals within the horizon
        def fire() -> None:
            for _ in range(batch):
                self._inject_packet(stream_id)
            self._schedule_next_arrival(stream_id, process, end_us)
        self.sim.at(when, fire)

    # ------------------------------------------------------------------
    # Session churn (dynamic stream population)
    # ------------------------------------------------------------------
    def _schedule_next_session(self) -> None:
        churn = self.config.churn
        rng = self.rngs.get("sessions")
        gap_us = float(rng.exponential(1e6 / churn.sessions_per_second))
        when = self.sim.now + gap_us
        if when > self.config.duration_us:
            return
        def fire() -> None:
            self._open_session(when)
            self._schedule_next_session()
        self.sim.at(when, fire)

    def _open_session(self, now_us: float) -> None:
        churn = self.config.churn
        stream_id = self._stream_counter
        self._stream_counter += 1
        self._live_sessions += 1
        self.peak_concurrent_sessions = max(
            self.peak_concurrent_sessions, self._live_sessions
        )
        rng = self.rngs.arrivals(stream_id)
        lifetime_us = float(rng.exponential(churn.mean_lifetime_us))
        process = PoissonArrivals(churn.per_stream_rate_pps, rng)
        self._schedule_next_arrival(stream_id, process,
                                    end_us=now_us + lifetime_us)

    def _inject_packet(self, stream_id: int) -> None:
        size = self.config.traffic.size_model.sample(self.rngs.sizes)
        packet = Packet(
            packet_id=self._packet_counter,
            stream_id=stream_id,
            arrival_us=self.sim.now,
            size_bytes=size,
        )
        self._packet_counter += 1
        self.metrics.on_arrival(packet)
        if self.invariants is not None:
            self.invariants.on_arrival(packet, self.sim.now)
        self.dispatcher.on_arrival(packet)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> SimulationSummary:
        """Execute the configured horizon and return the summary.

        Arrivals stop at the horizon; packets still queued or in service
        at that point are reported in ``final_backlog`` (a growing final
        backlog is the saturation signal used by capacity searches).
        """
        if self._ran:
            raise RuntimeError("a NetworkProcessingSystem instance is single-use")
        self._ran = True
        self._start_arrivals()
        self.sim.run_until(self.config.duration_us)
        if self.invariants is not None:
            self.invariants.at_end(
                self.metrics, self.dispatcher.queued(), self.processors
            )
        duration_us = self.config.duration_us
        utilization = tuple(p.utilization(duration_us) for p in self.processors)
        offered = self.config.traffic.total_rate_pps
        if self.config.churn is not None:
            offered += self.config.churn.offered_rate_pps
        return self.metrics.summarize(
            duration_us=duration_us,
            utilization_per_proc=utilization,
            offered_rate_pps=offered,
        )


def run_simulation(config: SystemConfig) -> SimulationSummary:
    """Convenience wrapper: build and run in one call."""
    return NetworkProcessingSystem(config).run()
