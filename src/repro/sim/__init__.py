"""Discrete-event multiprocessor simulation of parallel protocol processing.

The simulation model of the paper's Section 3.1: N processors, protocol
threads, per-stream packet arrivals, a displacing non-protocol workload,
and pluggable affinity scheduling policies under the Locking and IPS
parallelization paradigms.  Packet service times are produced by the
analytic execution-time model driven by each processor's cache-state
history.
"""

from .dispatch import BaseDispatcher, IPSDispatcher, LockingDispatcher
from .engine import SimulationError, Simulator
from .entities import Packet, ProcessorState, ThreadPool
from .locks import LayeredLocks, SerialLock
from .metrics import MetricsCollector, PacketRecord, SimulationSummary
from .rng import RandomStreams
from .system import NetworkProcessingSystem, SystemConfig, run_simulation
from .trace import ExecutionTracer, ServiceTraceRecord

__all__ = [
    "BaseDispatcher",
    "IPSDispatcher",
    "LockingDispatcher",
    "MetricsCollector",
    "NetworkProcessingSystem",
    "Packet",
    "PacketRecord",
    "ProcessorState",
    "RandomStreams",
    "LayeredLocks",
    "SerialLock",
    "SimulationError",
    "SimulationSummary",
    "Simulator",
    "ExecutionTracer",
    "ServiceTraceRecord",
    "SystemConfig",
    "ThreadPool",
    "run_simulation",
]
