"""Metrics collection: per-packet records, summaries, batch-means CIs.

The paper's principal response metric is **mean packet delay** (arrival to
completion of protocol processing) as a function of packet arrival rate;
secondary metrics are throughput capacity, per-processor utilization, and
lock contention.  This module records every completed packet (after a
warm-up cutoff), computes summary statistics, and estimates confidence
intervals with the method of non-overlapping batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import batch_means_ci
from .entities import Packet

__all__ = ["PacketRecord", "MetricsCollector", "SimulationSummary"]

#: RPR010 coverage ledger: summary-table keys (from ``row()`` /
#: ``reordering_row()``) that no golden field pins, mapped to the reason
#: they stay unpinned.  Anything produced but neither golden-covered nor
#: listed here is an unchecked metric and fails lint.
_GOLDEN_UNCOVERED_KEYS = {
    "n_packets": (
        "redundant with throughput_pps x duration; goldens pin the rate"
    ),
    "mean_queueing_us": (
        "derived as mean_delay - mean_exec, both of which are "
        "golden-pinned; pinning the difference would double-count noise"
    ),
    "p95_delay_us": (
        "tail percentile is too seed-sensitive at golden run lengths; "
        "the mean and throughput pin the distribution's mass"
    ),
    "utilization": (
        "algebraically determined by throughput_pps and mean_exec_us "
        "(both pinned) and the processor count"
    ),
}


@dataclass(frozen=True)
class PacketRecord:
    """Immutable snapshot of one completed packet."""

    stream_id: int
    arrival_us: float
    service_start_us: float
    completion_us: float
    exec_time_us: float
    lock_wait_us: float
    processor_id: int

    @property
    def delay_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        return self.service_start_us - self.arrival_us


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated results of one simulation run."""

    n_packets: int
    duration_us: float
    mean_delay_us: float
    delay_ci_us: Tuple[float, float]
    mean_queueing_us: float
    mean_exec_us: float
    mean_lock_wait_us: float
    p50_delay_us: float
    p95_delay_us: float
    p99_delay_us: float
    throughput_pps: float
    offered_rate_pps: float
    utilization_per_proc: Tuple[float, ...]
    max_backlog: int
    final_backlog: int
    per_stream_mean_delay_us: Dict[int, float] = field(default_factory=dict)
    # Reordering metrics (defaulted: summaries predating the policy zoo —
    # e.g. cached pickles — still unpickle and compare cleanly).
    out_of_order_total: int = 0
    migrations_total: int = 0
    ooo_depth_counts: Dict[int, int] = field(default_factory=dict)
    per_stream_out_of_order: Dict[int, int] = field(default_factory=dict)
    per_stream_migrations: Dict[int, int] = field(default_factory=dict)

    @property
    def reordered_fraction(self) -> float:
        """Share of recorded packets completing out of order."""
        return self.out_of_order_total / self.n_packets if self.n_packets else 0.0

    @property
    def max_ooo_depth(self) -> int:
        """Deepest sequence gap observed (0 = fully in order)."""
        return max(self.ooo_depth_counts) if self.ooo_depth_counts else 0

    def reordering_row(self) -> Dict[str, float]:
        """Flat dict of the reordering metrics for table assembly.

        Kept separate from :meth:`row` so existing golden tables keep
        their exact column set.
        """
        return {
            "out_of_order": self.out_of_order_total,
            "ooo_fraction": self.reordered_fraction,
            "max_ooo_depth": self.max_ooo_depth,
            "migrations": self.migrations_total,
        }

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization_per_proc)) if self.utilization_per_proc else 0.0

    @property
    def stable(self) -> bool:
        """Heuristic stability check: the run is considered saturated if
        work was still piling up at the end (final backlog comparable to
        everything ever queued) — used by capacity searches."""
        return self.final_backlog <= max(50, 0.02 * self.n_packets)

    def row(self) -> Dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "n_packets": self.n_packets,
            "mean_delay_us": self.mean_delay_us,
            "mean_queueing_us": self.mean_queueing_us,
            "mean_exec_us": self.mean_exec_us,
            "p95_delay_us": self.p95_delay_us,
            "throughput_pps": self.throughput_pps,
            "utilization": self.mean_utilization,
        }


class MetricsCollector:
    """Accumulates packet records and produces a summary.

    Packets completing before ``warmup_us`` are discarded (transient
    removal); the arrival counter still includes them so offered load is
    reported exactly.

    Storage is columnar with a block-flushed staging buffer: the
    per-completion hot path appends one plain row tuple to a small block
    (a :class:`PacketRecord` costs ~7 slow frozen-dataclass
    ``__setattr__`` calls; a tuple build plus one append costs two), and
    every :data:`_BLOCK_ROWS` completions the block is transposed into
    seven parallel column lists in one ``zip(*block)`` pass.  The batched
    engine bypasses the staging buffer entirely via
    :meth:`extend_columns`.  :meth:`summarize` reads the columns straight
    into its NumPy arrays; the :attr:`records` view materializes record
    objects lazily for analysis and tests.
    """

    #: Column layout (must match PacketRecord field order).
    _ROW_FIELDS = (
        "stream_id", "arrival_us", "service_start_us", "completion_us",
        "exec_time_us", "lock_wait_us", "processor_id",
    )

    #: Staging-block flush threshold (rows).
    _BLOCK_ROWS = 4096

    def __init__(self, warmup_us: float = 0.0) -> None:
        if warmup_us < 0:
            raise ValueError("warmup_us must be non-negative")
        self.warmup_us = warmup_us
        # Columnar store (flushed) + row-tuple staging block (hot appends).
        self._col_stream: List[int] = []
        self._col_arrival: List[float] = []
        self._col_start: List[float] = []
        self._col_completion: List[float] = []
        self._col_exec: List[float] = []
        self._col_lock_wait: List[float] = []
        self._col_proc: List[int] = []
        self._block: List[Tuple[int, float, float, float, float, float, int]] = []
        # Bound append: the completion hot path calls this once per packet
        # (the list is never rebound; flushes clear it in place).
        self._append_row = self._block.append
        self._records_cache: Optional[List[PacketRecord]] = None
        self.arrivals: int = 0
        self.completions: int = 0
        self.max_backlog: int = 0
        self._backlog: int = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        self.arrivals += 1
        self._backlog += 1
        if self._backlog > self.max_backlog:
            self.max_backlog = self._backlog

    def on_completion(self, packet: Packet) -> None:
        self.completions += 1
        self._backlog -= 1
        completion_us = packet.completion_us
        if completion_us >= self.warmup_us:
            self._append_row((
                packet.stream_id,
                packet.arrival_us,
                packet.service_start_us,
                completion_us,
                packet.exec_time_us,
                packet.lock_wait_us,
                packet.processor_id,
            ))
            if len(self._block) >= self._BLOCK_ROWS:
                self._flush_block()

    def _flush_block(self) -> None:
        """Transpose the staging block into the column lists."""
        block = self._block
        if not block:
            return
        (stream, arrival, start, completion, exec_, lock_wait_us, proc) = zip(*block)
        self._col_stream.extend(stream)
        self._col_arrival.extend(arrival)
        self._col_start.extend(start)
        self._col_completion.extend(completion)
        self._col_exec.extend(exec_)
        self._col_lock_wait.extend(lock_wait_us)
        self._col_proc.extend(proc)
        block.clear()

    # ------------------------------------------------------------------
    # Batched-engine hooks
    # ------------------------------------------------------------------
    def extend_columns(
        self,
        stream_ids: Sequence[int],
        arrivals_us: Sequence[float],
        starts_us: Sequence[float],
        completions_us: Sequence[float],
        execs_us: Sequence[float],
        lock_waits_us: Sequence[float],
        proc_ids: Sequence[int],
    ) -> None:
        """Append one block of already-filtered completion rows.

        Used by the batched engine, which accumulates post-warmup rows in
        its own column buffers and flushes them here in one call.  Callers
        are responsible for warmup filtering and for folding the
        ``arrivals``/``completions``/backlog counters separately.
        """
        self._flush_block()
        self._col_stream.extend(stream_ids)
        self._col_arrival.extend(arrivals_us)
        self._col_start.extend(starts_us)
        self._col_completion.extend(completions_us)
        self._col_exec.extend(execs_us)
        self._col_lock_wait.extend(lock_waits_us)
        self._col_proc.extend(proc_ids)

    def fold_batch_counts(
        self, n_arrivals: int, n_completions: int,
        backlog: int, max_backlog: int,
    ) -> None:
        """Fold externally tracked counters (batched engine: arrivals,
        completions and the backlog high-water mark are tracked as loop
        locals, not via per-packet hook calls)."""
        self.arrivals += n_arrivals
        self.completions += n_completions
        self._backlog = backlog
        if max_backlog > self.max_backlog:
            self.max_backlog = max_backlog

    @property
    def n_recorded(self) -> int:
        """Post-warmup completion rows recorded so far."""
        return len(self._col_stream) + len(self._block)

    @property
    def records(self) -> List[PacketRecord]:
        """Per-packet records (lazily materialized from the columns).

        Columns are append-only, so a stale cache is detected by length
        alone — the hot completion path never touches the cache.
        """
        self._flush_block()
        cache = self._records_cache
        if cache is None or len(cache) != len(self._col_stream):
            self._records_cache = [
                PacketRecord(*row) for row in zip(
                    self._col_stream, self._col_arrival, self._col_start,
                    self._col_completion, self._col_exec,
                    self._col_lock_wait, self._col_proc,
                )
            ]
        return self._records_cache

    @property
    def backlog(self) -> int:
        """Packets arrived but not yet completed."""
        return self._backlog

    @property
    def in_flight(self) -> int:
        """Alias of :attr:`backlog`: the quantity conserved by the
        ``arrivals == completions + in-flight`` invariant
        (:mod:`repro.verify.invariants` cross-checks it at end of run)."""
        return self._backlog

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summarize(
        self,
        duration_us: float,
        utilization_per_proc: Tuple[float, ...],
        offered_rate_pps: float,
        n_batches: int = 20,
        migrations: Optional[int] = None,
    ) -> SimulationSummary:
        """Build the run summary (delays in µs, rates in packets/second).

        ``migrations`` is the engine-counted stream-migration total
        (dispatches whose processor differs from the stream's previous
        one, warmup included).  When ``None`` it falls back to the count
        reconstructed from the recorded (post-warmup) rows.

        Reordering is computed from the recorded columns, whose row order
        is completion order in both engines — so the metrics agree across
        engines by construction.  A packet's *sequence number* is its
        arrival rank within its stream (ties rank in completion order, so
        simultaneous batch arrivals never count as reordered); a packet is
        **out of order** when a later sequence number of the same stream
        already completed, and its **depth** is the TCP-reassembly-style
        gap ``max(seq already completed) - seq`` (Wu et al.'s Flow
        Director pathology measure).
        """
        self._flush_block()
        if not self._col_stream:
            nan = math.nan
            return SimulationSummary(
                n_packets=0, duration_us=duration_us, mean_delay_us=nan,
                delay_ci_us=(nan, nan), mean_queueing_us=nan, mean_exec_us=nan,
                mean_lock_wait_us=nan, p50_delay_us=nan, p95_delay_us=nan,
                p99_delay_us=nan, throughput_pps=0.0,
                offered_rate_pps=offered_rate_pps,
                utilization_per_proc=utilization_per_proc,
                max_backlog=self.max_backlog, final_backlog=self._backlog,
            )
        # Elementwise float64 subtraction equals the historical per-record
        # Python-float subtraction bit for bit (both are IEEE doubles).
        arrivals_us = np.array(self._col_arrival)
        delays_us = np.array(self._col_completion) - arrivals_us
        queueing_us = np.array(self._col_start) - arrivals_us
        execs = np.array(self._col_exec)
        lock_waits_us = np.array(self._col_lock_wait)
        mean_delay_us = float(delays_us.mean())
        # One shared sort/partition for all three quantiles; each result
        # equals the corresponding single-quantile call bit for bit.
        p50, p95, p99 = np.percentile(delays_us, (50.0, 95.0, 99.0))
        ci = batch_means_ci(delays_us, n_batches=n_batches)
        measured_span = duration_us - self.warmup_us
        throughput_pps = len(delays_us) / measured_span * 1e6 if measured_span > 0 else 0.0
        per_stream: Dict[int, float] = {}
        stream_ids = np.array(self._col_stream)
        for sid in np.unique(stream_ids):
            per_stream[int(sid)] = float(delays_us[stream_ids == sid].mean())
        (ooo_total, depth_counts, per_stream_ooo,
         row_migrations, per_stream_mig) = self._reordering(
            stream_ids, arrivals_us,
            np.array(self._col_start), np.array(self._col_proc),
        )
        return SimulationSummary(
            n_packets=len(delays_us),
            duration_us=duration_us,
            mean_delay_us=mean_delay_us,
            delay_ci_us=ci,
            mean_queueing_us=float(queueing_us.mean()),
            mean_exec_us=float(execs.mean()),
            mean_lock_wait_us=float(lock_waits_us.mean()),
            p50_delay_us=float(p50),
            p95_delay_us=float(p95),
            p99_delay_us=float(p99),
            throughput_pps=throughput_pps,
            offered_rate_pps=offered_rate_pps,
            utilization_per_proc=utilization_per_proc,
            max_backlog=self.max_backlog,
            final_backlog=self._backlog,
            per_stream_mean_delay_us=per_stream,
            out_of_order_total=ooo_total,
            migrations_total=row_migrations if migrations is None else migrations,
            ooo_depth_counts=depth_counts,
            per_stream_out_of_order=per_stream_ooo,
            per_stream_migrations=per_stream_mig,
        )

    @staticmethod
    def _reordering(
        stream_ids: np.ndarray,
        arrivals_us: np.ndarray,
        starts_us: np.ndarray,
        proc_ids: np.ndarray,
    ) -> Tuple[int, Dict[int, int], Dict[int, int], int, Dict[int, int]]:
        """Vectorized reordering/migration metrics over the recorded rows.

        Row index is completion order (both engines append rows in
        completion-event firing order), so "already completed" is simply
        "earlier row".  Fully NumPy — no per-row Python loop — to keep
        :meth:`summarize` out of the hot-path benchmark's way.

        Returns ``(out_of_order_total, depth_counts, per_stream_ooo,
        migrations_total, per_stream_migrations)``; the per-stream dicts
        hold only nonzero entries.
        """
        n = len(stream_ids)
        if n == 0:
            return 0, {}, {}, 0, {}
        # --- sequence numbers: arrival rank within stream -------------
        # Stable sort by arrival (ties keep completion order), then a
        # stable group-by-stream on top: rows end up grouped per stream,
        # arrival-ordered within the group.
        by_arrival = np.argsort(arrivals_us, kind="stable")
        ga = by_arrival[np.argsort(stream_ids[by_arrival], kind="stable")]
        streams_a = stream_ids[ga]
        new_group_a = np.empty(n, dtype=bool)
        new_group_a[0] = True
        np.not_equal(streams_a[1:], streams_a[:-1], out=new_group_a[1:])
        group_start = np.maximum.accumulate(
            np.where(new_group_a, np.arange(n), 0)
        )
        seq = np.empty(n, dtype=np.int64)
        seq[ga] = np.arange(n) - group_start
        # --- out-of-order depth in completion order -------------------
        # Stable group-by-stream of the original (completion-ordered)
        # rows, then a segmented running max of seq: offsetting each
        # group by group_index * n makes one global maximum.accumulate
        # respect the group boundaries (n > every seq value).
        gc = np.argsort(stream_ids, kind="stable")
        streams_c = stream_ids[gc]
        seq_c = seq[gc]
        new_group_c = np.empty(n, dtype=bool)
        new_group_c[0] = True
        np.not_equal(streams_c[1:], streams_c[:-1], out=new_group_c[1:])
        group_idx = np.cumsum(new_group_c) - 1
        run_max = (
            np.maximum.accumulate(seq_c + group_idx * n) - group_idx * n
        )
        # Exclusive running max: the packet itself excluded; a group's
        # first packet can never be late.
        prev_max = np.empty(n, dtype=np.int64)
        prev_max[1:] = run_max[:-1]
        prev_max[new_group_c] = seq_c[new_group_c]
        depth_c = prev_max - seq_c  # > 0 iff out of order
        late = depth_c > 0
        ooo_total = int(np.count_nonzero(late))
        depth_counts: Dict[int, int] = {}
        per_stream_ooo: Dict[int, int] = {}
        if ooo_total:
            for d, c in zip(*np.unique(depth_c[late], return_counts=True)):
                depth_counts[int(d)] = int(c)
            for s, c in zip(*np.unique(streams_c[late], return_counts=True)):
                per_stream_ooo[int(s)] = int(c)
        # --- migrations: processor changes in service-start order -----
        by_start = np.argsort(starts_us, kind="stable")
        gs = by_start[np.argsort(stream_ids[by_start], kind="stable")]
        streams_s = stream_ids[gs]
        procs_s = proc_ids[gs]
        same_stream = streams_s[1:] == streams_s[:-1]
        moved = same_stream & (procs_s[1:] != procs_s[:-1])
        migrations_total = int(np.count_nonzero(moved))
        per_stream_mig: Dict[int, int] = {}
        if migrations_total:
            for s, c in zip(*np.unique(streams_s[1:][moved], return_counts=True)):
                per_stream_mig[int(s)] = int(c)
        return ooo_total, depth_counts, per_stream_ooo, migrations_total, per_stream_mig
