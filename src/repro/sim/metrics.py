"""Metrics collection: per-packet records, summaries, batch-means CIs.

The paper's principal response metric is **mean packet delay** (arrival to
completion of protocol processing) as a function of packet arrival rate;
secondary metrics are throughput capacity, per-processor utilization, and
lock contention.  This module records every completed packet (after a
warm-up cutoff), computes summary statistics, and estimates confidence
intervals with the method of non-overlapping batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import batch_means_ci
from .entities import Packet

__all__ = ["PacketRecord", "MetricsCollector", "SimulationSummary"]


@dataclass(frozen=True)
class PacketRecord:
    """Immutable snapshot of one completed packet."""

    stream_id: int
    arrival_us: float
    service_start_us: float
    completion_us: float
    exec_time_us: float
    lock_wait_us: float
    processor_id: int

    @property
    def delay_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        return self.service_start_us - self.arrival_us


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated results of one simulation run."""

    n_packets: int
    duration_us: float
    mean_delay_us: float
    delay_ci_us: Tuple[float, float]
    mean_queueing_us: float
    mean_exec_us: float
    mean_lock_wait_us: float
    p50_delay_us: float
    p95_delay_us: float
    p99_delay_us: float
    throughput_pps: float
    offered_rate_pps: float
    utilization_per_proc: Tuple[float, ...]
    max_backlog: int
    final_backlog: int
    per_stream_mean_delay_us: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization_per_proc)) if self.utilization_per_proc else 0.0

    @property
    def stable(self) -> bool:
        """Heuristic stability check: the run is considered saturated if
        work was still piling up at the end (final backlog comparable to
        everything ever queued) — used by capacity searches."""
        return self.final_backlog <= max(50, 0.02 * self.n_packets)

    def row(self) -> Dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "n_packets": self.n_packets,
            "mean_delay_us": self.mean_delay_us,
            "mean_queueing_us": self.mean_queueing_us,
            "mean_exec_us": self.mean_exec_us,
            "p95_delay_us": self.p95_delay_us,
            "throughput_pps": self.throughput_pps,
            "utilization": self.mean_utilization,
        }


class MetricsCollector:
    """Accumulates packet records and produces a summary.

    Packets completing before ``warmup_us`` are discarded (transient
    removal); the arrival counter still includes them so offered load is
    reported exactly.

    Storage is columnar with a block-flushed staging buffer: the
    per-completion hot path appends one plain row tuple to a small block
    (a :class:`PacketRecord` costs ~7 slow frozen-dataclass
    ``__setattr__`` calls; a tuple build plus one append costs two), and
    every :data:`_BLOCK_ROWS` completions the block is transposed into
    seven parallel column lists in one ``zip(*block)`` pass.  The batched
    engine bypasses the staging buffer entirely via
    :meth:`extend_columns`.  :meth:`summarize` reads the columns straight
    into its NumPy arrays; the :attr:`records` view materializes record
    objects lazily for analysis and tests.
    """

    #: Column layout (must match PacketRecord field order).
    _ROW_FIELDS = (
        "stream_id", "arrival_us", "service_start_us", "completion_us",
        "exec_time_us", "lock_wait_us", "processor_id",
    )

    #: Staging-block flush threshold (rows).
    _BLOCK_ROWS = 4096

    def __init__(self, warmup_us: float = 0.0) -> None:
        if warmup_us < 0:
            raise ValueError("warmup_us must be non-negative")
        self.warmup_us = warmup_us
        # Columnar store (flushed) + row-tuple staging block (hot appends).
        self._col_stream: List[int] = []
        self._col_arrival: List[float] = []
        self._col_start: List[float] = []
        self._col_completion: List[float] = []
        self._col_exec: List[float] = []
        self._col_lock_wait: List[float] = []
        self._col_proc: List[int] = []
        self._block: List[Tuple[int, float, float, float, float, float, int]] = []
        # Bound append: the completion hot path calls this once per packet
        # (the list is never rebound; flushes clear it in place).
        self._append_row = self._block.append
        self._records_cache: Optional[List[PacketRecord]] = None
        self.arrivals: int = 0
        self.completions: int = 0
        self.max_backlog: int = 0
        self._backlog: int = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        self.arrivals += 1
        self._backlog += 1
        if self._backlog > self.max_backlog:
            self.max_backlog = self._backlog

    def on_completion(self, packet: Packet) -> None:
        self.completions += 1
        self._backlog -= 1
        completion_us = packet.completion_us
        if completion_us >= self.warmup_us:
            self._append_row((
                packet.stream_id,
                packet.arrival_us,
                packet.service_start_us,
                completion_us,
                packet.exec_time_us,
                packet.lock_wait_us,
                packet.processor_id,
            ))
            if len(self._block) >= self._BLOCK_ROWS:
                self._flush_block()

    def _flush_block(self) -> None:
        """Transpose the staging block into the column lists."""
        block = self._block
        if not block:
            return
        (stream, arrival, start, completion, exec_, lock_wait_us, proc) = zip(*block)
        self._col_stream.extend(stream)
        self._col_arrival.extend(arrival)
        self._col_start.extend(start)
        self._col_completion.extend(completion)
        self._col_exec.extend(exec_)
        self._col_lock_wait.extend(lock_wait_us)
        self._col_proc.extend(proc)
        block.clear()

    # ------------------------------------------------------------------
    # Batched-engine hooks
    # ------------------------------------------------------------------
    def extend_columns(
        self,
        stream_ids: Sequence[int],
        arrivals_us: Sequence[float],
        starts_us: Sequence[float],
        completions_us: Sequence[float],
        execs_us: Sequence[float],
        lock_waits_us: Sequence[float],
        proc_ids: Sequence[int],
    ) -> None:
        """Append one block of already-filtered completion rows.

        Used by the batched engine, which accumulates post-warmup rows in
        its own column buffers and flushes them here in one call.  Callers
        are responsible for warmup filtering and for folding the
        ``arrivals``/``completions``/backlog counters separately.
        """
        self._flush_block()
        self._col_stream.extend(stream_ids)
        self._col_arrival.extend(arrivals_us)
        self._col_start.extend(starts_us)
        self._col_completion.extend(completions_us)
        self._col_exec.extend(execs_us)
        self._col_lock_wait.extend(lock_waits_us)
        self._col_proc.extend(proc_ids)

    def fold_batch_counts(
        self, n_arrivals: int, n_completions: int,
        backlog: int, max_backlog: int,
    ) -> None:
        """Fold externally tracked counters (batched engine: arrivals,
        completions and the backlog high-water mark are tracked as loop
        locals, not via per-packet hook calls)."""
        self.arrivals += n_arrivals
        self.completions += n_completions
        self._backlog = backlog
        if max_backlog > self.max_backlog:
            self.max_backlog = max_backlog

    @property
    def n_recorded(self) -> int:
        """Post-warmup completion rows recorded so far."""
        return len(self._col_stream) + len(self._block)

    @property
    def records(self) -> List[PacketRecord]:
        """Per-packet records (lazily materialized from the columns).

        Columns are append-only, so a stale cache is detected by length
        alone — the hot completion path never touches the cache.
        """
        self._flush_block()
        cache = self._records_cache
        if cache is None or len(cache) != len(self._col_stream):
            self._records_cache = [
                PacketRecord(*row) for row in zip(
                    self._col_stream, self._col_arrival, self._col_start,
                    self._col_completion, self._col_exec,
                    self._col_lock_wait, self._col_proc,
                )
            ]
        return self._records_cache

    @property
    def backlog(self) -> int:
        """Packets arrived but not yet completed."""
        return self._backlog

    @property
    def in_flight(self) -> int:
        """Alias of :attr:`backlog`: the quantity conserved by the
        ``arrivals == completions + in-flight`` invariant
        (:mod:`repro.verify.invariants` cross-checks it at end of run)."""
        return self._backlog

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summarize(
        self,
        duration_us: float,
        utilization_per_proc: Tuple[float, ...],
        offered_rate_pps: float,
        n_batches: int = 20,
    ) -> SimulationSummary:
        """Build the run summary (delays in µs, rates in packets/second)."""
        self._flush_block()
        if not self._col_stream:
            nan = math.nan
            return SimulationSummary(
                n_packets=0, duration_us=duration_us, mean_delay_us=nan,
                delay_ci_us=(nan, nan), mean_queueing_us=nan, mean_exec_us=nan,
                mean_lock_wait_us=nan, p50_delay_us=nan, p95_delay_us=nan,
                p99_delay_us=nan, throughput_pps=0.0,
                offered_rate_pps=offered_rate_pps,
                utilization_per_proc=utilization_per_proc,
                max_backlog=self.max_backlog, final_backlog=self._backlog,
            )
        # Elementwise float64 subtraction equals the historical per-record
        # Python-float subtraction bit for bit (both are IEEE doubles).
        arrivals_us = np.array(self._col_arrival)
        delays_us = np.array(self._col_completion) - arrivals_us
        queueing_us = np.array(self._col_start) - arrivals_us
        execs = np.array(self._col_exec)
        lock_waits_us = np.array(self._col_lock_wait)
        mean_delay_us = float(delays_us.mean())
        # One shared sort/partition for all three quantiles; each result
        # equals the corresponding single-quantile call bit for bit.
        p50, p95, p99 = np.percentile(delays_us, (50.0, 95.0, 99.0))
        ci = batch_means_ci(delays_us, n_batches=n_batches)
        measured_span = duration_us - self.warmup_us
        throughput_pps = len(delays_us) / measured_span * 1e6 if measured_span > 0 else 0.0
        per_stream: Dict[int, float] = {}
        stream_ids = np.array(self._col_stream)
        for sid in np.unique(stream_ids):
            per_stream[int(sid)] = float(delays_us[stream_ids == sid].mean())
        return SimulationSummary(
            n_packets=len(delays_us),
            duration_us=duration_us,
            mean_delay_us=mean_delay_us,
            delay_ci_us=ci,
            mean_queueing_us=float(queueing_us.mean()),
            mean_exec_us=float(execs.mean()),
            mean_lock_wait_us=float(lock_waits_us.mean()),
            p50_delay_us=float(p50),
            p95_delay_us=float(p95),
            p99_delay_us=float(p99),
            throughput_pps=throughput_pps,
            offered_rate_pps=offered_rate_pps,
            utilization_per_proc=utilization_per_proc,
            max_backlog=self.max_backlog,
            final_backlog=self._backlog,
            per_stream_mean_delay_us=per_stream,
        )
