"""Metrics collection: per-packet records, summaries, batch-means CIs.

The paper's principal response metric is **mean packet delay** (arrival to
completion of protocol processing) as a function of packet arrival rate;
secondary metrics are throughput capacity, per-processor utilization, and
lock contention.  This module records every completed packet (after a
warm-up cutoff), computes summary statistics, and estimates confidence
intervals with the method of non-overlapping batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.stats import batch_means_ci
from .entities import Packet

__all__ = ["PacketRecord", "MetricsCollector", "SimulationSummary"]


@dataclass(frozen=True)
class PacketRecord:
    """Immutable snapshot of one completed packet."""

    stream_id: int
    arrival_us: float
    service_start_us: float
    completion_us: float
    exec_time_us: float
    lock_wait_us: float
    processor_id: int

    @property
    def delay_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        return self.service_start_us - self.arrival_us


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated results of one simulation run."""

    n_packets: int
    duration_us: float
    mean_delay_us: float
    delay_ci_us: Tuple[float, float]
    mean_queueing_us: float
    mean_exec_us: float
    mean_lock_wait_us: float
    p50_delay_us: float
    p95_delay_us: float
    p99_delay_us: float
    throughput_pps: float
    offered_rate_pps: float
    utilization_per_proc: Tuple[float, ...]
    max_backlog: int
    final_backlog: int
    per_stream_mean_delay_us: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization_per_proc)) if self.utilization_per_proc else 0.0

    @property
    def stable(self) -> bool:
        """Heuristic stability check: the run is considered saturated if
        work was still piling up at the end (final backlog comparable to
        everything ever queued) — used by capacity searches."""
        return self.final_backlog <= max(50, 0.02 * self.n_packets)

    def row(self) -> Dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "n_packets": self.n_packets,
            "mean_delay_us": self.mean_delay_us,
            "mean_queueing_us": self.mean_queueing_us,
            "mean_exec_us": self.mean_exec_us,
            "p95_delay_us": self.p95_delay_us,
            "throughput_pps": self.throughput_pps,
            "utilization": self.mean_utilization,
        }


class MetricsCollector:
    """Accumulates packet records and produces a summary.

    Packets completing before ``warmup_us`` are discarded (transient
    removal); the arrival counter still includes them so offered load is
    reported exactly.
    """

    def __init__(self, warmup_us: float = 0.0) -> None:
        if warmup_us < 0:
            raise ValueError("warmup_us must be non-negative")
        self.warmup_us = warmup_us
        self.records: List[PacketRecord] = []
        self.arrivals: int = 0
        self.completions: int = 0
        self.max_backlog: int = 0
        self._backlog: int = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        self.arrivals += 1
        self._backlog += 1
        if self._backlog > self.max_backlog:
            self.max_backlog = self._backlog

    def on_completion(self, packet: Packet) -> None:
        self.completions += 1
        self._backlog -= 1
        if packet.completion_us >= self.warmup_us:
            self.records.append(
                PacketRecord(
                    stream_id=packet.stream_id,
                    arrival_us=packet.arrival_us,
                    service_start_us=packet.service_start_us,
                    completion_us=packet.completion_us,
                    exec_time_us=packet.exec_time_us,
                    lock_wait_us=packet.lock_wait_us,
                    processor_id=packet.processor_id,
                )
            )

    @property
    def backlog(self) -> int:
        """Packets arrived but not yet completed."""
        return self._backlog

    @property
    def in_flight(self) -> int:
        """Alias of :attr:`backlog`: the quantity conserved by the
        ``arrivals == completions + in-flight`` invariant
        (:mod:`repro.verify.invariants` cross-checks it at end of run)."""
        return self._backlog

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summarize(
        self,
        duration_us: float,
        utilization_per_proc: Tuple[float, ...],
        offered_rate_pps: float,
        n_batches: int = 20,
    ) -> SimulationSummary:
        """Build the run summary (delays in µs, rates in packets/second)."""
        if not self.records:
            nan = math.nan
            return SimulationSummary(
                n_packets=0, duration_us=duration_us, mean_delay_us=nan,
                delay_ci_us=(nan, nan), mean_queueing_us=nan, mean_exec_us=nan,
                mean_lock_wait_us=nan, p50_delay_us=nan, p95_delay_us=nan,
                p99_delay_us=nan, throughput_pps=0.0,
                offered_rate_pps=offered_rate_pps,
                utilization_per_proc=utilization_per_proc,
                max_backlog=self.max_backlog, final_backlog=self._backlog,
            )
        delays_us = np.array([r.delay_us for r in self.records])
        queueing_us = np.array([r.queueing_us for r in self.records])
        execs = np.array([r.exec_time_us for r in self.records])
        lock_waits_us = np.array([r.lock_wait_us for r in self.records])
        mean_delay_us = float(delays_us.mean())
        ci = batch_means_ci(delays_us, n_batches=n_batches)
        measured_span = duration_us - self.warmup_us
        throughput_pps = len(delays_us) / measured_span * 1e6 if measured_span > 0 else 0.0
        per_stream: Dict[int, float] = {}
        stream_ids = np.array([r.stream_id for r in self.records])
        for sid in np.unique(stream_ids):
            per_stream[int(sid)] = float(delays_us[stream_ids == sid].mean())
        return SimulationSummary(
            n_packets=len(delays_us),
            duration_us=duration_us,
            mean_delay_us=mean_delay_us,
            delay_ci_us=ci,
            mean_queueing_us=float(queueing_us.mean()),
            mean_exec_us=float(execs.mean()),
            mean_lock_wait_us=float(lock_waits_us.mean()),
            p50_delay_us=float(np.percentile(delays_us, 50)),
            p95_delay_us=float(np.percentile(delays_us, 95)),
            p99_delay_us=float(np.percentile(delays_us, 99)),
            throughput_pps=throughput_pps,
            offered_rate_pps=offered_rate_pps,
            utilization_per_proc=utilization_per_proc,
            max_backlog=self.max_backlog,
            final_backlog=self._backlog,
            per_stream_mean_delay_us=per_stream,
        )
