"""Metrics collection: per-packet records, summaries, batch-means CIs.

The paper's principal response metric is **mean packet delay** (arrival to
completion of protocol processing) as a function of packet arrival rate;
secondary metrics are throughput capacity, per-processor utilization, and
lock contention.  This module records every completed packet (after a
warm-up cutoff), computes summary statistics, and estimates confidence
intervals with the method of non-overlapping batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.stats import batch_means_ci
from .entities import Packet

__all__ = ["PacketRecord", "MetricsCollector", "SimulationSummary"]


@dataclass(frozen=True)
class PacketRecord:
    """Immutable snapshot of one completed packet."""

    stream_id: int
    arrival_us: float
    service_start_us: float
    completion_us: float
    exec_time_us: float
    lock_wait_us: float
    processor_id: int

    @property
    def delay_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        return self.service_start_us - self.arrival_us


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated results of one simulation run."""

    n_packets: int
    duration_us: float
    mean_delay_us: float
    delay_ci_us: Tuple[float, float]
    mean_queueing_us: float
    mean_exec_us: float
    mean_lock_wait_us: float
    p50_delay_us: float
    p95_delay_us: float
    p99_delay_us: float
    throughput_pps: float
    offered_rate_pps: float
    utilization_per_proc: Tuple[float, ...]
    max_backlog: int
    final_backlog: int
    per_stream_mean_delay_us: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization_per_proc)) if self.utilization_per_proc else 0.0

    @property
    def stable(self) -> bool:
        """Heuristic stability check: the run is considered saturated if
        work was still piling up at the end (final backlog comparable to
        everything ever queued) — used by capacity searches."""
        return self.final_backlog <= max(50, 0.02 * self.n_packets)

    def row(self) -> Dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "n_packets": self.n_packets,
            "mean_delay_us": self.mean_delay_us,
            "mean_queueing_us": self.mean_queueing_us,
            "mean_exec_us": self.mean_exec_us,
            "p95_delay_us": self.p95_delay_us,
            "throughput_pps": self.throughput_pps,
            "utilization": self.mean_utilization,
        }


class MetricsCollector:
    """Accumulates packet records and produces a summary.

    Packets completing before ``warmup_us`` are discarded (transient
    removal); the arrival counter still includes them so offered load is
    reported exactly.

    Storage is row-tuples: the per-completion hot path appends one plain
    tuple per packet (a :class:`PacketRecord` costs ~7 slow
    frozen-dataclass ``__setattr__`` calls; seven parallel-list appends
    cost seven method calls), and :meth:`summarize` unzips the rows into
    its NumPy arrays.  The :attr:`records` view materializes the record
    objects lazily for analysis and tests.
    """

    #: Row layout (must match PacketRecord field order).
    _ROW_FIELDS = (
        "stream_id", "arrival_us", "service_start_us", "completion_us",
        "exec_time_us", "lock_wait_us", "processor_id",
    )

    def __init__(self, warmup_us: float = 0.0) -> None:
        if warmup_us < 0:
            raise ValueError("warmup_us must be non-negative")
        self.warmup_us = warmup_us
        self._rows: List[Tuple[int, float, float, float, float, float, int]] = []
        # Bound append: the completion hot path calls this once per packet
        # (the list is never rebound).
        self._append_row = self._rows.append
        self._records_cache: Optional[List[PacketRecord]] = None
        self.arrivals: int = 0
        self.completions: int = 0
        self.max_backlog: int = 0
        self._backlog: int = 0

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_arrival(self, packet: Packet) -> None:
        self.arrivals += 1
        self._backlog += 1
        if self._backlog > self.max_backlog:
            self.max_backlog = self._backlog

    def on_completion(self, packet: Packet) -> None:
        self.completions += 1
        self._backlog -= 1
        completion_us = packet.completion_us
        if completion_us >= self.warmup_us:
            self._append_row((
                packet.stream_id,
                packet.arrival_us,
                packet.service_start_us,
                completion_us,
                packet.exec_time_us,
                packet.lock_wait_us,
                packet.processor_id,
            ))

    @property
    def records(self) -> List[PacketRecord]:
        """Per-packet records (lazily materialized from the rows).

        Rows are append-only, so a stale cache is detected by length
        alone — the hot completion path never touches the cache.
        """
        cache = self._records_cache
        if cache is None or len(cache) != len(self._rows):
            self._records_cache = [
                PacketRecord(*row) for row in self._rows
            ]
        return self._records_cache

    @property
    def backlog(self) -> int:
        """Packets arrived but not yet completed."""
        return self._backlog

    @property
    def in_flight(self) -> int:
        """Alias of :attr:`backlog`: the quantity conserved by the
        ``arrivals == completions + in-flight`` invariant
        (:mod:`repro.verify.invariants` cross-checks it at end of run)."""
        return self._backlog

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summarize(
        self,
        duration_us: float,
        utilization_per_proc: Tuple[float, ...],
        offered_rate_pps: float,
        n_batches: int = 20,
    ) -> SimulationSummary:
        """Build the run summary (delays in µs, rates in packets/second)."""
        if not self._rows:
            nan = math.nan
            return SimulationSummary(
                n_packets=0, duration_us=duration_us, mean_delay_us=nan,
                delay_ci_us=(nan, nan), mean_queueing_us=nan, mean_exec_us=nan,
                mean_lock_wait_us=nan, p50_delay_us=nan, p95_delay_us=nan,
                p99_delay_us=nan, throughput_pps=0.0,
                offered_rate_pps=offered_rate_pps,
                utilization_per_proc=utilization_per_proc,
                max_backlog=self.max_backlog, final_backlog=self._backlog,
            )
        # Elementwise float64 subtraction equals the historical per-record
        # Python-float subtraction bit for bit (both are IEEE doubles).
        (stream_col, arrival_col_us, start_col_us, completion_col_us,
         exec_col_us, lock_wait_col_us, _proc_col) = zip(*self._rows)
        arrivals_us = np.array(arrival_col_us)
        delays_us = np.array(completion_col_us) - arrivals_us
        queueing_us = np.array(start_col_us) - arrivals_us
        execs = np.array(exec_col_us)
        lock_waits_us = np.array(lock_wait_col_us)
        mean_delay_us = float(delays_us.mean())
        ci = batch_means_ci(delays_us, n_batches=n_batches)
        measured_span = duration_us - self.warmup_us
        throughput_pps = len(delays_us) / measured_span * 1e6 if measured_span > 0 else 0.0
        per_stream: Dict[int, float] = {}
        stream_ids = np.array(stream_col)
        for sid in np.unique(stream_ids):
            per_stream[int(sid)] = float(delays_us[stream_ids == sid].mean())
        return SimulationSummary(
            n_packets=len(delays_us),
            duration_us=duration_us,
            mean_delay_us=mean_delay_us,
            delay_ci_us=ci,
            mean_queueing_us=float(queueing_us.mean()),
            mean_exec_us=float(execs.mean()),
            mean_lock_wait_us=float(lock_waits_us.mean()),
            p50_delay_us=float(np.percentile(delays_us, 50)),
            p95_delay_us=float(np.percentile(delays_us, 95)),
            p99_delay_us=float(np.percentile(delays_us, 99)),
            throughput_pps=throughput_pps,
            offered_rate_pps=offered_rate_pps,
            utilization_per_proc=utilization_per_proc,
            max_backlog=self.max_backlog,
            final_backlog=self._backlog,
            per_stream_mean_delay_us=per_stream,
        )
