"""Fused batched engine core (``REPRO_ENGINE=auto|batched|scalar``).

The scalar engine executes one Python callback per event: heap pop →
``_arrival_fire``/``_complete`` → dispatcher → policy → model, a dozen
attribute loads and method frames per packet.  This module replaces that
tower with **one flat loop** over two pre-merged event feeds:

1. **Arrivals are pregenerated and merged up front.**  Every stream's
   interarrival gaps are drawn in blocks from its private RNG substream
   (``ArrivalProcess.next_batches_array``) and turned into absolute times
   with a cumulative sum — ``np.add.accumulate`` is a strict sequential
   left fold, so the times are bit-identical to the scalar
   ``t += gap`` chain.  The per-stream time arrays are merged into one
   global arrival order with a stable ``argsort``; in the (measure-zero
   for Poisson, common for deterministic workloads) case of exact
   cross-stream time ties the merge falls back to an explicit k-way heap
   merge that reproduces the scalar engine's push-order tie-breaking
   decision for decision.

2. **Completions live in a tiny local heap** keyed ``(time, stamp)``
   where ``stamp`` mirrors — increment for increment — the scalar
   engine's global ``seq`` counter, so arrival/completion ties resolve in
   exactly the historical order.

The loop body inlines the dispatcher's service-start and completion
sequences (idle-clock accrual, touch-table reads/stamps, thread-pool
acquire/release, lock reservation, the penalty analytic/cache/flush
ladder) **preserving every float expression tree operation for
operation**: moving work is allowed, changing arithmetic is not.
Representation tricks that keep the loop allocation- and
attribute-access-free without changing results:

- touch tables are per-processor ``list``\\ s initialized to ``-inf``
  instead of dicts: ``clock - (-inf) == +inf == COLD``, bit-identically
  the scalar "never touched" branch;
- the idle-processor set is a bitmask (the scalar sorted list is scanned
  in ascending processor order; so is the mask);
- queued packets are ``(arrival_us, stream_id, packet_id)`` tuples;
  real :class:`~repro.sim.entities.Packet` objects are only materialized
  for work still pending when the horizon folds back;
- completed-service tuples double as the metrics rows: they are
  collected into a ``done`` list and folded into the collector's columnar
  store in one transpose at the end (completions fire in nondecreasing
  time order, so the warm-up cutoff is a binary search, not a per-event
  branch).

At the horizon every piece of mutated state — simulator clock/seq/heap,
processor affinity state, thread pool, lock counters, dispatcher queues,
model counters, metrics — is folded back into the owning objects, so a
run is externally indistinguishable from the scalar engine (the
batched-vs-scalar equality tests assert byte-identical summaries and
metrics).

**Support matrix.**  The fused loop replicates exact semantics only for
configurations it was proven against: Poisson/deterministic arrivals,
fixed packet sizes, no churn, no trace, no invariant checking, and the
policies ``mru``/``fcfs``/``stream-mru`` (Locking, one coarse lock,
shared thread pool), ``flow-steer``/``grouped`` (Locking, one coarse
lock, per-processor threads and queues — see ``_run_locking_pools``) and
``ips-mru``/``ips-wired`` (IPS).  Anything else — notably the
``work-steal`` policy, whose victim/thief draw interleaving has no
proven fused replication — falls back to the scalar engine: silently
under ``REPRO_ENGINE=auto`` (the default), loudly under
``REPRO_ENGINE=batched``.
"""

from __future__ import annotations

import gc
import heapq
import math
import os
from bisect import bisect_left
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.exec_model import COLD
from ..core.policies import (
    FCFSPolicy,
    FlowSteerPolicy,
    GroupedAffinityPolicy,
    IPSMRUPolicy,
    IPSWiredPolicy,
    MRUPolicy,
    StreamMRUPolicy,
)
from ..workloads.arrivals import DeterministicSpec, PoissonSpec
from ..workloads.traffic import FixedSize
from .entities import Packet

if TYPE_CHECKING:
    from .system import NetworkProcessingSystem

__all__ = ["ENGINE_ENV", "engine_mode", "unsupported_reason", "run_fused"]

#: Environment variable selecting the engine core.
ENGINE_ENV = "REPRO_ENGINE"

#: Interned touch-table key for the shared code+globals component (equal
#: by value to the dispatcher's ``_CODE_KEY``; dict lookups hash by
#: equality, so a second equal tuple is interchangeable).
_CODE_KEY = ("code",)

#: Sentinel for "component never touched here": ``clock - (-inf)`` is
#: ``+inf == COLD``, reproducing the scalar dict-miss branch bit for bit.
_NEVER = -math.inf

#: Refuse to pregenerate more than this many expected arrivals (memory
#: guard; such runs fall back to the streaming scalar engine).
_MAX_EXPECTED_ARRIVALS = 25_000_000.0


def engine_mode() -> str:
    """Normalized ``REPRO_ENGINE`` value (``auto``/``batched``/``scalar``)."""
    raw = os.environ.get(ENGINE_ENV, "auto").strip().lower()
    if raw in ("", "auto"):
        return "auto"
    if raw in ("batched", "scalar"):
        return raw
    raise ValueError(
        f"{ENGINE_ENV}={raw!r} is not recognized "
        "(expected 'auto', 'batched' or 'scalar')"
    )


_LOCKING_POLICIES = (MRUPolicy, FCFSPolicy, StreamMRUPolicy)
#: Locking policies with per-processor threads and per-processor (or
#: per-group) queues, fused by ``_run_locking_pools``.
_LOCKING_POOL_POLICIES = (FlowSteerPolicy, GroupedAffinityPolicy)
_IPS_POLICIES = (IPSMRUPolicy, IPSWiredPolicy)
_ARRIVAL_SPECS = (PoissonSpec, DeterministicSpec)

#: RPR008 parity ledger: config fields the scalar path reads that this
#: engine deliberately never reads, mapped to the reason.  Kept empty on
#: purpose — every scalar-path knob is currently either read here
#: directly or reached through a provenance-carrying binding
#: (``system.model``, ``system.dispatcher.lock``, ...).  Add an entry
#: (``"SystemConfig.field": "why"``) only with a real justification; the
#: linter rejects stale or reasonless entries.
_BATCH_IRRELEVANT_FIELDS: Dict[str, str] = {}

#: RPR009 fallback ledger: registered RNG-consuming policies that have no
#: fused loop here and instead run on the scalar engine (via
#: :func:`unsupported_reason` returning "... is not fused").  The linter
#: requires every RNG-consuming registry policy to appear either in the
#: fused tuples above or in this dict with a reason.
_SCALAR_FALLBACK_POLICIES: Dict[str, str] = {
    "HybridPolicy": (
        "hybrid wired/MRU switching re-evaluates residency per packet; "
        "kept on the scalar engine until a fused variant is profiled"
    ),
    "WorkStealingPolicy": (
        "stealing inspects victim queues at completion time; the "
        "documented random_choice draw-order contract pins it to the "
        "scalar engine"
    ),
}


def unsupported_reason(system: "NetworkProcessingSystem") -> Optional[str]:
    """Why the fused core cannot run this configuration (``None`` = can).

    The checks are conservative: exact policy/spec types only (a subclass
    may override behaviour the fused loop inlines), and observability
    hooks force the scalar engine because the fused loop has no per-event
    callback points.
    """
    cfg = system.config
    if cfg.trace:
        return "execution tracing is enabled"
    if cfg.check_invariants:
        return "runtime invariant checking is enabled"
    if cfg.churn is not None:
        return "session churn requires event-by-event stream management"
    if type(cfg.traffic.size_model) is not FixedSize:
        return "non-fixed packet sizes draw the size RNG per packet"
    for spec in cfg.traffic.stream_specs:
        if type(spec) not in _ARRIVAL_SPECS:
            return (
                f"arrival spec {type(spec).__name__} has no "
                "order-preserving block pregeneration"
            )
    if system.model._penalty_cache is None:
        return "execution-time model built without memoization"
    expected = cfg.traffic.total_rate_pps * cfg.duration_us * 1e-6
    if not (expected < _MAX_EXPECTED_ARRIVALS):
        return "expected arrival count too large to pregenerate"
    policy = system.dispatcher.policy
    if cfg.paradigm == "locking":
        if (type(policy) not in _LOCKING_POLICIES
                and type(policy) not in _LOCKING_POOL_POLICIES):
            return f"locking policy {policy.name!r} is not fused"
        if system.dispatcher.lock.n_locks != 1:
            return "layered locks pipeline per-packet reservations"
    else:
        if type(policy) not in _IPS_POLICIES:
            return f"IPS policy {policy.name!r} is not fused"
    return None


# ----------------------------------------------------------------------
# Arrival pregeneration
# ----------------------------------------------------------------------
def _pregenerate_arrivals(
    system: "NetworkProcessingSystem",
) -> Tuple[List[float], List[int], List[int]]:
    """Draw, truncate and merge every stream's arrivals for the full run.

    Returns ``(times, stream_ids, per_stream_counts)`` in exactly the
    order the scalar engine would fire the arrival events.  Drawing past
    each stream's first beyond-horizon arrival is unobservable: the
    per-stream RNG substream is private, so surplus draws are discarded
    values no other consumer can see (the same argument as the scalar
    engine's chunked ``_ArrivalSource`` pregeneration).
    """
    cfg = system.config
    duration_us = cfg.duration_us
    per_stream: List[List[float]] = []
    for stream_id, spec in enumerate(cfg.traffic.stream_specs):
        process = spec.build(system.rngs.arrivals(stream_id))
        expected = spec.mean_rate_pps * duration_us * 1e-6
        chunk = min(4_000_000, max(64, int(expected * 1.05) + 16))
        chunks: List[np.ndarray] = []
        base = 0.0
        drawn = 0
        while True:
            gaps, _sizes = process.next_batches_array(chunk)
            # Strict left fold from the previous absolute time: identical
            # to the scalar t_k = t_{k-1} + gap_k chain.
            times = np.add.accumulate(np.concatenate(((base,), gaps)))[1:]
            chunks.append(times)
            base = float(times[-1])
            drawn += chunk
            if base > duration_us:
                break
            if drawn > 4.0 * expected + 1e6:
                raise RuntimeError(
                    f"stream {stream_id} pregeneration ran away "
                    f"({drawn} draws without passing the horizon)"
                )
        merged = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        # Keep arrivals with time <= duration: the scalar horizon test is
        # strictly `when > horizon` ends the stream, and gaps are
        # non-negative so the first exceedance ends it for good.
        cut = int(np.searchsorted(merged, duration_us, side="right"))
        per_stream.append(merged[:cut].tolist())
    counts = [len(t) for t in per_stream]
    total = sum(counts)
    if total == 0:
        return [], [], counts
    n_streams = len(per_stream)
    cat = np.empty(total, dtype=np.float64)
    sid_arr = np.empty(total, dtype=np.int64)
    pos = 0
    for s, times_list in enumerate(per_stream):
        n = len(times_list)
        cat[pos:pos + n] = times_list
        sid_arr[pos:pos + n] = s
        pos += n
    order = np.argsort(cat, kind="stable")
    sorted_t = cat[order]
    # Exact cross-stream time ties need the scalar push-order resolution;
    # same-stream duplicates are already in order under the stable sort.
    if total > 1:
        eq = sorted_t[1:] == sorted_t[:-1]
        if bool(eq.any()):
            sorted_s = sid_arr[order]
            if bool((sorted_s[1:][eq] != sorted_s[:-1][eq]).any()):
                return _merge_with_push_order(per_stream, n_streams) + (counts,)
    return sorted_t.tolist(), sid_arr[order].tolist(), counts


def _merge_with_push_order(
    per_stream: List[List[float]], n_streams: int,
) -> Tuple[List[float], List[int]]:
    """Exact-tie fallback: k-way merge with scalar push-order stamps.

    The scalar engine breaks equal-time ties by the heap-insertion
    sequence number; an arrival event's relative insertion order among
    arrival events equals the firing order of its predecessor (stream
    sources re-push themselves when they fire, and interleaved completion
    pushes cannot reorder two arrival entries relative to each other).
    Replaying that process with a local counter reproduces the scalar
    order exactly; this path only runs for workloads with exact ties
    (deterministic arrivals), where merge cost is dwarfed by service
    simulation anyway.
    """
    heap: List[Tuple[float, int, int]] = []
    idx = [1] * n_streams
    for s in range(n_streams):
        times_list = per_stream[s]
        if times_list:
            # Initial pushes happen in stream order before the run starts.
            heap.append((times_list[0], s, s))
    heapq.heapify(heap)
    counter = n_streams
    out_t: List[float] = []
    out_s: List[int] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    while heap:
        t, _po, s = heappop(heap)
        out_t.append(t)
        out_s.append(s)
        i = idx[s]
        times_list = per_stream[s]
        if i < len(times_list):
            heappush(heap, (times_list[i], counter, s))
            counter += 1
            idx[s] = i + 1
    return out_t, out_s


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_fused(system: "NetworkProcessingSystem") -> None:
    """Run the configured horizon with the fused core.

    Mutates ``system`` exactly as ``_start_arrivals()`` +
    ``sim.run_until(duration_us)`` would: caller (``system.run``)
    proceeds with summarization as usual.  Call only when
    :func:`unsupported_reason` returned ``None``.
    """
    m_times, m_sids, counts = _pregenerate_arrivals(system)
    # The loops allocate short-lived acyclic tuples at a rate that makes
    # generational GC scans pure overhead (~8% of the run); results are
    # unaffected, so suspend collection for the duration.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if system.config.paradigm != "locking":
            _run_ips(system, m_times, m_sids, counts)
        elif type(system.dispatcher.policy) in _LOCKING_POOL_POLICIES:
            _run_locking_pools(system, m_times, m_sids, counts)
        else:
            _run_locking(system, m_times, m_sids, counts)
    finally:
        if gc_was_enabled:
            gc.enable()


def _fold_metrics_rows(
    system: "NetworkProcessingSystem",
    done: List[tuple],
    lw_col: Optional[int],
) -> None:
    """Fold completed-service tuples into the collector's columns.

    ``done`` holds the completion-heap tuples in firing order —
    ``(completion, stamp, proc, stream, arrival, start, exec, ...)`` —
    with nondecreasing completion times, so the scalar per-completion
    ``completion_us >= warmup_us`` filter reduces to one binary search.
    """
    warmup_us = system.config.warmup_us
    lo, hi = 0, len(done)
    while lo < hi:
        mid = (lo + hi) >> 1
        if done[mid][0] < warmup_us:
            lo = mid + 1
        else:
            hi = mid
    rows = done[lo:] if lo else done
    if not rows:
        return
    cols = list(zip(*rows))
    lock_waits_us = (
        cols[lw_col] if lw_col is not None
        else [0.0] * len(rows)
    )
    system.metrics.extend_columns(
        cols[3], cols[4], cols[5], cols[0], cols[6], lock_waits_us, cols[2],
    )


# ----------------------------------------------------------------------
# Locking paradigm
# ----------------------------------------------------------------------
def _run_locking(
    system: "NetworkProcessingSystem",
    m_times: List[float],
    m_sids: List[int],
    counts: List[int],
) -> None:
    cfg = system.config
    dispatcher = system.dispatcher
    model = system.model
    policy = dispatcher.policy
    n_procs = cfg.platform.n_processors
    n_streams = cfg.traffic.n_streams
    duration_us = cfg.duration_us

    pk_fcfs = type(policy) is FCFSPolicy
    pk_stream = type(policy) is StreamMRUPolicy

    # --- model constants / fast-path state (locals: no attribute loads
    # in the loop; every float expression below replicates the scalar
    # code's tree exactly — see exec_model.execution_time_scalar,
    # exec_model._pen1 and dispatch.LockingDispatcher).
    COLD_ = COLD
    fast_ok = model._fast_l1 is not None
    pen_cold = model._pen_cold
    w_shared = model._w_shared
    w_code = model._w_code
    w_stream = model._w_stream
    w_thread = model._w_thread
    t_warm = model._t_warm
    dispatch_c = model._dispatch_us
    lock_oh = model._lock_oh
    extra_c = cfg.fixed_overhead_us
    cache = model._penalty_cache
    cache_get = cache.get
    cache_max = model._PENALTY_CACHE_MAX
    model_pen1 = model._pen1
    data_touching = cfg.data_touching
    dt_const = (
        model.costs.data_touching_us(system._fixed_size)
        if data_touching else 0.0
    )
    size_bytes = system._fixed_size
    refs_per_us = cfg.platform.references_per_us
    v_intensity = cfg.nonprotocol_intensity
    cs_us = dispatcher._lock_cs_us
    sched_int = system.rngs.scheduling.integers
    log10 = math.log10
    expm1 = math.expm1

    n_calls = 0
    n_analytic = 0
    n_cache = 0
    n_flush = 0
    migrations = 0

    if fast_ok:
        split1, c01, slope1, u11, lp1 = model._fast_l1
        split2, c02, slope2, u12, lp2 = model._fast_l2
        delta1 = model._delta1
        delta2 = model._delta2

        def flush(refs: float) -> float:
            """Two-level flush math of ExecutionTimeModel._pen1, verbatim
            (cache maintenance included; counters folded by the caller)."""
            r = refs * split1
            u = r * u11 if r < 1.0 else 10.0 ** (c01 + slope1 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp1)
            f1 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            r = refs * split2
            u = r * u12 if r < 1.0 else 10.0 ** (c02 + slope2 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp2)
            f2 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            value = f1 * delta1 + f2 * delta2
            if len(cache) >= cache_max:
                cache.clear()
            cache[refs] = value
            return value

    def pen_of(refs: float) -> float:
        """Non-fast-path fallback (associative cache levels): cache probe
        here, everything else delegated to the model."""
        nonlocal n_cache
        hit = cache_get(refs)
        if hit is not None:
            n_cache += 1
            return hit
        return model_pen1(refs)

    # --- processor state (parallel lists; -inf touch sentinels)
    busy = [False] * n_procs
    ref_clock = [0.0] * n_procs
    accrued = [0.0] * n_procs
    np_us = [0.0] * n_procs
    pbusy_us = [0.0] * n_procs
    last_end = [_NEVER] * n_procs
    epoch_seen = [-1] * n_procs
    code_touch = [_NEVER] * n_procs
    stream_touch = [[_NEVER] * n_streams for _ in range(n_procs)]
    thread_touch = [[_NEVER] * n_procs for _ in range(n_procs)]
    epoch = 0
    # Idle set as a bitmask; scanned in ascending processor order exactly
    # like the dispatcher's sorted ``_idle`` list.
    idle_mask = (1 << n_procs) - 1

    # --- shared thread pool (free LIFO list; -1 = "never ran anywhere")
    free = list(range(n_procs - 1, -1, -1))
    tlp = [-1] * n_procs

    # --- stream affinity / key interning order
    stream_lp = [-1] * n_streams
    first_completion_order: List[int] = []

    # --- single coarse lock
    lock_free_at = 0.0
    lock_total_wait_us = 0.0
    lock_total_hold_us = 0.0
    lock_acqs = 0
    lock_contended = 0

    # --- queues / event feeds
    queue: Deque[Tuple[float, int, int]] = deque()
    queue_append = queue.append
    queue_popleft = queue.popleft
    comp_heap: List[tuple] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    done: List[tuple] = []
    done_append = done.append

    rem = list(counts)
    next_stamp = [-1] * n_streams
    seq = 0
    for s in range(n_streams):
        if rem[s]:
            next_stamp[s] = seq
            seq += 1

    ai = 0
    n_merged = len(m_times)
    m_times.append(math.inf)  # sentinel: loop needs no bounds check
    m_sids.append(0)
    backlog = 0
    max_backlog = 0
    INF = math.inf

    while True:
        at = m_times[ai]
        if comp_heap:
            head = comp_heap[0]
            ct = head[0]
            if at < ct:
                take_arrival = True
            elif ct < at:
                if ct > duration_us:
                    break
                take_arrival = False
            else:
                take_arrival = next_stamp[m_sids[ai]] < head[1]
        else:
            if at == INF:
                break
            take_arrival = True

        if take_arrival:
            # ---------------- arrival event ----------------
            if not idle_mask:
                # Every processor is busy: arrivals strictly before the
                # next completion can only queue.  Process that whole
                # presorted slice in one sweep — each firing does exactly
                # what the scalar per-event path does (enqueue, then
                # stamp the stream's next arrival), and the backlog rises
                # monotonically so one max update at the end is exact.
                j = bisect_left(m_times, ct, ai)
                if j == ai:
                    j = ai + 1  # tie with the completion, won on stamp
                for i in range(ai, j):
                    s = m_sids[i]
                    queue_append((m_times[i], s, i))
                    rem_s = rem[s] - 1
                    rem[s] = rem_s
                    if rem_s:
                        next_stamp[s] = seq
                        seq += 1
                backlog += j - ai
                if backlog > max_backlog:
                    max_backlog = backlog
                ai = j
                continue
            s = m_sids[ai]
            now = at
            pid = ai
            ai += 1
            backlog += 1
            if backlog > max_backlog:
                max_backlog = backlog
            if idle_mask:
                # Queue is empty (loop invariant): dispatch immediately.
                if not (idle_mask & (idle_mask - 1)):
                    p = idle_mask.bit_length() - 1
                elif pk_fcfs:
                    idle = [q for q in range(n_procs) if idle_mask >> q & 1]
                    p = idle[int(sched_int(0, len(idle)))]
                else:
                    p = -1
                    if pk_stream:
                        lastp = stream_lp[s]
                        if lastp >= 0 and idle_mask >> lastp & 1:
                            p = lastp
                    if p < 0:
                        best_t = _NEVER
                        best = []
                        for q in range(n_procs):
                            if idle_mask >> q & 1:
                                tq = last_end[q]
                                if tq > best_t:
                                    best_t = tq
                                    best = [q]
                                elif tq == best_t:
                                    best.append(q)
                        p = (best[0] if len(best) == 1
                             else best[int(sched_int(0, len(best)))])
                # --- inlined _start_service (dispatch.LockingDispatcher)
                tid = free[-1]
                if tlp[tid] == p:
                    free.pop()
                else:
                    found = -1
                    for cand in reversed(free):
                        if tlp[cand] == p:
                            found = cand
                            break
                    if found < 0:
                        tid = free.pop()
                    else:
                        tid = found
                        free.remove(tid)
                dt = now - accrued[p]
                if dt > 0.0:
                    ref_clock[p] += dt * refs_per_us * v_intensity
                    np_us[p] += dt
                    accrued[p] = now
                elif dt < -1e-9:
                    raise ValueError(f"time went backwards: {now} < {accrued[p]}")
                clock = ref_clock[p]
                d = clock - code_touch[p]
                code_refs = d if d > 0.0 else 0.0
                lp_s = stream_lp[s]
                if lp_s != p:
                    if lp_s >= 0:
                        migrations += 1
                    stream_refs = COLD_
                else:
                    d = clock - stream_touch[p][s]
                    stream_refs = d if d > 0.0 else 0.0
                if tlp[tid] == p:
                    d = clock - thread_touch[p][tid]
                    thread_refs = d if d > 0.0 else 0.0
                else:
                    thread_refs = COLD_
                n_calls += 1
                if fast_ok:
                    if code_refs == 0.0:
                        n_analytic += 1
                        pc = 0.0
                    elif code_refs == COLD_:
                        n_analytic += 1
                        pc = pen_cold
                    else:
                        pc = cache_get(code_refs)
                        if pc is None:
                            n_flush += 1
                            pc = flush(code_refs)
                        else:
                            n_cache += 1
                    if stream_refs == code_refs:
                        ps = pc
                    elif stream_refs == 0.0:
                        n_analytic += 1
                        ps = 0.0
                    elif stream_refs == COLD_:
                        n_analytic += 1
                        ps = pen_cold
                    else:
                        ps = cache_get(stream_refs)
                        if ps is None:
                            n_flush += 1
                            ps = flush(stream_refs)
                        else:
                            n_cache += 1
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    elif thread_refs == 0.0:
                        n_analytic += 1
                        pt = 0.0
                    elif thread_refs == COLD_:
                        n_analytic += 1
                        pt = pen_cold
                    else:
                        pt = cache_get(thread_refs)
                        if pt is None:
                            n_flush += 1
                            pt = flush(thread_refs)
                        else:
                            n_cache += 1
                else:
                    pc = pen_of(code_refs)
                    ps = pc if stream_refs == code_refs else pen_of(stream_refs)
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    else:
                        pt = pen_of(thread_refs)
                if epoch > epoch_seen[p]:
                    pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                else:
                    pen_code = pc
                penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                t_exec = t_warm + penalty + dispatch_c + extra_c
                t_exec += lock_oh
                if data_touching:
                    t_exec += dt_const
                w = lock_free_at - now
                if w > 0.0:
                    lock_wait_us = w
                    lock_contended += 1
                else:
                    lock_wait_us = 0.0
                lock_free_at = now + lock_wait_us + cs_us
                lock_total_wait_us += lock_wait_us
                lock_total_hold_us += cs_us
                lock_acqs += 1
                busy[p] = True
                idle_mask ^= 1 << p
                heappush(comp_heap, (now + (lock_wait_us + t_exec), seq, p, s,
                                     now, now, t_exec, lock_wait_us, tid, pid))
                seq += 1
            rem_s = rem[s] - 1
            rem[s] = rem_s
            if rem_s:
                next_stamp[s] = seq
                seq += 1
        else:
            # ---------------- completion event ----------------
            heappop(comp_heap)
            done_append(head)
            now = head[0]
            p = head[2]
            s = head[3]
            ex = head[6]
            tid = head[8]
            epoch += 1
            clock = ref_clock[p] + ex * refs_per_us
            ref_clock[p] = clock
            accrued[p] = now
            code_touch[p] = clock
            stream_touch[p][s] = clock
            thread_touch[p][tid] = clock
            pbusy_us[p] += ex
            last_end[p] = now
            epoch_seen[p] = epoch
            backlog -= 1
            tlp[tid] = p
            free.append(tid)
            if stream_lp[s] < 0:
                first_completion_order.append(s)
            stream_lp[s] = p
            if queue:
                # Queue non-empty ⇒ every other processor is busy: the
                # policy (all three) must pick p, consulting no RNG.
                a2, s2, pid2 = queue_popleft()
                tid = free[-1]
                if tlp[tid] == p:
                    free.pop()
                else:
                    found = -1
                    for cand in reversed(free):
                        if tlp[cand] == p:
                            found = cand
                            break
                    if found < 0:
                        tid = free.pop()
                    else:
                        tid = found
                        free.remove(tid)
                # dt = now - accrued[p] == 0.0 here: no accrual (exactly
                # the scalar no-op branch after _complete set accrued=now).
                d = clock - code_touch[p]
                code_refs = d if d > 0.0 else 0.0
                lp_s2 = stream_lp[s2]
                if lp_s2 != p:
                    if lp_s2 >= 0:
                        migrations += 1
                    stream_refs = COLD_
                else:
                    d = clock - stream_touch[p][s2]
                    stream_refs = d if d > 0.0 else 0.0
                if tlp[tid] == p:
                    d = clock - thread_touch[p][tid]
                    thread_refs = d if d > 0.0 else 0.0
                else:
                    thread_refs = COLD_
                n_calls += 1
                if fast_ok:
                    if code_refs == 0.0:
                        n_analytic += 1
                        pc = 0.0
                    elif code_refs == COLD_:
                        n_analytic += 1
                        pc = pen_cold
                    else:
                        pc = cache_get(code_refs)
                        if pc is None:
                            n_flush += 1
                            pc = flush(code_refs)
                        else:
                            n_cache += 1
                    if stream_refs == code_refs:
                        ps = pc
                    elif stream_refs == 0.0:
                        n_analytic += 1
                        ps = 0.0
                    elif stream_refs == COLD_:
                        n_analytic += 1
                        ps = pen_cold
                    else:
                        ps = cache_get(stream_refs)
                        if ps is None:
                            n_flush += 1
                            ps = flush(stream_refs)
                        else:
                            n_cache += 1
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    elif thread_refs == 0.0:
                        n_analytic += 1
                        pt = 0.0
                    elif thread_refs == COLD_:
                        n_analytic += 1
                        pt = pen_cold
                    else:
                        pt = cache_get(thread_refs)
                        if pt is None:
                            n_flush += 1
                            pt = flush(thread_refs)
                        else:
                            n_cache += 1
                else:
                    pc = pen_of(code_refs)
                    ps = pc if stream_refs == code_refs else pen_of(stream_refs)
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    else:
                        pt = pen_of(thread_refs)
                if epoch > epoch_seen[p]:
                    pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                else:
                    pen_code = pc
                penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                t_exec = t_warm + penalty + dispatch_c + extra_c
                t_exec += lock_oh
                if data_touching:
                    t_exec += dt_const
                w = lock_free_at - now
                if w > 0.0:
                    lock_wait_us = w
                    lock_contended += 1
                else:
                    lock_wait_us = 0.0
                lock_free_at = now + lock_wait_us + cs_us
                lock_total_wait_us += lock_wait_us
                lock_total_hold_us += cs_us
                lock_acqs += 1
                # busy[p] stays True (scalar: False in _complete, True in
                # the immediately following _start_service).
                heappush(comp_heap, (now + (lock_wait_us + t_exec), seq, p, s2,
                                     a2, now, t_exec, lock_wait_us, tid, pid2))
                seq += 1
            else:
                busy[p] = False
                idle_mask |= 1 << p

    # ------------------------------------------------------------------
    # Fold back into the live objects
    # ------------------------------------------------------------------
    n_comp_fired = len(done)
    sim = system.sim
    sim._seq = seq
    sim._events_processed += n_merged + n_comp_fired
    sim._now = duration_us if duration_us > sim._now else sim._now

    model._n_fast_calls += n_calls
    model._n_analytic_hits += n_analytic
    model._n_cache_hits += n_cache
    model._n_flush_computes += n_flush
    dispatcher.migrations += migrations

    skeys = dispatcher._stream_keys
    for s in first_completion_order:
        skeys[s] = ("stream", s)
        dispatcher._stream_last_proc[s] = stream_lp[s]
    thread_keys = dispatcher._thread_keys
    procs = system.processors
    for p in range(n_procs):
        proc = procs[p]
        proc.busy = busy[p]
        proc._ref_clock = ref_clock[p]
        proc._accrued_until = accrued[p]
        proc.nonprotocol_us = np_us[p]
        proc.protocol_busy_us = pbusy_us[p]
        proc.last_protocol_end = last_end[p]
        proc.protocol_epoch_seen = epoch_seen[p]
        touch = proc._last_touch
        v = code_touch[p]
        if v != _NEVER:
            touch[_CODE_KEY] = v
        row = stream_touch[p]
        for s in range(n_streams):
            v = row[s]
            if v != _NEVER:
                touch[skeys[s]] = v
        row = thread_touch[p]
        for t in range(n_procs):
            v = row[t]
            if v != _NEVER:
                touch[thread_keys[t]] = v
    dispatcher.protocol_epoch = epoch
    dispatcher._idle[:] = [q for q in range(n_procs) if idle_mask >> q & 1]

    pool = dispatcher.threads
    pool._free[:] = free
    pool_last = pool._last_proc
    for t in range(n_procs):
        pool_last[t] = tlp[t] if tlp[t] >= 0 else None

    lock0 = dispatcher.lock.locks[0]
    lock0._free_at = lock_free_at
    lock0.total_wait_us = lock_total_wait_us
    lock0.total_hold_us = lock_total_hold_us
    lock0.acquisitions = lock_acqs
    lock0.contended = lock_contended

    records = dispatcher._completion_records
    sim_heap = sim._heap
    for entry in comp_heap:
        ctime, stamp, p, s, arr_t, sstart, ex, lw, tid, pid = entry
        pkt = Packet(pid, s, arr_t, size_bytes)
        pkt.service_start_us = sstart
        pkt.exec_time_us = ex
        pkt.lock_wait_us = lw
        pkt.processor_id = p
        pkt.thread_id = tid
        procs[p].current_packet = pkt
        pool._busy[tid] = p
        heappush(sim_heap, (ctime, stamp, records[p]))

    pqueue = policy._queue
    for a, s, pid in queue:
        pqueue.append(Packet(pid, s, a, size_bytes))

    system._packet_counter = n_merged
    _fold_metrics_rows(system, done, 7)
    system.metrics.fold_batch_counts(n_merged, n_comp_fired,
                                     backlog, max_backlog)


# ----------------------------------------------------------------------
# Locking paradigm, per-processor-queue policies (flow-steer, grouped)
# ----------------------------------------------------------------------
def _run_locking_pools(
    system: "NetworkProcessingSystem",
    m_times: List[float],
    m_sids: List[int],
    counts: List[int],
) -> None:
    """Fused loop for :class:`FlowSteerPolicy` / :class:`GroupedAffinityPolicy`.

    Both policies keep per-processor (flow-steer) or per-group (grouped)
    queues and run with processor-bound threads (``tid == proc``, so the
    shared-pool preference scan of ``_run_locking`` collapses to
    ``free.remove(p)``/``free.append(p)`` — exactly the scalar
    per-processor :class:`~repro.sim.entities.ThreadPool` history).  The
    structural invariant making the fusion exact: **a nonempty queue
    implies its owning processor (flow-steer) / every processor of its
    group (grouped) is busy** — arrivals whose final target is idle
    dispatch immediately (the target's queue is empty, so the new packet
    is the head), and a completion can only refill its own processor
    (every other idle processor's queue is empty), so the completion
    path consults no RNG.  The only RNG use in the whole loop is the
    grouped policy's MRU tie-break among a group's idle members at
    arrival, replicated draw for draw from ``_mru_idle``.  Flow-steer's
    rebalance check runs on every arrival; it can never trigger toward
    an idle processor's (empty) queue, so re-steers only move *queued*
    streams — the Flow Director reordering pathology.
    """
    cfg = system.config
    dispatcher = system.dispatcher
    model = system.model
    policy = dispatcher.policy
    n_procs = cfg.platform.n_processors
    n_streams = cfg.traffic.n_streams
    duration_us = cfg.duration_us

    pk_flow = type(policy) is FlowSteerPolicy
    if pk_flow:
        n_queues = n_procs
        threshold = policy.rebalance_threshold
        steer = [-1] * n_streams
        resteers = 0
        n_eff = 1  # unused
    else:
        n_eff = policy._n_eff
        n_queues = n_eff
        threshold = 0  # unused
        steer = []  # unused
        resteers = 0  # unused

    COLD_ = COLD
    fast_ok = model._fast_l1 is not None
    pen_cold = model._pen_cold
    w_shared = model._w_shared
    w_code = model._w_code
    w_stream = model._w_stream
    w_thread = model._w_thread
    t_warm = model._t_warm
    dispatch_c = model._dispatch_us
    lock_oh = model._lock_oh
    extra_c = cfg.fixed_overhead_us
    cache = model._penalty_cache
    cache_get = cache.get
    cache_max = model._PENALTY_CACHE_MAX
    model_pen1 = model._pen1
    data_touching = cfg.data_touching
    dt_const = (
        model.costs.data_touching_us(system._fixed_size)
        if data_touching else 0.0
    )
    size_bytes = system._fixed_size
    refs_per_us = cfg.platform.references_per_us
    v_intensity = cfg.nonprotocol_intensity
    cs_us = dispatcher._lock_cs_us
    sched_int = system.rngs.scheduling.integers
    log10 = math.log10
    expm1 = math.expm1

    n_calls = 0
    n_analytic = 0
    n_cache = 0
    n_flush = 0
    migrations = 0

    if fast_ok:
        split1, c01, slope1, u11, lp1 = model._fast_l1
        split2, c02, slope2, u12, lp2 = model._fast_l2
        delta1 = model._delta1
        delta2 = model._delta2

        def flush(refs: float) -> float:
            """Two-level flush math of ExecutionTimeModel._pen1, verbatim
            (cache maintenance included; counters folded by the caller)."""
            r = refs * split1
            u = r * u11 if r < 1.0 else 10.0 ** (c01 + slope1 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp1)
            f1 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            r = refs * split2
            u = r * u12 if r < 1.0 else 10.0 ** (c02 + slope2 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp2)
            f2 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            value = f1 * delta1 + f2 * delta2
            if len(cache) >= cache_max:
                cache.clear()
            cache[refs] = value
            return value

    def pen_of(refs: float) -> float:
        """Non-fast-path fallback (associative cache levels): cache probe
        here, everything else delegated to the model."""
        nonlocal n_cache
        hit = cache_get(refs)
        if hit is not None:
            n_cache += 1
            return hit
        return model_pen1(refs)

    # --- processor state (parallel lists; -inf touch sentinels)
    busy = [False] * n_procs
    ref_clock = [0.0] * n_procs
    accrued = [0.0] * n_procs
    np_us = [0.0] * n_procs
    pbusy_us = [0.0] * n_procs
    last_end = [_NEVER] * n_procs
    epoch_seen = [-1] * n_procs
    code_touch = [_NEVER] * n_procs
    stream_touch = [[_NEVER] * n_streams for _ in range(n_procs)]
    # Per-processor threads: tid == p always, so one touch cell per
    # processor replaces the shared pool's per-thread table.
    thread_touch = [_NEVER] * n_procs
    epoch = 0
    idle_mask = (1 << n_procs) - 1

    # --- per-processor thread pool (tid == p; -1 = never released here)
    free = list(range(n_procs - 1, -1, -1))
    tlp = [-1] * n_procs

    stream_lp = [-1] * n_streams
    first_completion_order: List[int] = []

    lock_free_at = 0.0
    lock_total_wait_us = 0.0
    lock_total_hold_us = 0.0
    lock_acqs = 0
    lock_contended = 0

    queues: List[Deque[Tuple[float, int, int]]] = [
        deque() for _ in range(n_queues)
    ]
    comp_heap: List[tuple] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    done: List[tuple] = []
    done_append = done.append

    rem = list(counts)
    next_stamp = [-1] * n_streams
    seq = 0
    for s in range(n_streams):
        if rem[s]:
            next_stamp[s] = seq
            seq += 1

    ai = 0
    n_merged = len(m_times)
    m_times.append(math.inf)  # sentinel: loop needs no bounds check
    m_sids.append(0)
    backlog = 0
    max_backlog = 0
    INF = math.inf

    while True:
        at = m_times[ai]
        if comp_heap:
            head = comp_heap[0]
            ct = head[0]
            if at < ct:
                take_arrival = True
            elif ct < at:
                if ct > duration_us:
                    break
                take_arrival = False
            else:
                take_arrival = next_stamp[m_sids[ai]] < head[1]
        else:
            if at == INF:
                break
            take_arrival = True

        if take_arrival:
            # ---------------- arrival event ----------------
            if not idle_mask:
                # Every processor is busy: no dispatch is possible, but
                # the policy's enqueue step (including flow-steer's
                # rebalance test, which consults no RNG) still runs per
                # arrival, exactly as the scalar on_arrival path does.
                j = bisect_left(m_times, ct, ai)
                if j == ai:
                    j = ai + 1  # tie with the completion, won on stamp
                for i in range(ai, j):
                    s = m_sids[i]
                    if pk_flow:
                        tgt = steer[s]
                        if tgt < 0:
                            tgt = s % n_procs
                            steer[s] = tgt
                        short_len = len(queues[0])
                        for q in range(1, n_procs):
                            lq = len(queues[q])
                            if lq < short_len:
                                short_len = lq
                        if len(queues[tgt]) > short_len + threshold:
                            for q in range(n_procs):
                                if len(queues[q]) == short_len:
                                    tgt = q
                                    break
                            steer[s] = tgt
                            resteers += 1
                        queues[tgt].append((m_times[i], s, i))
                    else:
                        queues[s % n_eff].append((m_times[i], s, i))
                    rem_s = rem[s] - 1
                    rem[s] = rem_s
                    if rem_s:
                        next_stamp[s] = seq
                        seq += 1
                backlog += j - ai
                if backlog > max_backlog:
                    max_backlog = backlog
                ai = j
                continue
            s = m_sids[ai]
            now = at
            pid = ai
            ai += 1
            backlog += 1
            if backlog > max_backlog:
                max_backlog = backlog
            # --- policy enqueue + dispatch decision
            p = -1
            if pk_flow:
                tgt = steer[s]
                if tgt < 0:
                    tgt = s % n_procs
                    steer[s] = tgt
                short_len = len(queues[0])
                for q in range(1, n_procs):
                    lq = len(queues[q])
                    if lq < short_len:
                        short_len = lq
                if len(queues[tgt]) > short_len + threshold:
                    for q in range(n_procs):
                        if len(queues[q]) == short_len:
                            tgt = q
                            break
                    steer[s] = tgt
                    resteers += 1
                if idle_mask >> tgt & 1:
                    # Idle target ⇒ its queue is empty (invariant): the
                    # new packet dispatches without touching the deque.
                    p = tgt
                else:
                    queues[tgt].append((at, s, pid))
            else:
                g = s % n_eff
                qg = queues[g]
                if qg:
                    # Nonempty group queue ⇒ no idle group member.
                    qg.append((at, s, pid))
                else:
                    # MRU among the group's idle members, draw for draw
                    # as _mru_idle: tie candidates accumulate in
                    # ascending order, RNG only for genuine ties.
                    best_t = _NEVER
                    best: List[int] = []
                    for q in range(n_procs):
                        if idle_mask >> q & 1 and q % n_eff == g:
                            tq = last_end[q]
                            if tq > best_t:
                                best_t = tq
                                best = [q]
                            elif tq == best_t:
                                best.append(q)
                    if not best:
                        qg.append((at, s, pid))
                    else:
                        p = (best[0] if len(best) == 1
                             else best[int(sched_int(0, len(best)))])
            if p >= 0:
                # --- inlined _start_service (per-processor thread pool:
                # acquire is free.remove(p), preference scan not needed)
                free.remove(p)
                dt = now - accrued[p]
                if dt > 0.0:
                    ref_clock[p] += dt * refs_per_us * v_intensity
                    np_us[p] += dt
                    accrued[p] = now
                elif dt < -1e-9:
                    raise ValueError(f"time went backwards: {now} < {accrued[p]}")
                clock = ref_clock[p]
                d = clock - code_touch[p]
                code_refs = d if d > 0.0 else 0.0
                lp_s = stream_lp[s]
                if lp_s != p:
                    if lp_s >= 0:
                        migrations += 1
                    stream_refs = COLD_
                else:
                    d = clock - stream_touch[p][s]
                    stream_refs = d if d > 0.0 else 0.0
                if tlp[p] == p:
                    d = clock - thread_touch[p]
                    thread_refs = d if d > 0.0 else 0.0
                else:
                    thread_refs = COLD_
                n_calls += 1
                if fast_ok:
                    if code_refs == 0.0:
                        n_analytic += 1
                        pc = 0.0
                    elif code_refs == COLD_:
                        n_analytic += 1
                        pc = pen_cold
                    else:
                        pc = cache_get(code_refs)
                        if pc is None:
                            n_flush += 1
                            pc = flush(code_refs)
                        else:
                            n_cache += 1
                    if stream_refs == code_refs:
                        ps = pc
                    elif stream_refs == 0.0:
                        n_analytic += 1
                        ps = 0.0
                    elif stream_refs == COLD_:
                        n_analytic += 1
                        ps = pen_cold
                    else:
                        ps = cache_get(stream_refs)
                        if ps is None:
                            n_flush += 1
                            ps = flush(stream_refs)
                        else:
                            n_cache += 1
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    elif thread_refs == 0.0:
                        n_analytic += 1
                        pt = 0.0
                    elif thread_refs == COLD_:
                        n_analytic += 1
                        pt = pen_cold
                    else:
                        pt = cache_get(thread_refs)
                        if pt is None:
                            n_flush += 1
                            pt = flush(thread_refs)
                        else:
                            n_cache += 1
                else:
                    pc = pen_of(code_refs)
                    ps = pc if stream_refs == code_refs else pen_of(stream_refs)
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    else:
                        pt = pen_of(thread_refs)
                if epoch > epoch_seen[p]:
                    pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                else:
                    pen_code = pc
                penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                t_exec = t_warm + penalty + dispatch_c + extra_c
                t_exec += lock_oh
                if data_touching:
                    t_exec += dt_const
                w = lock_free_at - now
                if w > 0.0:
                    lock_wait_us = w
                    lock_contended += 1
                else:
                    lock_wait_us = 0.0
                lock_free_at = now + lock_wait_us + cs_us
                lock_total_wait_us += lock_wait_us
                lock_total_hold_us += cs_us
                lock_acqs += 1
                busy[p] = True
                idle_mask ^= 1 << p
                heappush(comp_heap, (now + (lock_wait_us + t_exec), seq, p, s,
                                     now, now, t_exec, lock_wait_us, p, pid))
                seq += 1
            rem_s = rem[s] - 1
            rem[s] = rem_s
            if rem_s:
                next_stamp[s] = seq
                seq += 1
        else:
            # ---------------- completion event ----------------
            heappop(comp_heap)
            done_append(head)
            now = head[0]
            p = head[2]
            s = head[3]
            ex = head[6]
            epoch += 1
            clock = ref_clock[p] + ex * refs_per_us
            ref_clock[p] = clock
            accrued[p] = now
            code_touch[p] = clock
            stream_touch[p][s] = clock
            thread_touch[p] = clock
            pbusy_us[p] += ex
            last_end[p] = now
            epoch_seen[p] = epoch
            backlog -= 1
            tlp[p] = p  # release: _last_proc[p] = p ...
            if stream_lp[s] < 0:
                first_completion_order.append(s)
            stream_lp[s] = p
            qp = queues[p if pk_flow else p % n_eff]
            if qp:
                # Only p can refill (every other idle processor's queue
                # is empty by the invariant), so no RNG is consulted; the
                # scalar release-append + acquire-remove cancel out, so
                # the free list is untouched.
                a2, s2, pid2 = qp.popleft()
                # dt = now - accrued[p] == 0.0 here: no accrual.
                d = clock - code_touch[p]
                code_refs = d if d > 0.0 else 0.0
                lp_s2 = stream_lp[s2]
                if lp_s2 != p:
                    if lp_s2 >= 0:
                        migrations += 1
                    stream_refs = COLD_
                else:
                    d = clock - stream_touch[p][s2]
                    stream_refs = d if d > 0.0 else 0.0
                # tlp[p] == p (just released): thread stack warm here.
                d = clock - thread_touch[p]
                thread_refs = d if d > 0.0 else 0.0
                n_calls += 1
                if fast_ok:
                    if code_refs == 0.0:
                        n_analytic += 1
                        pc = 0.0
                    elif code_refs == COLD_:
                        n_analytic += 1
                        pc = pen_cold
                    else:
                        pc = cache_get(code_refs)
                        if pc is None:
                            n_flush += 1
                            pc = flush(code_refs)
                        else:
                            n_cache += 1
                    if stream_refs == code_refs:
                        ps = pc
                    elif stream_refs == 0.0:
                        n_analytic += 1
                        ps = 0.0
                    elif stream_refs == COLD_:
                        n_analytic += 1
                        ps = pen_cold
                    else:
                        ps = cache_get(stream_refs)
                        if ps is None:
                            n_flush += 1
                            ps = flush(stream_refs)
                        else:
                            n_cache += 1
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    elif thread_refs == 0.0:
                        n_analytic += 1
                        pt = 0.0
                    elif thread_refs == COLD_:
                        n_analytic += 1
                        pt = pen_cold
                    else:
                        pt = cache_get(thread_refs)
                        if pt is None:
                            n_flush += 1
                            pt = flush(thread_refs)
                        else:
                            n_cache += 1
                else:
                    pc = pen_of(code_refs)
                    ps = pc if stream_refs == code_refs else pen_of(stream_refs)
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    else:
                        pt = pen_of(thread_refs)
                if epoch > epoch_seen[p]:
                    pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                else:
                    pen_code = pc
                penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                t_exec = t_warm + penalty + dispatch_c + extra_c
                t_exec += lock_oh
                if data_touching:
                    t_exec += dt_const
                w = lock_free_at - now
                if w > 0.0:
                    lock_wait_us = w
                    lock_contended += 1
                else:
                    lock_wait_us = 0.0
                lock_free_at = now + lock_wait_us + cs_us
                lock_total_wait_us += lock_wait_us
                lock_total_hold_us += cs_us
                lock_acqs += 1
                # busy[p] stays True.
                heappush(comp_heap, (now + (lock_wait_us + t_exec), seq, p, s2,
                                     a2, now, t_exec, lock_wait_us, p, pid2))
                seq += 1
            else:
                busy[p] = False
                idle_mask |= 1 << p
                free.append(p)

    # ------------------------------------------------------------------
    # Fold back into the live objects
    # ------------------------------------------------------------------
    n_comp_fired = len(done)
    sim = system.sim
    sim._seq = seq
    sim._events_processed += n_merged + n_comp_fired
    sim._now = duration_us if duration_us > sim._now else sim._now

    model._n_fast_calls += n_calls
    model._n_analytic_hits += n_analytic
    model._n_cache_hits += n_cache
    model._n_flush_computes += n_flush
    dispatcher.migrations += migrations

    skeys = dispatcher._stream_keys
    for s in first_completion_order:
        skeys[s] = ("stream", s)
        dispatcher._stream_last_proc[s] = stream_lp[s]
    thread_keys = dispatcher._thread_keys
    procs = system.processors
    for p in range(n_procs):
        proc = procs[p]
        proc.busy = busy[p]
        proc._ref_clock = ref_clock[p]
        proc._accrued_until = accrued[p]
        proc.nonprotocol_us = np_us[p]
        proc.protocol_busy_us = pbusy_us[p]
        proc.last_protocol_end = last_end[p]
        proc.protocol_epoch_seen = epoch_seen[p]
        touch = proc._last_touch
        v = code_touch[p]
        if v != _NEVER:
            touch[_CODE_KEY] = v
        row = stream_touch[p]
        for s in range(n_streams):
            v = row[s]
            if v != _NEVER:
                touch[skeys[s]] = v
        v = thread_touch[p]
        if v != _NEVER:
            touch[thread_keys[p]] = v
    dispatcher.protocol_epoch = epoch
    dispatcher._idle[:] = [q for q in range(n_procs) if idle_mask >> q & 1]

    pool = dispatcher.threads
    pool._free[:] = free
    pool_last = pool._last_proc
    for t in range(n_procs):
        pool_last[t] = tlp[t] if tlp[t] >= 0 else None

    lock0 = dispatcher.lock.locks[0]
    lock0._free_at = lock_free_at
    lock0.total_wait_us = lock_total_wait_us
    lock0.total_hold_us = lock_total_hold_us
    lock0.acquisitions = lock_acqs
    lock0.contended = lock_contended

    records = dispatcher._completion_records
    sim_heap = sim._heap
    for entry in comp_heap:
        ctime, stamp, p, s, arr_t, sstart, ex, lw, tid, pid = entry
        pkt = Packet(pid, s, arr_t, size_bytes)
        pkt.service_start_us = sstart
        pkt.exec_time_us = ex
        pkt.lock_wait_us = lw
        pkt.processor_id = p
        pkt.thread_id = tid
        procs[p].current_packet = pkt
        pool._busy[tid] = p
        heappush(sim_heap, (ctime, stamp, records[p]))

    if pk_flow:
        psteer = policy._steer
        for s in range(n_streams):
            if steer[s] >= 0:
                psteer[s] = steer[s]
        policy.resteers = resteers
        pqueues = policy._queues
        for q in range(n_procs):
            dst = pqueues[q]
            for a, s, pid in queues[q]:
                dst.append(Packet(pid, s, a, size_bytes))
    else:
        gqueues = policy._queues
        for g in range(n_eff):
            dst = gqueues[g]
            for a, s, pid in queues[g]:
                dst.append(Packet(pid, s, a, size_bytes))

    system._packet_counter = n_merged
    _fold_metrics_rows(system, done, 7)
    system.metrics.fold_batch_counts(n_merged, n_comp_fired,
                                     backlog, max_backlog)


# ----------------------------------------------------------------------
# IPS paradigm
# ----------------------------------------------------------------------
def _run_ips(
    system: "NetworkProcessingSystem",
    m_times: List[float],
    m_sids: List[int],
    counts: List[int],
) -> None:
    cfg = system.config
    dispatcher = system.dispatcher
    model = system.model
    policy = dispatcher.policy
    n_procs = cfg.platform.n_processors
    n_streams = cfg.traffic.n_streams
    n_stacks = dispatcher.n_stacks
    duration_us = cfg.duration_us

    pk_wired = type(policy) is IPSWiredPolicy

    COLD_ = COLD
    fast_ok = model._fast_l1 is not None
    pen_cold = model._pen_cold
    w_shared = model._w_shared
    w_code = model._w_code
    w_stream = model._w_stream
    w_thread = model._w_thread
    t_warm = model._t_warm
    dispatch_c = model._dispatch_us
    extra_c = cfg.fixed_overhead_us
    cache = model._penalty_cache
    cache_get = cache.get
    cache_max = model._PENALTY_CACHE_MAX
    model_pen1 = model._pen1
    data_touching = cfg.data_touching
    dt_const = (
        model.costs.data_touching_us(system._fixed_size)
        if data_touching else 0.0
    )
    size_bytes = system._fixed_size
    refs_per_us = cfg.platform.references_per_us
    v_intensity = cfg.nonprotocol_intensity
    sched_int = system.rngs.scheduling.integers
    log10 = math.log10
    expm1 = math.expm1

    n_calls = 0
    n_analytic = 0
    n_cache = 0
    n_flush = 0
    migrations = 0

    if fast_ok:
        split1, c01, slope1, u11, lp1 = model._fast_l1
        split2, c02, slope2, u12, lp2 = model._fast_l2
        delta1 = model._delta1
        delta2 = model._delta2

        def flush(refs: float) -> float:
            """Two-level flush math of ExecutionTimeModel._pen1, verbatim
            (cache maintenance included; counters folded by the caller)."""
            r = refs * split1
            u = r * u11 if r < 1.0 else 10.0 ** (c01 + slope1 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp1)
            f1 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            r = refs * split2
            u = r * u12 if r < 1.0 else 10.0 ** (c02 + slope2 * log10(r))
            if u > r:
                u = r
            f = -expm1(u * lp2)
            f2 = 1.0 if f > 1.0 else (0.0 if f < 0.0 else f)
            value = f1 * delta1 + f2 * delta2
            if len(cache) >= cache_max:
                cache.clear()
            cache[refs] = value
            return value

    def pen_of(refs: float) -> float:
        """Non-fast-path fallback (associative cache levels)."""
        nonlocal n_cache
        hit = cache_get(refs)
        if hit is not None:
            n_cache += 1
            return hit
        return model_pen1(refs)

    busy = [False] * n_procs
    ref_clock = [0.0] * n_procs
    accrued = [0.0] * n_procs
    np_us = [0.0] * n_procs
    pbusy_us = [0.0] * n_procs
    last_end = [_NEVER] * n_procs
    epoch_seen = [-1] * n_procs
    code_touch = [_NEVER] * n_procs
    stream_touch = [[_NEVER] * n_streams for _ in range(n_procs)]
    stack_touch = [[_NEVER] * n_stacks for _ in range(n_procs)]
    epoch = 0
    idle_mask = (1 << n_procs) - 1

    stream_lp = [-1] * n_streams
    stack_lp = [-1] * n_stacks
    stack_busy = [False] * n_stacks
    first_completion_order: List[int] = []

    queues: List[Deque[Tuple[float, int, int]]] = [deque() for _ in range(n_stacks)]
    # Runnable stacks: lazily validated min-heaps of (head_arrival, k).
    # ips-wired partitions by the stack's wired processor so a completion
    # consults only candidates its freed processor may serve.
    if pk_wired:
        runnable_by_proc: List[List[Tuple[float, int]]] = [[] for _ in range(n_procs)]
    else:
        runnable: List[Tuple[float, int]] = []
    comp_heap: List[tuple] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    done: List[tuple] = []
    done_append = done.append

    rem = list(counts)
    next_stamp = [-1] * n_streams
    seq = 0
    for s in range(n_streams):
        if rem[s]:
            next_stamp[s] = seq
            seq += 1

    ai = 0
    n_merged = len(m_times)
    m_times.append(math.inf)  # sentinel: loop needs no bounds check
    m_sids.append(0)
    backlog = 0
    max_backlog = 0
    INF = math.inf

    while True:
        at = m_times[ai]
        if comp_heap:
            head = comp_heap[0]
            ct = head[0]
            if at < ct:
                take_arrival = True
            elif ct < at:
                if ct > duration_us:
                    break
                take_arrival = False
            else:
                take_arrival = next_stamp[m_sids[ai]] < head[1]
        else:
            if at == INF:
                break
            take_arrival = True

        if take_arrival:
            # ---------------- arrival event ----------------
            if not idle_mask:
                # Every processor is busy: arrivals strictly before the
                # next completion can only queue (an idle stack still
                # registers as runnable, exactly as the per-event path
                # does after its dispatch attempt is refused).  The
                # backlog rises monotonically across the sweep, so one
                # max update at the end is exact.
                j = bisect_left(m_times, ct, ai)
                if j == ai:
                    j = ai + 1  # tie with the completion, won on stamp
                for i in range(ai, j):
                    s = m_sids[i]
                    k = s % n_stacks
                    qk = queues[k]
                    if stack_busy[k] or qk:
                        qk.append((m_times[i], s, i))
                    else:
                        t2b = m_times[i]
                        qk.append((t2b, s, i))
                        if pk_wired:
                            heappush(runnable_by_proc[k % n_procs], (t2b, k))
                        else:
                            heappush(runnable, (t2b, k))
                    rem_s = rem[s] - 1
                    rem[s] = rem_s
                    if rem_s:
                        next_stamp[s] = seq
                        seq += 1
                backlog += j - ai
                if backlog > max_backlog:
                    max_backlog = backlog
                ai = j
                continue
            s = m_sids[ai]
            now = at
            pid = ai
            ai += 1
            backlog += 1
            if backlog > max_backlog:
                max_backlog = backlog
            k = s % n_stacks
            qk = queues[k]
            if stack_busy[k] or qk:
                qk.append((at, s, pid))
            else:
                # Stack idle with empty queue: this packet is its head.
                # Every other runnable stack was already refused with the
                # same idle set, so at most this stack can dispatch.
                p = -1
                if pk_wired:
                    wp = k % n_procs
                    if idle_mask >> wp & 1:
                        p = wp
                elif idle_mask:
                    if not (idle_mask & (idle_mask - 1)):
                        p = idle_mask.bit_length() - 1
                    else:
                        lastp = stack_lp[k]
                        if lastp >= 0 and idle_mask >> lastp & 1:
                            p = lastp
                        else:
                            best_t = _NEVER
                            best = []
                            for q in range(n_procs):
                                if idle_mask >> q & 1:
                                    tq = last_end[q]
                                    if tq > best_t:
                                        best_t = tq
                                        best = [q]
                                    elif tq == best_t:
                                        best.append(q)
                            p = (best[0] if len(best) == 1
                                 else best[int(sched_int(0, len(best)))])
                if p < 0:
                    qk.append((at, s, pid))
                    if pk_wired:
                        heappush(runnable_by_proc[k % n_procs], (at, k))
                    else:
                        heappush(runnable, (at, k))
                else:
                    # --- inlined IPS _start_service
                    migrated = stack_lp[k] != p
                    stack_busy[k] = True
                    dt = now - accrued[p]
                    if dt > 0.0:
                        ref_clock[p] += dt * refs_per_us * v_intensity
                        np_us[p] += dt
                        accrued[p] = now
                    elif dt < -1e-9:
                        raise ValueError(
                            f"time went backwards: {now} < {accrued[p]}")
                    clock = ref_clock[p]
                    d = clock - code_touch[p]
                    code_refs = d if d > 0.0 else 0.0
                    lp_s = stream_lp[s]
                    if lp_s != p:
                        if lp_s >= 0:
                            migrations += 1
                        stream_refs = COLD_
                    else:
                        d = clock - stream_touch[p][s]
                        stream_refs = d if d > 0.0 else 0.0
                    if migrated:
                        thread_refs = COLD_
                    else:
                        d = clock - stack_touch[p][k]
                        thread_refs = d if d > 0.0 else 0.0
                    n_calls += 1
                    if fast_ok:
                        if code_refs == 0.0:
                            n_analytic += 1
                            pc = 0.0
                        elif code_refs == COLD_:
                            n_analytic += 1
                            pc = pen_cold
                        else:
                            pc = cache_get(code_refs)
                            if pc is None:
                                n_flush += 1
                                pc = flush(code_refs)
                            else:
                                n_cache += 1
                        if stream_refs == code_refs:
                            ps = pc
                        elif stream_refs == 0.0:
                            n_analytic += 1
                            ps = 0.0
                        elif stream_refs == COLD_:
                            n_analytic += 1
                            ps = pen_cold
                        else:
                            ps = cache_get(stream_refs)
                            if ps is None:
                                n_flush += 1
                                ps = flush(stream_refs)
                            else:
                                n_cache += 1
                        if thread_refs == code_refs:
                            pt = pc
                        elif thread_refs == stream_refs:
                            pt = ps
                        elif thread_refs == 0.0:
                            n_analytic += 1
                            pt = 0.0
                        elif thread_refs == COLD_:
                            n_analytic += 1
                            pt = pen_cold
                        else:
                            pt = cache_get(thread_refs)
                            if pt is None:
                                n_flush += 1
                                pt = flush(thread_refs)
                            else:
                                n_cache += 1
                    else:
                        pc = pen_of(code_refs)
                        ps = (pc if stream_refs == code_refs
                              else pen_of(stream_refs))
                        if thread_refs == code_refs:
                            pt = pc
                        elif thread_refs == stream_refs:
                            pt = ps
                        else:
                            pt = pen_of(thread_refs)
                    if migrated:
                        pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                    else:
                        pen_code = pc
                    penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                    t_exec = t_warm + penalty + dispatch_c + extra_c
                    if data_touching:
                        t_exec += dt_const
                    busy[p] = True
                    idle_mask ^= 1 << p
                    heappush(comp_heap, (now + t_exec, seq, p, s,
                                         now, now, t_exec, k, pid))
                    seq += 1
            rem_s = rem[s] - 1
            rem[s] = rem_s
            if rem_s:
                next_stamp[s] = seq
                seq += 1
        else:
            # ---------------- completion event ----------------
            heappop(comp_heap)
            done_append(head)
            now = head[0]
            p = head[2]
            s = head[3]
            ex = head[6]
            k = head[7]
            epoch += 1
            clock = ref_clock[p] + ex * refs_per_us
            ref_clock[p] = clock
            accrued[p] = now
            code_touch[p] = clock
            stream_touch[p][s] = clock
            stack_touch[p][k] = clock
            pbusy_us[p] += ex
            last_end[p] = now
            epoch_seen[p] = epoch
            backlog -= 1
            stack_busy[k] = False
            stack_lp[k] = p
            if stream_lp[s] < 0:
                first_completion_order.append(s)
            stream_lp[s] = p
            qk = queues[k]
            rh = runnable_by_proc[p] if pk_wired else runnable
            if qk:
                heappush(rh, (qk[0][0], k))
            # Any runnable stack the freed processor may serve dispatches
            # now; under both fused IPS policies the chosen processor can
            # only be p (every other idle processor was already refused),
            # so no RNG is consulted.
            k2 = -1
            while rh:
                t2, kk = rh[0]
                q2 = queues[kk]
                if stack_busy[kk] or not q2 or q2[0][0] != t2:
                    heappop(rh)
                    continue
                heappop(rh)
                k2 = kk
                break
            if k2 >= 0:
                a2, s2, pid2 = queues[k2].popleft()
                migrated = stack_lp[k2] != p
                stack_busy[k2] = True
                # dt == 0.0: accrued[p] was just set to now.
                d = clock - code_touch[p]
                code_refs = d if d > 0.0 else 0.0
                lp_s2 = stream_lp[s2]
                if lp_s2 != p:
                    if lp_s2 >= 0:
                        migrations += 1
                    stream_refs = COLD_
                else:
                    d = clock - stream_touch[p][s2]
                    stream_refs = d if d > 0.0 else 0.0
                if migrated:
                    thread_refs = COLD_
                else:
                    d = clock - stack_touch[p][k2]
                    thread_refs = d if d > 0.0 else 0.0
                n_calls += 1
                if fast_ok:
                    if code_refs == 0.0:
                        n_analytic += 1
                        pc = 0.0
                    elif code_refs == COLD_:
                        n_analytic += 1
                        pc = pen_cold
                    else:
                        pc = cache_get(code_refs)
                        if pc is None:
                            n_flush += 1
                            pc = flush(code_refs)
                        else:
                            n_cache += 1
                    if stream_refs == code_refs:
                        ps = pc
                    elif stream_refs == 0.0:
                        n_analytic += 1
                        ps = 0.0
                    elif stream_refs == COLD_:
                        n_analytic += 1
                        ps = pen_cold
                    else:
                        ps = cache_get(stream_refs)
                        if ps is None:
                            n_flush += 1
                            ps = flush(stream_refs)
                        else:
                            n_cache += 1
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    elif thread_refs == 0.0:
                        n_analytic += 1
                        pt = 0.0
                    elif thread_refs == COLD_:
                        n_analytic += 1
                        pt = pen_cold
                    else:
                        pt = cache_get(thread_refs)
                        if pt is None:
                            n_flush += 1
                            pt = flush(thread_refs)
                        else:
                            n_cache += 1
                else:
                    pc = pen_of(code_refs)
                    ps = (pc if stream_refs == code_refs
                          else pen_of(stream_refs))
                    if thread_refs == code_refs:
                        pt = pc
                    elif thread_refs == stream_refs:
                        pt = ps
                    else:
                        pt = pen_of(thread_refs)
                if migrated:
                    pen_code = w_shared * pen_cold + (1.0 - w_shared) * pc
                else:
                    pen_code = pc
                penalty = w_code * pen_code + w_stream * ps + w_thread * pt
                t_exec = t_warm + penalty + dispatch_c + extra_c
                if data_touching:
                    t_exec += dt_const
                heappush(comp_heap, (now + t_exec, seq, p, s2,
                                     a2, now, t_exec, k2, pid2))
                seq += 1
            else:
                busy[p] = False
                idle_mask |= 1 << p

    # ------------------------------------------------------------------
    # Fold back into the live objects
    # ------------------------------------------------------------------
    n_comp_fired = len(done)
    sim = system.sim
    sim._seq = seq
    sim._events_processed += n_merged + n_comp_fired
    sim._now = duration_us if duration_us > sim._now else sim._now

    model._n_fast_calls += n_calls
    model._n_analytic_hits += n_analytic
    model._n_cache_hits += n_cache
    model._n_flush_computes += n_flush
    dispatcher.migrations += migrations

    skeys = dispatcher._stream_keys
    for s in first_completion_order:
        skeys[s] = ("stream", s)
        dispatcher._stream_last_proc[s] = stream_lp[s]
    stack_keys = dispatcher._stack_thread_keys
    procs = system.processors
    for p in range(n_procs):
        proc = procs[p]
        proc.busy = busy[p]
        proc._ref_clock = ref_clock[p]
        proc._accrued_until = accrued[p]
        proc.nonprotocol_us = np_us[p]
        proc.protocol_busy_us = pbusy_us[p]
        proc.last_protocol_end = last_end[p]
        proc.protocol_epoch_seen = epoch_seen[p]
        touch = proc._last_touch
        v = code_touch[p]
        if v != _NEVER:
            touch[_CODE_KEY] = v
        row = stream_touch[p]
        for s in range(n_streams):
            v = row[s]
            if v != _NEVER:
                touch[skeys[s]] = v
        row = stack_touch[p]
        for t in range(n_stacks):
            v = row[t]
            if v != _NEVER:
                touch[stack_keys[t]] = v
    dispatcher.protocol_epoch = epoch
    dispatcher._idle[:] = [q for q in range(n_procs) if idle_mask >> q & 1]
    for k in range(n_stacks):
        dispatcher._stack_busy[k] = stack_busy[k]
        dispatcher._stack_last_proc[k] = stack_lp[k] if stack_lp[k] >= 0 else None

    records = dispatcher._completion_records
    sim_heap = sim._heap
    for entry in comp_heap:
        ctime, stamp, p, s, arr_t, sstart, ex, k, pid = entry
        pkt = Packet(pid, s, arr_t, size_bytes)
        pkt.service_start_us = sstart
        pkt.exec_time_us = ex
        pkt.lock_wait_us = 0.0
        pkt.processor_id = p
        pkt.thread_id = k
        procs[p].current_packet = pkt
        heappush(sim_heap, (ctime, stamp, records[p]))

    dqueues = dispatcher._queues
    for k in range(n_stacks):
        dq = dqueues[k]
        for a, s, pid in queues[k]:
            dq.append(Packet(pid, s, a, size_bytes))

    system._packet_counter = n_merged
    _fold_metrics_rows(system, done, None)
    system.metrics.fold_batch_counts(n_merged, n_comp_fired,
                                     backlog, max_backlog)
