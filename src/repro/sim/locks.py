"""Shared-stack lock model for the Locking paradigm.

The Locking parallelization shares one protocol stack among all
processors, protected by locks.  References [3, 13, 19] establish that
software synchronization imposes a large overhead on parallel protocol
stacks; the model here captures the two first-order effects:

1. a fixed *uncontended* acquire/release cost per packet (accounted in the
   execution-time model via ``ProtocolCosts.lock_overhead_us``), and
2. a *serialized critical section* of length ``lock_cs_us`` per packet —
   shared connection/demux state updates that only one processor may
   perform at a time.  Aggregate Locking throughput can therefore never
   exceed ``1 / lock_cs_us`` packets/µs no matter how many processors are
   added; IPS has no such ceiling.

The critical section is modelled at the *start* of each packet's service
(a standard simplification: the exact position within service shifts
individual completions by at most one service time and leaves steady-state
means unaffected).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["SerialLock", "LayeredLocks"]


class SerialLock:
    """A single FIFO lock timed in simulation microseconds.

    ``reserve(now, hold_us)`` returns the waiting time until the lock can
    be granted, and books the hold.  Because the simulator dispatches
    packets in event order, booking at reserve time yields FIFO granting.

    ``on_reserve``, when given, observes every granted critical section as
    ``(start_us, hold_us)`` — the mutual-exclusion hook of the runtime
    invariant checker.  ``None`` (the default) costs nothing.
    """

    def __init__(
        self,
        on_reserve: Optional[Callable[[float, float], None]] = None,
    ) -> None:
        self._free_at: float = 0.0
        self.total_wait_us: float = 0.0
        self.total_hold_us: float = 0.0
        self.acquisitions: int = 0
        self.contended: int = 0
        self._on_reserve = on_reserve

    def reserve(self, now_us: float, hold_us: float) -> float:
        """Book the lock for ``hold_us`` starting as soon as possible.

        Returns the wait (µs) before the critical section may begin.
        """
        if hold_us < 0:
            raise ValueError("hold_us must be non-negative")
        wait_us = max(0.0, self._free_at - now_us)
        start_us = now_us + wait_us
        self._free_at = start_us + hold_us
        self.total_wait_us += wait_us
        self.total_hold_us += hold_us
        self.acquisitions += 1
        if wait_us > 0.0:
            self.contended += 1
        if self._on_reserve is not None:
            self._on_reserve(start_us, hold_us)
        return wait_us

    @property
    def mean_wait_us(self) -> float:
        return self.total_wait_us / self.acquisitions if self.acquisitions else 0.0

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait."""
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of elapsed time the lock was held."""
        return self.total_hold_us / elapsed_us if elapsed_us > 0 else 0.0


class LayeredLocks:
    """Per-layer locking (the granularity dimension of Bjorkman &
    Gunningberg [3]).

    The x-kernel's shared-stack critical work can be protected by one
    coarse lock (``n_locks = 1``, the default model) or split across the
    protocol layers (FDDI demux / IP state / UDP sessions), each with its
    own lock.  A packet then traverses the locks *in order*, holding each
    for ``cs_us / n_locks``; packets pipeline through the layers, so the
    aggregate serialization ceiling rises from ``1/cs`` to ``n/cs``.

    The model books each stage lock at its stage's nominal start time and
    propagates waiting downstream (a packet delayed at stage ``i`` arrives
    later at stage ``i+1``); the returned total wait is what service
    start must absorb.
    """

    def __init__(
        self,
        n_locks: int = 1,
        on_reserve: Optional[Callable[[int, float, float], None]] = None,
    ) -> None:
        if n_locks < 1:
            raise ValueError("n_locks must be >= 1")
        self.n_locks = n_locks
        if on_reserve is None:
            self.locks = [SerialLock() for _ in range(n_locks)]
        else:
            # Tag each stage lock with its index so the observer can keep
            # independent mutual-exclusion state per lock.
            self.locks = [
                SerialLock(on_reserve=(
                    lambda start, hold, _i=i: on_reserve(_i, start, hold)
                ))
                for i in range(n_locks)
            ]

    def reserve(self, now_us: float, total_cs_us: float) -> float:
        """Book all stage locks for one packet; returns the total wait."""
        if total_cs_us < 0:
            raise ValueError("total_cs_us must be non-negative")
        stage_us = total_cs_us / self.n_locks
        t = now_us
        total_wait_us = 0.0
        for lock in self.locks:
            wait_us = lock.reserve(t, stage_us)
            total_wait_us += wait_us
            t += wait_us + stage_us
        return total_wait_us

    @property
    def acquisitions(self) -> int:
        return self.locks[0].acquisitions if self.locks else 0

    @property
    def total_wait_us(self) -> float:
        return sum(l.total_wait_us for l in self.locks)

    @property
    def contention_ratio(self) -> float:
        acq = self.acquisitions
        if not acq:
            return 0.0
        contended = sum(l.contended for l in self.locks)
        return min(1.0, contended / (acq * self.n_locks))
