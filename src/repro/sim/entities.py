"""Simulation entities: packets, processors, threads.

The heart of the affinity model lives in :class:`ProcessorState`: each
processor keeps a **displacing-reference clock** — a monotone counter of
memory references issued on that processor (protocol execution at the full
platform rate, non-protocol activity at the rate scaled by the intensity
``V``).  Every footprint component (protocol code+globals or stack
instance, per-stream state, per-thread stack) records the clock value when
it last finished executing there; the *intervening displacing references*
for a new packet are simply the clock deltas, which the analytic model
turns into flushed fractions per cache level.

This formulation captures, with one mechanism, all of:

- displacement of the protocol footprint by non-protocol activity while
  the processor is otherwise idle (the paper's central effect),
- displacement of one stream's state by other streams' protocol
  processing on the same processor (heavy multiplexing), and
- total footprint loss when a component migrates to a processor it never
  visited (``COLD``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.exec_model import COLD

__all__ = ["Packet", "ProcessorState", "ThreadPool"]


@dataclass(slots=True)
class Packet:
    """One protocol message travelling through the system.

    Timestamps are filled in as the packet progresses; ``delay_us`` is the
    paper's response metric (arrival to completion of protocol
    processing).  Slotted: one instance exists per simulated packet, so
    dropping the per-instance ``__dict__`` saves both allocation time and
    a large share of a run's peak memory.
    """

    packet_id: int
    stream_id: int
    arrival_us: float
    size_bytes: int = 0
    service_start_us: float = math.nan
    completion_us: float = math.nan
    exec_time_us: float = math.nan
    lock_wait_us: float = 0.0
    processor_id: int = -1
    thread_id: int = -1

    @property
    def delay_us(self) -> float:
        """Total packet delay: arrival to processing completion."""
        return self.completion_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        """Time spent waiting before service began."""
        return self.service_start_us - self.arrival_us


class ProcessorState:
    """Per-processor execution and cache-affinity state."""

    def __init__(self, proc_id: int, references_per_us: float,
                 nonprotocol_intensity: float) -> None:
        if references_per_us <= 0:
            raise ValueError("references_per_us must be positive")
        if nonprotocol_intensity < 0:
            raise ValueError("nonprotocol_intensity (V) must be >= 0")
        self.proc_id = proc_id
        self.references_per_us = references_per_us
        self.nonprotocol_intensity = nonprotocol_intensity

        self.busy: bool = False
        self.current_packet: Optional[Packet] = None
        #: Simulation time protocol processing last completed here.
        self.last_protocol_end: float = -math.inf
        #: Global protocol-execution epoch observed at our last completion
        #: (used for the shared-writable invalidation test under Locking).
        self.protocol_epoch_seen: int = -1

        #: Displacing-reference clock (references issued on this CPU).
        self._ref_clock: float = 0.0
        #: Time up to which the clock has been accrued.
        self._accrued_until: float = 0.0
        #: component key -> ref-clock value when it last finished here.
        self._last_touch: Dict[Hashable, float] = {}

        #: Accumulated busy time (protocol) for utilization metrics.
        self.protocol_busy_us: float = 0.0
        #: Accumulated non-protocol execution time granted.
        self.nonprotocol_us: float = 0.0

    # ------------------------------------------------------------------
    # Reference-clock accounting
    # ------------------------------------------------------------------
    def accrue_idle(self, now_us: float) -> None:
        """Fold idle (non-protocol) displacement into the clock up to now.

        While the processor is not executing protocol code, the general
        non-protocol workload runs and issues ``V * rate`` displacing
        references per µs.  Called lazily whenever the clock is read or the
        processor changes state.
        """
        if now_us < self._accrued_until - 1e-9:
            raise ValueError(
                f"time went backwards: {now_us} < {self._accrued_until}"
            )
        dt = max(0.0, now_us - self._accrued_until)
        if dt > 0.0 and not self.busy:
            self._ref_clock += dt * self.references_per_us * self.nonprotocol_intensity
            self.nonprotocol_us += dt
        self._accrued_until = max(self._accrued_until, now_us)

    def ref_clock(self, now_us: float) -> float:
        """Current displacing-reference clock value."""
        self.accrue_idle(now_us)
        return self._ref_clock

    def refs_since_touch(self, key: Hashable, now_us: float) -> float:
        """Displacing references since component ``key`` last ran here.

        Returns :data:`repro.core.exec_model.COLD` if the component never
        executed on this processor.
        """
        clock = self.ref_clock(now_us)
        last = self._last_touch.get(key)
        if last is None:
            return COLD
        return max(0.0, clock - last)

    # ------------------------------------------------------------------
    # Protocol execution lifecycle
    # ------------------------------------------------------------------
    def begin_service(self, packet: Packet, now_us: float) -> None:
        if self.busy:
            raise RuntimeError(f"processor {self.proc_id} is already busy")
        self.accrue_idle(now_us)
        self.busy = True
        self.current_packet = packet

    def end_service(self, now_us: float, exec_time_us: float,
                    touched_keys: Tuple[Hashable, ...],
                    protocol_epoch: int) -> Packet:
        """Complete the current packet; update affinity bookkeeping.

        Protocol execution itself issues references at the *full* platform
        rate (it is real execution); those references displace every other
        component's footprint but refresh the components just touched, so
        the touched keys are stamped with the post-execution clock value.
        """
        if not self.busy or self.current_packet is None:
            raise RuntimeError(f"processor {self.proc_id} is not serving a packet")
        # The clock was accrued through service start; protocol refs now.
        self._ref_clock += exec_time_us * self.references_per_us
        self._accrued_until = now_us
        for key in touched_keys:
            self._last_touch[key] = self._ref_clock
        self.protocol_busy_us += exec_time_us
        self.last_protocol_end = now_us
        self.protocol_epoch_seen = protocol_epoch
        packet = self.current_packet
        self.busy = False
        self.current_packet = None
        return packet

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of elapsed time spent executing protocol code."""
        return self.protocol_busy_us / elapsed_us if elapsed_us > 0 else 0.0


class ThreadPool:
    """Protocol thread pool with last-processor tracking.

    Under the Locking paradigm the paper's system has N protocol threads.
    Two organizations:

    - **shared pool** (``per_processor=False``): any free thread serves the
      next packet.  We prefer a free thread whose stack was last on the
      target processor (LIFO within that preference) — the natural
      behaviour of a free-list — but threads migrate under load, losing
      thread-stack affinity.
    - **per-processor pools** (``per_processor=True``): thread ``i`` is
      bound to processor ``i``; the thread-stack component never migrates.
    """

    def __init__(self, n_threads: int, per_processor: bool) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.n_threads = n_threads
        self.per_processor = per_processor
        self._free: List[int] = list(range(n_threads - 1, -1, -1))  # LIFO
        self._last_proc: Dict[int, Optional[int]] = {t: None for t in range(n_threads)}
        self._busy: Dict[int, int] = {}  # thread -> processor

    def acquire(self, proc_id: int) -> int:
        """Take a thread to run on ``proc_id``; returns the thread id."""
        if self.per_processor:
            tid = proc_id % self.n_threads
            if tid in self._busy:
                raise RuntimeError(
                    f"bound thread {tid} already busy (processor over-subscribed)"
                )
            try:
                self._free.remove(tid)
            except ValueError:
                raise RuntimeError(f"thread {tid} not free") from None
        else:
            free = self._free
            if not free:
                raise RuntimeError("no free protocol threads")
            # Prefer a thread whose stack was last on this processor
            # (LIFO within that preference).  The most recently released
            # thread sits at the end of the free list and is the first
            # candidate of the preference scan, so checking it alone
            # resolves the common back-to-back case with a single pop.
            last_proc = self._last_proc
            tid = free[-1]
            if last_proc[tid] == proc_id:
                free.pop()
            else:
                found = -1
                for cand in reversed(free):
                    if last_proc[cand] == proc_id:
                        found = cand
                        break
                if found < 0:
                    tid = free.pop()
                else:
                    tid = found
                    free.remove(tid)
        self._busy[tid] = proc_id
        return tid

    def release(self, thread_id: int) -> None:
        proc = self._busy.pop(thread_id, None)
        if proc is None:
            raise RuntimeError(f"thread {thread_id} was not busy")
        self._last_proc[thread_id] = proc
        self._free.append(thread_id)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def last_processor(self, thread_id: int) -> Optional[int]:
        return self._last_proc[thread_id]
