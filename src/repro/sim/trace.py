"""Execution tracing: per-packet cache-state records and busy timelines.

Optional observability for the simulator (enable with
``SystemConfig(trace=True)``): every packet service is recorded with the
exact :class:`~repro.core.exec_model.ComponentState` it saw, its computed
execution time, and its processor busy interval.  Downstream uses:

- **attribution** — how much of the measured delay came from cold stream
  state vs displaced code vs lock waits (``component_attribution``);
- **affinity diagnostics** — migration rate per stream, cold-start
  fraction (``migration_rate``, ``cold_fraction``);
- **invariant checking** — busy intervals on one processor must never
  overlap (``check_no_overlap``; exercised by property tests, and promoted
  to an *online* per-event check by
  :class:`repro.verify.invariants.InvariantChecker` via
  ``SystemConfig(check_invariants=True)``);
- **export** — flat dict rows for notebooks (``to_rows``).

Tracing costs one dataclass per packet; leave it off for long capacity
sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.exec_model import ComponentState, ExecutionTimeModel
from .entities import Packet

__all__ = ["ServiceTraceRecord", "ExecutionTracer"]


@dataclass(frozen=True)
class ServiceTraceRecord:
    """One packet's service, with the cache state it experienced."""

    packet_id: int
    stream_id: int
    processor_id: int
    thread_id: int
    start_us: float
    lock_wait_us: float
    exec_time_us: float
    state: ComponentState

    @property
    def end_us(self) -> float:
        """End of the busy interval (lock wait + execution)."""
        return self.start_us + self.lock_wait_us + self.exec_time_us

    @property
    def stream_was_cold(self) -> bool:
        return math.isinf(self.state.stream_refs)

    @property
    def thread_was_cold(self) -> bool:
        return math.isinf(self.state.thread_refs)


class ExecutionTracer:
    """Accumulates service trace records and derives diagnostics."""

    def __init__(self, model: ExecutionTimeModel) -> None:
        self.model = model
        self.records: List[ServiceTraceRecord] = []

    # ------------------------------------------------------------------
    def record(self, packet: Packet, state: ComponentState, lock_wait_us: float,
               exec_time_us: float, start_us: float) -> None:
        """Called by the dispatchers at service start."""
        self.records.append(ServiceTraceRecord(
            packet_id=packet.packet_id,
            stream_id=packet.stream_id,
            processor_id=packet.processor_id,
            thread_id=packet.thread_id,
            start_us=start_us,
            lock_wait_us=lock_wait_us,
            exec_time_us=exec_time_us,
            state=state,
        ))

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def cold_fraction(self) -> float:
        """Fraction of services that found their stream state cold."""
        if not self.records:
            return 0.0
        return sum(r.stream_was_cold for r in self.records) / len(self.records)

    def migration_rate(self) -> float:
        """Fraction of services on a different processor than the
        stream's previous service (the first service of each stream does
        not count)."""
        last: Dict[int, int] = {}
        migrations = 0
        eligible = 0
        for r in self.records:
            prev = last.get(r.stream_id)
            if prev is not None:
                eligible += 1
                if prev != r.processor_id:
                    migrations += 1
            last[r.stream_id] = r.processor_id
        return migrations / eligible if eligible else 0.0

    def component_attribution(self) -> Dict[str, float]:
        """Mean per-packet reload penalty attributed to each component.

        Recomputes the model's per-component penalties from the recorded
        states; the sum equals the mean total reload transient, so the
        breakdown explains exactly where the warm/cold gap went.
        """
        if not self.records:
            return {"code_global": 0.0, "stream_state": 0.0,
                    "thread_stack": 0.0, "lock_wait": 0.0}
        comp = self.model.composition
        d_full = self.model.costs.t_cold_us - self.model.costs.t_warm_us
        totals = {"code_global": 0.0, "stream_state": 0.0,
                  "thread_stack": 0.0, "lock_wait": 0.0}
        for r in self.records:
            s = r.state
            pen_code_resident = self.model.reload_penalty(s.code_refs)
            if s.shared_invalidated:
                w = comp.shared_writable_of_code
                pen_code = w * d_full + (1 - w) * pen_code_resident
            else:
                pen_code = pen_code_resident
            totals["code_global"] += comp.code_global * pen_code
            totals["stream_state"] += comp.stream_state * self.model.reload_penalty(
                s.stream_refs
            )
            totals["thread_stack"] += comp.thread_stack * self.model.reload_penalty(
                s.thread_refs
            )
            totals["lock_wait"] += r.lock_wait_us
        n = len(self.records)
        return {k: v / n for k, v in totals.items()}

    # ------------------------------------------------------------------
    # Timeline / invariants
    # ------------------------------------------------------------------
    def busy_intervals(self, processor_id: int) -> List[Tuple[float, float]]:
        """Sorted ``(start, end)`` busy intervals of one processor."""
        out = [
            (r.start_us, r.end_us)
            for r in self.records
            if r.processor_id == processor_id
        ]
        out.sort()
        return out

    def check_no_overlap(self, epsilon: float = 1e-9) -> None:
        """Raise ``AssertionError`` if any processor served two packets at
        once — the simulator's fundamental resource invariant.

        This is the *offline* (post-run, trace-based) form; the online
        equivalent that fails at the offending event is
        :meth:`repro.verify.invariants.InvariantChecker.on_service_start`.
        """
        procs = sorted({r.processor_id for r in self.records})
        for p in procs:
            intervals = self.busy_intervals(p)
            for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
                if s2 < e1 - epsilon:
                    raise AssertionError(
                        f"processor {p} double-booked: interval starting "
                        f"{s2} overlaps previous ending {e1}"
                    )

    def utilization_from_trace(self, processor_id: int,
                               horizon_us: float) -> float:
        """Busy fraction of a processor reconstructed from the trace."""
        if horizon_us <= 0:
            raise ValueError("horizon_us must be positive")
        return sum(e - s for s, e in self.busy_intervals(processor_id)) / horizon_us

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat export for tables/notebooks."""
        return [
            {
                "packet_id": r.packet_id,
                "stream_id": r.stream_id,
                "processor_id": r.processor_id,
                "start_us": r.start_us,
                "lock_wait_us": r.lock_wait_us,
                "exec_time_us": r.exec_time_us,
                "stream_cold": r.stream_was_cold,
                "shared_invalidated": r.state.shared_invalidated,
            }
            for r in self.records
        ]
