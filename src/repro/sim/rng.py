"""Reproducible random-number stream management.

Each stochastic element of the simulation (every stream's arrival process,
the scheduler's tie-breaking, packet sizes, ...) draws from its own
independent NumPy ``Generator``, derived from a single master seed via
``SeedSequence.spawn``-style keying.  This gives

- bitwise-reproducible runs for a given master seed,
- *common random numbers* across policy comparisons: two simulations that
  differ only in scheduling policy see identical arrival processes, which
  dramatically sharpens delay-difference estimates (a standard variance
  reduction in simulation studies of this era).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Named, independent RNG substreams under one master seed.

    ``streams.get("arrivals", stream_id)`` always returns the same
    generator state for the same master seed and key, independent of the
    order in which other substreams were requested.
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, (int, np.integer)) or master_seed < 0:
            raise ValueError(f"master_seed must be a non-negative int, got {master_seed!r}")
        self.master_seed = int(master_seed)
        self._cache: Dict[Tuple[object, ...], np.random.Generator] = {}

    def get(self, *key: object) -> np.random.Generator:
        """Generator for a hashable key (created on first use, cached)."""
        if key not in self._cache:
            # Key the child off (master_seed, stable hash of key parts).
            material = [self.master_seed]
            for part in key:
                if isinstance(part, (int, np.integer)):
                    material.append(int(part) & 0x7FFFFFFF)
                else:
                    # Stable string hashing (Python's hash() is salted).
                    h = 0
                    for ch in str(part):
                        h = (h * 1000003 + ord(ch)) & 0x7FFFFFFF
                    material.append(h)
            self._cache[key] = np.random.default_rng(np.random.SeedSequence(material))
        return self._cache[key]

    def arrivals(self, stream_id: int) -> np.random.Generator:
        """Arrival-process substream for one traffic stream."""
        return self.get("arrivals", stream_id)

    @property
    def scheduling(self) -> np.random.Generator:
        """Substream for scheduler tie-breaking."""
        return self.get("scheduling")

    @property
    def sizes(self) -> np.random.Generator:
        """Substream for packet-size sampling."""
        return self.get("sizes")
